"""Legacy setup shim.

The reproduction environment is offline and lacks the ``wheel`` package, so
``pip install -e .`` must use the legacy ``setup.py develop`` code path.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
