"""Compare the paper's rule-based reduction against classic blocking.

The related-work section (§2) positions classification rules against
standard blocking, sorted neighbourhood and bi-gram indexing. This
example runs all of them — plus canopy clustering — on one out-of-sample
provider batch and reports the standard blocking-quality triple:

* RR  (reduction ratio)      — how much of the naive space is pruned;
* PC  (pairs completeness)   — how many true matches survive;
* PQ  (pairs quality)        — precision of the candidate set.

Run:  python examples/blocking_comparison.py
"""

from repro.datagen import CatalogConfig, ElectronicCatalogGenerator
from repro.experiments import run_blocking_comparison


def main() -> None:
    print("generating catalog and learning rules ...")
    catalog = ElectronicCatalogGenerator(CatalogConfig.small()).generate()
    rows = run_blocking_comparison(catalog, n_test_items=400,
                                   support_threshold=0.004)

    print()
    print(f"{'method':<22}{'pairs':<12}{'RR':>8} {'PC':>9} {'PQ':>9} {'time':>9}")
    for row in rows:
        print(row.format())

    print(
        "\nreading guide: the rule-based methods know nothing about the\n"
        "provider schema — they only exploit segments learned from TS.\n"
        "With the full-catalog fallback they keep completeness at the cost\n"
        "of reduction; strict mode prunes hard but only for decidable\n"
        "records. Key-based blocking needs a clean shared key (here the\n"
        "part number survives corruption well, favouring the baselines)."
    )


if __name__ == "__main__":
    main()
