"""Quickstart: learn classification rules and shrink a linking space.

Generates a small synthetic electronics catalog (the stand-in for the
paper's proprietary Thales data), learns value-based classification
rules from the expert links, classifies a provider item, and shows how
much of the naive |S_E| x |S_L| comparison space the rules eliminate.

Run:  python examples/quickstart.py
"""

from repro import (
    CatalogConfig,
    ElectronicCatalogGenerator,
    LearnerConfig,
    LinkingSubspace,
    RuleClassifier,
    RuleLearner,
)
from repro.datagen.catalog import PART_NUMBER


def main() -> None:
    # 1. a catalog S_L, provider records S_E and expert sameAs links TS
    catalog = ElectronicCatalogGenerator(CatalogConfig.small()).generate()
    training_set = catalog.to_training_set()
    print(f"catalog: {len(catalog.items)} products, "
          f"{len(catalog.ontology)} classes "
          f"({len(catalog.ontology.leaves())} leaves), "
          f"|TS| = {len(training_set)} expert links")

    # 2. learn rules p(X,Y) ∧ subsegment(Y,a) ⇒ c(X)   (Algorithm 1)
    learner = RuleLearner(
        LearnerConfig(properties=(PART_NUMBER,), support_threshold=0.004)
    )
    rules = learner.learn(training_set)
    print(f"\nlearned {len(rules)} rules; top five by (confidence, lift):")
    for rule in rules.rules[:5]:
        print("  ", rule)

    # 3. classify provider items with the confident rules
    classifier = RuleClassifier(rules.with_min_confidence(0.8))
    items = [link.external for link in training_set.links[:200]]
    predictions = classifier.predict_all(items, training_set.external_graph)
    decided = sum(1 for preds in predictions.values() if preds)
    print(f"\nclassified {decided}/{len(items)} provider items")

    # 4. the linking subspace those decisions induce
    subspace = LinkingSubspace.from_predictions(predictions, catalog.ontology)
    reduction = subspace.reduction(total_local=len(catalog.items))
    print(f"linking space: {reduction}")
    print(f"-> the naive space is cut by a factor of "
          f"{reduction.reduction_factor:.1f}")


if __name__ == "__main__":
    main()
