"""The paper's scenario end-to-end: provider files against a huge catalog.

Reproduces the §5 workflow at full scale:

1. generate the Thales-like catalog (566 classes / 226 leaves,
   |TS| = 10 265 expert reconciliations);
2. learn classification rules at th = 0.002 on the part-number property
   and print the §5 statistics plus Table 1;
3. receive a *fresh* provider file (records never seen in TS), predict
   classes, and link each record only against its predicted classes'
   instances — then compare cost and quality against linking without
   the rules.

Run:  python examples/electronic_products.py        (~1-2 minutes)
"""

import random

from repro import (
    CatalogConfig,
    ElectronicCatalogGenerator,
    FieldComparator,
    JobConfig,
    LearnerConfig,
    LinkingJob,
    RecordComparator,
    RecordStore,
    RuleBasedBlocking,
    RuleClassifier,
    RuleLearner,
    StandardBlocking,
    ThresholdMatcher,
)
from repro.datagen import Corruptor
from repro.datagen.catalog import MANUFACTURER, PART_NUMBER
from repro.experiments import run_stats, run_table1
from repro.rdf import Graph, Literal, Namespace, Triple


def fresh_provider_file(catalog, n_items: int, seed: int = 99):
    """Corrupted provider twins of catalog items not used during training."""
    rng = random.Random(seed)
    linked = {link.local for link in catalog.links}
    unseen = [item for item in catalog.items if item.iri not in linked]
    chosen = rng.sample(unseen, min(n_items, len(unseen)))
    ns = Namespace("http://example.org/provider-batch/")
    graph = Graph(identifier="provider")
    truth = []
    corruptor = Corruptor()
    for i, item in enumerate(chosen):
        ext = ns.term(f"r{i}")
        graph.add(Triple(ext, PART_NUMBER,
                         Literal(corruptor.corrupt(item.part_number, rng))))
        graph.add(Triple(ext, MANUFACTURER, Literal(item.manufacturer)))
        truth.append((ext, item.iri))
    return graph, truth


def main() -> None:
    print("generating the Thales-like catalog ...")
    catalog = ElectronicCatalogGenerator(CatalogConfig.thales_like()).generate()

    print("\n--- §5 in-text statistics ---")
    print(run_stats(catalog).format())

    print("\n--- Table 1 ---")
    print(run_table1(catalog).format())

    # ------------------------------------------------------------------
    # linking a fresh provider file inside the rule-induced subspaces
    # ------------------------------------------------------------------
    print("\n--- linking a fresh provider file (500 records) ---")
    training_set = catalog.to_training_set()
    rules = RuleLearner(
        LearnerConfig(properties=(PART_NUMBER,), support_threshold=0.002)
    ).learn(training_set)
    classifier = RuleClassifier(rules.with_min_confidence(0.4))

    provider_graph, truth = fresh_provider_file(catalog, n_items=500)
    external = RecordStore.from_graph(provider_graph, {"pn": PART_NUMBER})
    local = RecordStore.from_graph(catalog.local_graph, {"pn": PART_NUMBER})

    comparator = RecordComparator([FieldComparator("pn", weight=1.0)])
    matcher = ThresholdMatcher(match_threshold=0.90)

    configs = {
        "rules (paper)": RuleBasedBlocking(
            classifier, catalog.ontology, provider_graph, fallback_full=False
        ),
        "prefix blocking": StandardBlocking.on_field_prefix("pn", length=4),
    }
    # the engine executes each run as a chunked batch job: candidate
    # pairs drained in chunks, per-attribute similarities memoized, and
    # chunks fanned out over a process pool when CPUs allow
    engine_config = JobConfig(executor="auto", chunk_size=2048)
    for name, blocking in configs.items():
        job = LinkingJob(blocking, comparator, matcher, engine_config)
        result = job.run(external, local)
        stats = result.stats
        quality = result.matching_quality(truth)
        print(
            f"{name:<18} compared {result.compared:>9} of "
            f"{result.naive_pairs} pairs in {stats.elapsed_seconds:5.1f}s "
            f"({stats.pairs_per_second:,.0f} pairs/s, cache hit rate "
            f"{stats.cache_hit_rate:.0%}, {stats.chunk_count} chunks) -> "
            f"P={quality.precision:.3f} R={quality.recall:.3f} "
            f"F1={quality.f1:.3f}"
        )
    print("\n(undecidable records are skipped by the strict rule-based "
          "blocking; the paper would fall back to the full catalog scan "
          "for them)")


if __name__ == "__main__":
    main()
