"""The paper's toponym motivation: classifying places by label words.

§4 motivates value-based rules with toponyms: "toponyms found in
rdfs:label often contain types of geographical places ('Dresden Elbe
Valley', 'Place de la Concorde', 'Copacabana Beach')". This example
builds a small geo knowledge base, learns word-segment rules over
``rdfs:label`` with the token segmenter, and classifies unseen places.

Run:  python examples/toponyms.py
"""

from repro import (
    EX,
    Graph,
    LearnerConfig,
    Literal,
    Ontology,
    RuleClassifier,
    RuleLearner,
    SameAsLink,
    TokenSegmenter,
    TrainingSet,
    Triple,
)
from repro.rdf import RDFS

#: (label of the external record, geographic class of the linked local item)
TRAINING_PLACES = [
    ("Dresden Elbe Valley", "Valley"),
    ("Loire Valley", "Valley"),
    ("Valley of the Kings", "Valley"),
    ("Rift Valley", "Valley"),
    ("Place de la Concorde", "Square"),
    ("Place Vendome", "Square"),
    ("Red Square Moscow", "Square"),
    ("Times Square", "Square"),
    ("Copacabana Beach", "Beach"),
    ("Bondi Beach", "Beach"),
    ("Venice Beach", "Beach"),
    ("Omaha Beach", "Beach"),
    ("Louvre Museum", "Museum"),
    ("British Museum", "Museum"),
    ("Museum of Modern Art", "Museum"),
    ("Prado Museum", "Museum"),
    ("Mount Everest", "Mountain"),
    ("Mount Fuji", "Mountain"),
    ("Mount Kilimanjaro", "Mountain"),
    ("Table Mountain", "Mountain"),
]

UNSEEN_PLACES = [
    "Kathmandu Valley",
    "Trafalgar Square",
    "Waikiki Beach",
    "Rodin Museum",
    "Mount Etna",
    "Eiffel Tower",  # no rule should fire: 'tower' was never seen
]


def build_world():
    """A tiny geo ontology, external labels and expert links."""
    ontology = Ontology(name="geo")
    classes = sorted({cls for _, cls in TRAINING_PLACES})
    for name in classes:
        ontology.add_subclass(EX[name], EX.Place)

    external = Graph(identifier="external")
    links = []
    for i, (label, cls) in enumerate(TRAINING_PLACES):
        ext, loc = EX[f"ext{i}"], EX[f"loc{i}"]
        external.add(Triple(ext, RDFS.label, Literal(label)))
        ontology.add_instance(loc, EX[cls])
        links.append(SameAsLink(external=ext, local=loc))
    return ontology, external, links


def main() -> None:
    ontology, external, links = build_world()
    training_set = TrainingSet(links, external=external, ontology=ontology)

    # token segmentation with stopwords: the expert's choice for labels
    segmenter = TokenSegmenter(stopwords=frozenset({"of", "the", "de", "la"}))
    learner = RuleLearner(
        LearnerConfig(
            properties=(RDFS.label,),
            support_threshold=0.05,
            segmenter=segmenter,
        )
    )
    rules = learner.learn(training_set)

    print(f"learned {len(rules)} rules from {len(training_set)} linked places;")
    print("rules with confidence 1 (the paper's 'types of geographical places'):")
    for rule in rules.with_min_confidence(1.0):
        print(f"  label contains '{rule.segment}' ⇒ {rule.conclusion.local_name}"
              f"  (supp={rule.support:.2f}, lift={rule.lift:.1f})")

    classifier = RuleClassifier(rules.with_min_confidence(0.8), segmenter=segmenter)
    print("\nclassifying unseen places:")
    for i, label in enumerate(UNSEEN_PLACES):
        graph = Graph()
        item = EX[f"new{i}"]
        graph.add(Triple(item, RDFS.label, Literal(label)))
        predictions = classifier.predict(item, graph)
        if predictions:
            best = predictions[0]
            print(f"  {label:<22} -> {best.predicted_class.local_name:<10}"
                  f" (confidence {best.confidence:.2f})")
        else:
            print(f"  {label:<22} -> no rule fires (compare with whole catalog)")


if __name__ == "__main__":
    main()
