"""Rule maintenance: incremental learning, review and persistence.

The Thales workflow is continuous — experts validate reconciliations in
batches, and the rule base must follow without re-reading history. This
example shows the operational loop around the paper's algorithm:

1. ingest expert links batch by batch (:class:`IncrementalRuleLearner`);
2. watch rules appear/strengthen as evidence accumulates;
3. mine *conjunctive* refinements (two-segment premises) for the
   segments that are ambiguous alone;
4. export the confident rules to Turtle for expert review, and to JSON
   for the production classifier.

Run:  python examples/rule_maintenance.py
"""

from repro import CatalogConfig, ElectronicCatalogGenerator, LearnerConfig
from repro.core import (
    ConjunctiveRuleLearner,
    IncrementalRuleLearner,
    rules_from_json,
    rules_to_json,
    rules_to_turtle,
)
from repro.datagen.catalog import PART_NUMBER


def main() -> None:
    catalog = ElectronicCatalogGenerator(CatalogConfig.small()).generate()
    training_set = catalog.to_training_set()
    config = LearnerConfig(properties=(PART_NUMBER,), support_threshold=0.004)

    # --- 1+2: batch-by-batch ingestion -------------------------------
    learner = IncrementalRuleLearner(config, catalog.ontology)
    links = list(training_set.links)
    batch_size = len(links) // 4
    print("expert validation arriving in batches:")
    for batch_no in range(4):
        batch = links[batch_no * batch_size:(batch_no + 1) * batch_size]
        learner.add_links(batch, training_set.external_graph)
        rules = learner.rules()
        confident = rules.with_min_confidence(0.8)
        print(
            f"  after batch {batch_no + 1}: |TS|={learner.total_links:>4}, "
            f"rules={len(rules):>3}, confident={len(confident):>3}"
        )

    rules = learner.rules()

    # --- 3: conjunctive refinements ----------------------------------
    conjunctive = ConjunctiveRuleLearner(config, min_confidence_gain=0.1)
    refinements = conjunctive.learn(training_set)
    print(f"\nconjunctive refinements improving on their parts: {len(refinements)}")
    for rule in refinements[:3]:
        print("  ", rule)

    # --- 4: persistence ----------------------------------------------
    confident = rules.with_min_confidence(0.8)
    turtle_text = rules_to_turtle(confident)
    json_text = rules_to_json(confident)
    reloaded = rules_from_json(json_text)
    assert len(reloaded) == len(confident)
    print(f"\nexported {len(confident)} confident rules:")
    print(f"  Turtle review document: {len(turtle_text.splitlines())} lines")
    print(f"  JSON for production:    {len(json_text)} bytes "
          f"(round-trips to {len(reloaded)} rules)")
    print("\nfirst rule as the expert sees it (Turtle):\n")
    print("\n".join(turtle_text.splitlines()[:14]))


if __name__ == "__main__":
    main()
