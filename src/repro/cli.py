"""Command-line interface: ``python -m repro <command>``.

Commands map one-to-one onto the experiment harness plus a rule
export/import utility:

* ``table1`` — regenerate the paper's Table 1;
* ``stats`` — the §5 in-text statistics;
* ``sweeps`` — ablations A1/A2/A4;
* ``blocking`` — the blocking-baseline comparison (A3);
* ``generalization`` — the future-work subsumption experiment (X1);
* ``generality`` — the second-domain (toponym) experiment (X2);
* ``link`` — run an end-to-end batch linking job through the engine
  (chunked, cached, optionally parallel — including the block-parallel
  ``shard`` executor) and report throughput;
* ``throughput`` — the engine throughput experiment (A5);
* ``scenarios`` — list or run the scenario workload matrix (batch +
  streaming legs with the byte-identity check and metric envelopes);
* ``bench`` — list, run or regression-compare the registered benchmarks
  (the perf trajectory under ``benchmarks/results/trajectory/`` and the
  CI perf gate);
* ``export-rules`` — learn on a preset catalog and write the rules as
  JSON or Turtle.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.learner import LearnerConfig, RuleLearner
from repro.core.serialize import rules_to_json, rules_to_turtle
from repro.datagen.catalog import PART_NUMBER, ElectronicCatalogGenerator
from repro.datagen.config import CatalogConfig


def _preset(name: str, seed: int | None) -> CatalogConfig:
    factories = {
        "thales": CatalogConfig.thales_like,
        "small": CatalogConfig.small,
        "tiny": CatalogConfig.tiny,
    }
    factory = factories[name]
    return factory(seed=seed) if seed is not None else factory()


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--preset",
        choices=("thales", "small", "tiny"),
        default="thales",
        help="catalog preset (default: thales = paper scale)",
    )
    parser.add_argument("--seed", type=int, default=None, help="generator seed")
    parser.add_argument(
        "--support-threshold",
        type=float,
        default=0.002,
        help="the paper's th (default 0.002)",
    )


def _generate(args: argparse.Namespace):
    config = _preset(args.preset, args.seed)
    return ElectronicCatalogGenerator(config).generate()


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments.table1 import run_table1

    report = run_table1(_generate(args), support_threshold=args.support_threshold)
    print(report.format())
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.experiments.stats import run_stats

    print(run_stats(_generate(args), support_threshold=args.support_threshold).format())
    return 0


def _cmd_sweeps(args: argparse.Namespace) -> int:
    from repro.experiments.sweeps import (
        run_scalability,
        run_segmentation_ablation,
        run_support_sweep,
    )

    catalog = _generate(args)
    print("A1 support-threshold sweep")
    print(f"{'th':<10}{'#rules':<8}{'#freq.cls':<10}{'#dec.':<8}{'prec.':>7} {'recall':>7}")
    for row in run_support_sweep(catalog):
        print(row.format())
    print("\nA2 segmentation ablation")
    print(
        f"{'strategy':<14}{'distinct':<10}{'occur.':<10}{'#rules':<8}"
        f"{'#dec.':<8}{'prec.':>7} {'recall':>7}"
    )
    for row in run_segmentation_ablation(catalog, support_threshold=args.support_threshold):
        print(row.format())
    print("\nA4 scalability")
    print(f"{'|TS|':<8}{'learn(s)':<10}{'classify(s)':<12}{'#rules':<8}")
    for row in run_scalability():
        print(row.format())
    return 0


def _cmd_blocking(args: argparse.Namespace) -> int:
    from repro.experiments.blocking_comparison import (
        BLOCKING_COMPARISON_HEADER,
        run_blocking_comparison,
    )

    rows = run_blocking_comparison(
        _generate(args),
        n_test_items=args.test_items,
        support_threshold=args.support_threshold,
    )
    print(BLOCKING_COMPARISON_HEADER)
    for row in rows:
        print(row.format())
    return 0


def _cmd_generalization(args: argparse.Namespace) -> int:
    from repro.experiments.generalization import run_generalization

    report = run_generalization(
        _generate(args),
        support_threshold=args.support_threshold,
        max_depth_lift=args.max_depth_lift,
    )
    print(report.format())
    return 0


def _cmd_generality(args: argparse.Namespace) -> int:
    from repro.experiments.generality import run_generality

    print(run_generality().format())
    return 0


def _job_config(args: argparse.Namespace):
    """Engine configuration from the shared engine flags."""
    from repro.engine import JobConfig

    on_progress = None
    if args.progress:
        def on_progress(progress):
            print(progress.format(), file=sys.stderr)

    return JobConfig(
        chunk_size=args.chunk_size,
        executor=args.executor,
        workers=args.workers,
        shards=args.shards,
        cache_size=args.cache_size,
        scoring=args.scoring,
        on_progress=on_progress,
    )


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _non_negative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    from repro.engine import DEFAULT_CACHE_SIZE, SCORING, executor_names

    parser.add_argument(
        "--executor",
        choices=executor_names(),
        default="auto",
        help="execution strategy (default: auto = process when CPUs allow; "
        "shard = workers generate their own key-space shards' candidates "
        "in-worker; worker = every shard crosses a serialized work-unit "
        "boundary; every built-in blocking method shards)",
    )
    parser.add_argument(
        "--workers", type=_positive_int, default=None, help="worker count"
    )
    parser.add_argument(
        "--shards",
        type=_positive_int,
        default=None,
        help="key-space shard count for the shard executor "
        "(default: the worker count)",
    )
    parser.add_argument(
        "--chunk-size",
        type=_positive_int,
        default=1024,
        help="candidate pairs per chunk",
    )
    parser.add_argument(
        "--cache-size",
        type=_non_negative_int,
        default=DEFAULT_CACHE_SIZE,
        help="similarity-cache capacity per worker (0 disables)",
    )
    parser.add_argument(
        "--scoring",
        choices=SCORING,
        default="pairwise",
        help="pair scoring path (batched = columnar scorer with "
        "per-profile-pair memoization; byte-identical output)",
    )
    parser.add_argument(
        "--progress", action="store_true", help="print per-chunk progress to stderr"
    )
    parser.add_argument(
        "--index",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="back blocking/classification with the shared inverted "
        "feature index (--no-index falls back to the scan paths)",
    )


def _cmd_link(args: argparse.Namespace) -> int:
    from repro.core.classifier import RuleClassifier
    from repro.engine import LinkingJob
    from repro.experiments.throughput import provider_batch
    from repro.linking import (
        CanopyBlocking,
        FieldComparator,
        QGramBlocking,
        RecordComparator,
        RecordStore,
        RuleBasedBlocking,
        SortedNeighbourhood,
        StandardBlocking,
        ThresholdMatcher,
    )

    catalog = _generate(args)
    batch_seed = 4242 if args.seed is None else args.seed
    test_graph, truth = provider_batch(catalog, args.test_items, seed=batch_seed)
    external = RecordStore.from_graph(test_graph, {"pn": PART_NUMBER})
    local = RecordStore.from_graph(catalog.local_graph, {"pn": PART_NUMBER})

    if args.blocking in ("rules", "rules-strict"):
        rules = RuleLearner(
            LearnerConfig(
                properties=(PART_NUMBER,), support_threshold=args.support_threshold
            )
        ).learn(catalog.to_training_set())
        blocking = RuleBasedBlocking(
            RuleClassifier(rules.with_min_confidence(0.4)),
            catalog.ontology,
            test_graph,
            fallback_full=args.blocking == "rules",
            use_index=args.index,
        )
    elif args.blocking == "sorted":
        blocking = SortedNeighbourhood.on_field("pn", window_size=7)
    elif args.blocking == "qgram":
        blocking = QGramBlocking("pn", q=2, threshold=0.8, use_index=args.index)
    elif args.blocking == "canopy":
        blocking = CanopyBlocking("pn", loose=0.5, tight=0.9)
    else:
        blocking = StandardBlocking.on_field_prefix(
            "pn", length=4, use_index=args.index
        )

    job = LinkingJob(
        blocking,
        RecordComparator([FieldComparator("pn")]),
        ThresholdMatcher(match_threshold=args.match_threshold),
        _job_config(args),
    )
    result = job.run(external, local)
    quality = result.matching_quality(truth)
    print(
        f"linked {len(result.matches)} of {len(external)} provider records "
        f"against {len(local)} catalog records "
        f"({result.compared} of {result.naive_pairs} pairs compared)"
    )
    print(str(quality))
    print(result.stats.format())
    if result.stats.fallback_reason:
        # degradations (shard -> process, batched -> pairwise, pool
        # failure -> serial) must be loud, not buried in the stats block
        print(
            f"warning: degraded execution, ran {result.stats.executor} "
            f"({result.stats.fallback_reason})",
            file=sys.stderr,
        )
    return 0


def _cmd_throughput(args: argparse.Namespace) -> int:
    from repro.experiments.throughput import (
        THROUGHPUT_HEADER,
        run_linking_throughput,
    )

    rows = run_linking_throughput(
        _generate(args),
        sizes=tuple(args.sizes),
        job_config=_job_config(args),
        seed=4242 if args.seed is None else args.seed,
        use_index=args.index,
    )
    print(THROUGHPUT_HEADER)
    for row in rows:
        print(row.format())
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    import json

    from repro.scenarios import (
        UnknownScenarioError,
        get_scenario,
        run_scenario,
        scenario_names,
    )

    if args.action == "list":
        specs = [get_scenario(name) for name in scenario_names()]
        if args.json:
            print(
                json.dumps(
                    [
                        {
                            "scenario": spec.name,
                            "domain": spec.domain,
                            "description": spec.description,
                            "tags": list(spec.tags),
                            "deltas": spec.deltas,
                        }
                        for spec in specs
                    ],
                    indent=2,
                    sort_keys=True,
                )
            )
            return 0
        print(f"{'scenario':<28} {'domain':<12} description")
        for spec in specs:
            print(f"{spec.name:<28} {spec.domain:<12} {spec.description}")
            print(f"{'':<28} {'':<12} tags: {', '.join(spec.tags)}")
        return 0

    names = args.scenarios or scenario_names()
    reports = []
    failed = False
    for name in names:
        try:
            report = run_scenario(name, streaming=not args.no_streaming)
        except UnknownScenarioError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        reports.append(report)
        if not args.json:
            print(report.format())
        if not report.ok:
            failed = True
    if args.json:
        payload = [
            {
                **report.snapshot(),
                "batch_seconds": report.batch_seconds,
                "streaming_seconds": report.streaming_seconds,
                "envelope_violations": list(report.envelope_violations),
            }
            for report in reports
        ]
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif not failed:
        print(f"{len(reports)} scenario(s) ok")
    return 1 if failed else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.bench import (
        BenchmarkCheckError,
        ResultsDirError,
        UnknownBenchmarkError,
        benchmark_names,
        compare_benchmarks,
        default_baseline_dir,
        default_results_dir,
        get_benchmark,
        read_trajectory,
        run_benchmarks,
        trajectory_dir,
        write_result,
    )

    try:
        results_dir = (
            Path(args.results_dir) if args.results_dir else default_results_dir()
        )
        baseline_dir = (
            Path(args.baseline_dir) if args.baseline_dir else default_baseline_dir()
        )
    except ResultsDirError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    if args.action == "list":
        specs = [get_benchmark(name) for name in benchmark_names(args.tier)]
        if args.json:
            print(
                json.dumps(
                    [
                        {
                            "benchmark": spec.name,
                            "tier": spec.tier,
                            "workload": spec.workload,
                            "description": spec.description,
                            "gated_metrics": [b.metric for b in spec.budgets],
                        }
                        for spec in specs
                    ],
                    indent=2,
                    sort_keys=True,
                )
            )
            return 0
        print(f"{'benchmark':<24} {'tier':<9} {'workload':<18} description")
        for spec in specs:
            print(
                f"{spec.name:<24} {spec.tier:<9} {spec.workload:<18} "
                f"{spec.description}"
            )
        return 0

    if args.action == "run":
        try:
            runs = run_benchmarks(
                names=args.benchmarks, tier=args.tier, results_dir=results_dir
            )
        except UnknownBenchmarkError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        except BenchmarkCheckError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if args.json:
            print(
                json.dumps(
                    [run.result.to_payload() for run in runs],
                    indent=2,
                    sort_keys=True,
                )
            )
        else:
            for run in runs:
                wall = run.result.metrics["wall_seconds"]
                print(f"{run.spec.name:<24} {wall:8.2f}s -> {run.trajectory_file}")
            print(f"{len(runs)} benchmark(s) ok")
        if args.update_baselines:
            for run in runs:
                path = write_result(baseline_dir, run.result)
                print(f"baseline updated: {path}", file=sys.stderr)
        return 0

    if args.action == "trajectory":
        # the guard behind the CI perf-smoke job: a bench run that
        # leaves the trajectory empty is a bug, not a quiet no-op
        try:
            names = [
                get_benchmark(name).name for name in args.benchmarks or ()
            ] or benchmark_names(args.tier)
        except UnknownBenchmarkError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        records_dir = trajectory_dir(results_dir)
        empty = []
        rows = []
        for name in names:
            records = read_trajectory(records_dir, name)
            rows.append({"benchmark": name, "records": len(records)})
            if not records:
                empty.append(name)
        if args.json:
            print(json.dumps(rows, indent=2, sort_keys=True))
        else:
            for row in rows:
                print(f"{row['benchmark']:<24} {row['records']:>4} record(s)")
        if empty:
            print(
                "error: empty trajectory for: " + ", ".join(empty),
                file=sys.stderr,
            )
            return 1
        return 0

    # compare
    try:
        report = compare_benchmarks(
            results_dir, baseline_dir, names=args.benchmarks, tier=args.tier
        )
    except UnknownBenchmarkError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.json:
        payload = [
            {
                "benchmark": comparison.benchmark,
                "status": comparison.status,
                "metrics": [
                    {
                        "metric": m.metric,
                        "direction": m.direction,
                        "status": m.status,
                        "baseline": m.baseline,
                        "current": m.current,
                        "allowed": m.allowed,
                        "ratio": m.ratio,
                    }
                    for m in comparison.metrics
                ],
            }
            for comparison in report.comparisons
        ]
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(report.format())
    if args.fail_on_regression and not report.ok(fail_on_missing=args.fail_on_missing):
        return 1
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    """``repro worker run-unit`` — execute one serialized shard work unit.

    Reads a :class:`ShardWorkUnit` envelope from stdin and writes the
    WorkerResult envelope to stdout. The ``worker`` executor's
    subprocess transport drives this; a remote scheduler can drive a
    pool of these the same way. Rejected envelopes (stale version,
    foreign fingerprint, corrupt checksum, unknown spec) exit 2 with
    the reason on stderr — nothing partial ever reaches stdout.
    """
    from repro.engine.executors.protocol import (
        WorkUnitError,
        decode_work_unit,
        encode_worker_result,
        execute_work_unit,
    )

    text = sys.stdin.read()
    try:
        outcome = execute_work_unit(decode_work_unit(text))
    except WorkUnitError as exc:
        print(f"work unit rejected: {exc}", file=sys.stderr)
        return 2
    sys.stdout.write(encode_worker_result(outcome))
    return 0


def _cmd_artifacts(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.index.artifacts import ArtifactError, inspect_bundle
    from repro.serve import ServeError, build_bundle

    if args.action == "build":
        try:
            manifest = build_bundle(
                Path(args.bundle),
                preset=args.preset,
                seed=args.seed,
                blocking=args.blocking,
                support_threshold=args.support_threshold,
                match_threshold=args.match_threshold,
                use_index=args.index,
                warm_items=args.warm_items,
            )
        except ServeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        components = manifest["components"]
        total = sum(entry["bytes"] for entry in components.values())
        print(
            f"bundle written to {args.bundle} "
            f"({len(components)} components, {total:,} bytes)"
        )
        for name in sorted(components):
            print(f"  {name:<14} {components[name]['bytes']:>10,} bytes")
        return 0

    # inspect
    try:
        summary = inspect_bundle(Path(args.bundle))
    except ArtifactError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(f"bundle: {args.bundle}")
    print(f"records: {summary['records']}")
    for signature, info in sorted(summary["indexes"].items()):
        print(f"index {signature}: {info['keys']} keys over {info['records']} records")
    print(f"rules: {summary['rules']}")
    print(f"ontology classes: {summary['ontology_classes']}")
    print(
        f"cached similarities: {summary['cached_similarities']} "
        f"(+{summary['cached_normalizations']} normalizations)"
    )
    config = summary.get("config", {})
    if config:
        print(
            "config: "
            + " ".join(f"{key}={config[key]}" for key in sorted(config))
        )
    return 0


def _parse_bundle_specs(specs):
    """``[NAME=]DIR`` serve specs → ``(name -> path, default name)``.

    A bare DIR names itself ``default`` when it is the only bundle and
    by its directory basename otherwise; the first spec is the default
    route. Duplicate names are an error, not a silent override.
    """
    from pathlib import Path

    from repro.serve import ServeError

    bundles = {}
    for spec in specs:
        if "=" in spec:
            name, _, path = spec.partition("=")
        else:
            name = "default" if len(specs) == 1 else Path(spec).name
            path = spec
        if not name or not path:
            raise ServeError(
                f"bundle spec {spec!r} must be DIR or NAME=DIR"
            )
        if name in bundles:
            raise ServeError(f"duplicate bundle name {name!r}")
        bundles[name] = Path(path)
    return bundles, next(iter(bundles))


def _cmd_serve(args: argparse.Namespace) -> int:
    import json

    from repro.index.artifacts import ArtifactError
    from repro.serve import ServeError, run_self_test, serve_bundles

    try:
        bundles, default = _parse_bundle_specs(args.bundle)
        daemon = serve_bundles(
            bundles,
            default=default,
            host=args.host,
            port=args.port,
            cache_size=args.cache_size,
            queue_workers=args.queue_workers,
            queue_depth=args.queue_depth,
            multiplex_threshold=args.multiplex_threshold,
            multiplex_workers=args.multiplex_workers,
        )
    except (ArtifactError, ServeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.self_test:
        try:
            report = run_self_test(
                bundles[default],
                items=args.self_test,
                requests=args.self_test_requests,
                workers=args.self_test_workers,
                daemon=daemon,
            )
        finally:
            daemon.shutdown()
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            verdict = "identical" if report["identical"] else "MISMATCH"
            print(
                f"self-test: {report['requests']} concurrent requests, "
                f"{report['matches']} matches each — {verdict}"
            )
            print(
                f"cold one-shot {report['cold_seconds']:.2f}s, "
                f"warm p50 {report['warm_p50_seconds'] * 1000:.1f}ms "
                f"({report['warm_speedup_p50']:.1f}x), "
                f"cache hit rate {report['cache_hit_rate']:.1%}"
            )
        return 0 if report["identical"] else 1

    host, port = daemon.start()
    stats = daemon.session.stats()
    # the machine-readable announce goes to STDOUT (and is flushed):
    # scripts start `serve --port 0`, read one line, and connect to
    # the actually-bound port without racing or parsing the banner
    print(
        json.dumps(
            {
                "event": "serving",
                "host": host,
                "port": port,
                "bundles": sorted(bundles),
                "default_bundle": default,
            },
            sort_keys=True,
        ),
        flush=True,
    )
    print(
        f"serving {stats['records']} records ({stats['blocking']} blocking) "
        f"on http://{host}:{port} — GET /stats, GET /bundles, "
        f"POST /link, POST /delta",
        file=sys.stderr,
    )
    try:
        daemon.wait()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        daemon.shutdown()
    return 0


def _cmd_export_rules(args: argparse.Namespace) -> int:
    catalog = _generate(args)
    learner = RuleLearner(
        LearnerConfig(
            properties=(PART_NUMBER,), support_threshold=args.support_threshold
        )
    )
    rules = learner.learn(catalog.to_training_set())
    if args.min_confidence > 0:
        rules = rules.with_min_confidence(args.min_confidence)
    text = rules_to_turtle(rules) if args.format == "turtle" else rules_to_json(rules)
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w", encoding="utf-8") as sink:
            sink.write(text)
        print(f"wrote {len(rules)} rules to {args.output}", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Classification Rule Learning for Data Linking' "
        "(Pernelle & Sais, EDBT/LWDM 2012)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, handler, help_text in (
        ("table1", _cmd_table1, "regenerate the paper's Table 1"),
        ("stats", _cmd_stats, "the in-text §5 statistics"),
        ("sweeps", _cmd_sweeps, "ablations A1/A2/A4"),
        ("generalization", _cmd_generalization, "future-work experiment X1"),
        ("generality", _cmd_generality, "second-domain experiment X2"),
    ):
        command = sub.add_parser(name, help=help_text)
        _add_common(command)
        command.set_defaults(handler=handler)

    blocking = sub.add_parser("blocking", help="blocking comparison A3")
    _add_common(blocking)
    blocking.add_argument("--test-items", type=int, default=300)
    blocking.set_defaults(handler=_cmd_blocking)

    link = sub.add_parser("link", help="batch-link a provider file via the engine")
    _add_common(link)
    _add_engine_flags(link)
    link.add_argument("--test-items", type=_positive_int, default=300)
    link.add_argument(
        "--blocking",
        choices=("rules", "rules-strict", "prefix", "sorted", "qgram", "canopy"),
        default="prefix",
        help="candidate generation method (default: prefix)",
    )
    link.add_argument("--match-threshold", type=float, default=0.9)
    link.set_defaults(handler=_cmd_link)

    throughput = sub.add_parser("throughput", help="engine throughput A5")
    _add_common(throughput)
    _add_engine_flags(throughput)
    throughput.add_argument(
        "--sizes", type=_positive_int, nargs="+", default=[200, 400, 800],
        help="provider batch sizes to sweep",
    )
    throughput.set_defaults(handler=_cmd_throughput)

    generalization = next(
        action for action in sub.choices.values() if action.prog.endswith("generalization")
    )
    generalization.add_argument("--max-depth-lift", type=int, default=4)

    scenarios = sub.add_parser(
        "scenarios", help="the scenario workload matrix (list / run)"
    )
    scenarios.add_argument(
        "action", choices=("list", "run"), help="list the registry or run scenarios"
    )
    scenarios.add_argument(
        "--scenario",
        action="append",
        dest="scenarios",
        metavar="NAME",
        help="scenario to run (repeatable; default: all registered)",
    )
    scenarios.add_argument(
        "--no-streaming",
        action="store_true",
        help="skip the streaming leg and its byte-identity check",
    )
    scenarios.add_argument(
        "--json", action="store_true", help="emit reports as JSON"
    )
    scenarios.set_defaults(handler=_cmd_scenarios)

    bench = sub.add_parser(
        "bench", help="benchmark orchestration (list / run / compare / trajectory)"
    )
    bench.add_argument(
        "action",
        choices=("list", "run", "compare", "trajectory"),
        help="list the registry, run benchmarks, diff against baselines, "
        "or audit the trajectory (exit 1 when any selected benchmark "
        "has no recorded run)",
    )
    bench.add_argument(
        "--tier",
        # keep in sync with repro.bench.spec.TIERS (not imported here:
        # parser construction must not pay the bench registry import)
        choices=("smoke", "serve-load", "standard", "full"),
        default=None,
        help="cumulative tier filter (smoke ⊂ serve-load ⊂ standard "
        "⊂ full; default: full = everything)",
    )
    bench.add_argument(
        "--bench",
        action="append",
        dest="benchmarks",
        metavar="NAME",
        help="benchmark to select (repeatable; overrides --tier)",
    )
    bench.add_argument(
        "--results-dir",
        default=None,
        help="where run reports + trajectory/BENCH_*.json land "
        "(default: benchmarks/results under the repo root)",
    )
    bench.add_argument(
        "--baseline-dir",
        default=None,
        help="checked-in baseline records "
        "(default: benchmarks/baselines under the repo root)",
    )
    bench.add_argument(
        "--update-baselines",
        action="store_true",
        help="after a run, copy its results into the baseline directory",
    )
    bench.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="compare: exit 1 when any gated metric leaves its envelope",
    )
    bench.add_argument(
        "--fail-on-missing",
        action="store_true",
        help="compare: with --fail-on-regression, also fail on missing "
        "baselines or results",
    )
    bench.add_argument("--json", action="store_true", help="emit JSON")
    bench.set_defaults(handler=_cmd_bench)

    artifacts = sub.add_parser(
        "artifacts", help="warm-start bundle store (build / inspect)"
    )
    artifacts.add_argument(
        "action",
        choices=("build", "inspect"),
        help="build a bundle from a deterministic catalog, or summarize one",
    )
    artifacts.add_argument(
        "--bundle", required=True, metavar="DIR", help="bundle directory"
    )
    _add_common(artifacts)
    artifacts.add_argument(
        "--blocking",
        choices=("rules", "rules-strict", "prefix", "sorted", "qgram", "canopy", "full"),
        default="prefix",
        help="blocking method the bundle is warmed for (default: prefix)",
    )
    artifacts.add_argument("--match-threshold", type=float, default=0.9)
    artifacts.add_argument(
        "--warm-items",
        type=_non_negative_int,
        default=0,
        help="pre-warm the similarity cache by linking one provider "
        "batch of this size (0 = no cache in the bundle)",
    )
    artifacts.add_argument(
        "--index",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="snapshot the shared key indexes into the bundle",
    )
    artifacts.add_argument(
        "--json", action="store_true", help="inspect: emit the summary as JSON"
    )
    artifacts.set_defaults(handler=_cmd_artifacts)

    worker = sub.add_parser(
        "worker",
        help="shard work-unit worker (stdin envelope -> stdout result)",
    )
    worker.add_argument(
        "action",
        choices=("run-unit",),
        help="run-unit: execute one ShardWorkUnit envelope read from stdin",
    )
    worker.set_defaults(handler=_cmd_worker)

    serve = sub.add_parser(
        "serve", help="long-running warm linking daemon over artifact bundles"
    )
    serve.add_argument(
        "--bundle",
        required=True,
        action="append",
        metavar="[NAME=]DIR",
        help="bundle to host (repeatable; requests route by name via "
        'the "bundle" payload field, the first one is the default)',
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=_non_negative_int,
        default=8355,
        help="listen port (0 = ephemeral; the bound port is announced "
        "as a JSON line on stdout)",
    )
    serve.add_argument(
        "--cache-size",
        type=_non_negative_int,
        default=None,
        help="similarity-cache capacity (default: engine default)",
    )
    serve.add_argument(
        "--queue-workers",
        type=_positive_int,
        default=4,
        help="concurrent linking requests executed at once (default 4)",
    )
    serve.add_argument(
        "--queue-depth",
        type=_positive_int,
        default=32,
        help="requests allowed to wait behind the workers before the "
        "daemon answers 503 + Retry-After (default 32)",
    )
    serve.add_argument(
        "--multiplex-threshold",
        type=_positive_int,
        default=None,
        metavar="RECORDS",
        help="shard-multiplex /link batches of at least RECORDS records "
        "over the shard executor (byte-identical to serial; default: "
        "never multiplex)",
    )
    serve.add_argument(
        "--multiplex-workers",
        type=_positive_int,
        default=None,
        help="worker processes for multiplexed batches "
        "(default: one per available CPU)",
    )
    serve.add_argument(
        "--self-test",
        type=_positive_int,
        default=None,
        metavar="ITEMS",
        help="don't serve: fire concurrent warm requests for a provider "
        "batch of ITEMS records, verify byte-identity against the "
        "one-shot path, and exit 0/1",
    )
    serve.add_argument(
        "--self-test-requests", type=_positive_int, default=8,
        help="concurrent requests in the self-test (default 8)",
    )
    serve.add_argument(
        "--self-test-workers", type=_positive_int, default=4,
        help="client threads in the self-test (default 4)",
    )
    serve.add_argument(
        "--json", action="store_true", help="self-test: emit the report as JSON"
    )
    serve.set_defaults(handler=_cmd_serve)

    export = sub.add_parser("export-rules", help="learn and export rules")
    _add_common(export)
    export.add_argument("--format", choices=("json", "turtle"), default="json")
    export.add_argument("--min-confidence", type=float, default=0.0)
    export.add_argument("--output", default="-", help="file path or '-' for stdout")
    export.set_defaults(handler=_cmd_export_rules)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
