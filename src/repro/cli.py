"""Command-line interface: ``python -m repro <command>``.

Commands map one-to-one onto the experiment harness plus a rule
export/import utility:

* ``table1`` — regenerate the paper's Table 1;
* ``stats`` — the §5 in-text statistics;
* ``sweeps`` — ablations A1/A2/A4;
* ``blocking`` — the blocking-baseline comparison (A3);
* ``generalization`` — the future-work subsumption experiment (X1);
* ``generality`` — the second-domain (toponym) experiment (X2);
* ``export-rules`` — learn on a preset catalog and write the rules as
  JSON or Turtle.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.learner import LearnerConfig, RuleLearner
from repro.core.serialize import rules_to_json, rules_to_turtle
from repro.datagen.catalog import PART_NUMBER, ElectronicCatalogGenerator
from repro.datagen.config import CatalogConfig


def _preset(name: str, seed: int | None) -> CatalogConfig:
    factories = {
        "thales": CatalogConfig.thales_like,
        "small": CatalogConfig.small,
        "tiny": CatalogConfig.tiny,
    }
    factory = factories[name]
    return factory(seed=seed) if seed is not None else factory()


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--preset",
        choices=("thales", "small", "tiny"),
        default="thales",
        help="catalog preset (default: thales = paper scale)",
    )
    parser.add_argument("--seed", type=int, default=None, help="generator seed")
    parser.add_argument(
        "--support-threshold",
        type=float,
        default=0.002,
        help="the paper's th (default 0.002)",
    )


def _generate(args: argparse.Namespace):
    config = _preset(args.preset, args.seed)
    return ElectronicCatalogGenerator(config).generate()


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments.table1 import run_table1

    report = run_table1(_generate(args), support_threshold=args.support_threshold)
    print(report.format())
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.experiments.stats import run_stats

    print(run_stats(_generate(args), support_threshold=args.support_threshold).format())
    return 0


def _cmd_sweeps(args: argparse.Namespace) -> int:
    from repro.experiments.sweeps import (
        run_scalability,
        run_segmentation_ablation,
        run_support_sweep,
    )

    catalog = _generate(args)
    print("A1 support-threshold sweep")
    print(f"{'th':<10}{'#rules':<8}{'#freq.cls':<10}{'#dec.':<8}{'prec.':>7} {'recall':>7}")
    for row in run_support_sweep(catalog):
        print(row.format())
    print("\nA2 segmentation ablation")
    print(
        f"{'strategy':<14}{'distinct':<10}{'occur.':<10}{'#rules':<8}"
        f"{'#dec.':<8}{'prec.':>7} {'recall':>7}"
    )
    for row in run_segmentation_ablation(catalog, support_threshold=args.support_threshold):
        print(row.format())
    print("\nA4 scalability")
    print(f"{'|TS|':<8}{'learn(s)':<10}{'classify(s)':<12}{'#rules':<8}")
    for row in run_scalability():
        print(row.format())
    return 0


def _cmd_blocking(args: argparse.Namespace) -> int:
    from repro.experiments.blocking_comparison import run_blocking_comparison

    rows = run_blocking_comparison(
        _generate(args),
        n_test_items=args.test_items,
        support_threshold=args.support_threshold,
    )
    print(f"{'method':<22}{'pairs':<12}{'RR':>8} {'PC':>9} {'PQ':>9} {'time':>9}")
    for row in rows:
        print(row.format())
    return 0


def _cmd_generalization(args: argparse.Namespace) -> int:
    from repro.experiments.generalization import run_generalization

    report = run_generalization(
        _generate(args),
        support_threshold=args.support_threshold,
        max_depth_lift=args.max_depth_lift,
    )
    print(report.format())
    return 0


def _cmd_generality(args: argparse.Namespace) -> int:
    from repro.experiments.generality import run_generality

    print(run_generality().format())
    return 0


def _cmd_export_rules(args: argparse.Namespace) -> int:
    catalog = _generate(args)
    learner = RuleLearner(
        LearnerConfig(
            properties=(PART_NUMBER,), support_threshold=args.support_threshold
        )
    )
    rules = learner.learn(catalog.to_training_set())
    if args.min_confidence > 0:
        rules = rules.with_min_confidence(args.min_confidence)
    text = rules_to_turtle(rules) if args.format == "turtle" else rules_to_json(rules)
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w", encoding="utf-8") as sink:
            sink.write(text)
        print(f"wrote {len(rules)} rules to {args.output}", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Classification Rule Learning for Data Linking' "
        "(Pernelle & Sais, EDBT/LWDM 2012)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, handler, help_text in (
        ("table1", _cmd_table1, "regenerate the paper's Table 1"),
        ("stats", _cmd_stats, "the in-text §5 statistics"),
        ("sweeps", _cmd_sweeps, "ablations A1/A2/A4"),
        ("generalization", _cmd_generalization, "future-work experiment X1"),
        ("generality", _cmd_generality, "second-domain experiment X2"),
    ):
        command = sub.add_parser(name, help=help_text)
        _add_common(command)
        command.set_defaults(handler=handler)

    blocking = sub.add_parser("blocking", help="blocking comparison A3")
    _add_common(blocking)
    blocking.add_argument("--test-items", type=int, default=300)
    blocking.set_defaults(handler=_cmd_blocking)

    generalization = next(
        action for action in sub.choices.values() if action.prog.endswith("generalization")
    )
    generalization.add_argument("--max-depth-lift", type=int, default=4)

    export = sub.add_parser("export-rules", help="learn and export rules")
    _add_common(export)
    export.add_argument("--format", choices=("json", "turtle"), default="json")
    export.add_argument("--min-confidence", type=float, default=0.0)
    export.add_argument("--output", default="-", help="file path or '-' for stdout")
    export.set_defaults(handler=_cmd_export_rules)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
