"""N-Triples parsing and serialization (RDF 1.1 N-Triples subset).

Supports the full term syntax needed by this repository: IRIs in angle
brackets, blank node labels, and literals with escapes, language tags and
datatype IRIs. Unicode ``\\uXXXX`` / ``\\UXXXXXXXX`` escapes are handled.
Comments (``# ...``) and blank lines are skipped.
"""

from __future__ import annotations

import io
import re
from typing import Iterable, Iterator, TextIO

from repro.rdf.graph import Graph
from repro.rdf.terms import BNode, IRI, Literal, Term, TermError
from repro.rdf.triples import Triple


class NTriplesParseError(ValueError):
    """Raised on malformed N-Triples input, with line information."""

    def __init__(self, message: str, line_no: int, line: str) -> None:
        super().__init__(f"line {line_no}: {message}: {line.strip()!r}")
        self.line_no = line_no
        self.line = line


_UNESCAPES = {
    "t": "\t",
    "b": "\b",
    "n": "\n",
    "r": "\r",
    "f": "\f",
    '"': '"',
    "'": "'",
    "\\": "\\",
}

_ESCAPE_RE = re.compile(r"\\(u[0-9a-fA-F]{4}|U[0-9a-fA-F]{8}|[tbnrf\"'\\])")


def _unescape(text: str) -> str:
    def replace(match: re.Match[str]) -> str:
        body = match.group(1)
        if body[0] == "u":
            return chr(int(body[1:], 16))
        if body[0] == "U":
            return chr(int(body[1:], 16))
        return _UNESCAPES[body]

    return _ESCAPE_RE.sub(replace, text)


class _LineScanner:
    """Single-pass scanner over one N-Triples line."""

    def __init__(self, line: str, line_no: int) -> None:
        self.line = line
        self.line_no = line_no
        self.pos = 0

    def error(self, message: str) -> NTriplesParseError:
        return NTriplesParseError(message, self.line_no, self.line)

    def skip_ws(self) -> None:
        while self.pos < len(self.line) and self.line[self.pos] in " \t":
            self.pos += 1

    def at_end(self) -> bool:
        return self.pos >= len(self.line)

    def peek(self) -> str:
        if self.at_end():
            raise self.error("unexpected end of line")
        return self.line[self.pos]

    def expect(self, char: str) -> None:
        if self.at_end() or self.line[self.pos] != char:
            raise self.error(f"expected {char!r}")
        self.pos += 1

    def read_iri(self) -> IRI:
        self.expect("<")
        end = self.line.find(">", self.pos)
        if end < 0:
            raise self.error("unterminated IRI")
        raw = self.line[self.pos:end]
        self.pos = end + 1
        try:
            return IRI(_unescape(raw))
        except TermError as exc:
            # e.g. an embedded space from an unterminated IRI swallowing
            # the following token
            raise self.error(f"invalid IRI ({exc})") from exc

    def read_bnode(self) -> BNode:
        self.expect("_")
        self.expect(":")
        start = self.pos
        while self.pos < len(self.line) and (
            self.line[self.pos].isalnum() or self.line[self.pos] in "-_."
        ):
            self.pos += 1
        if self.pos == start:
            raise self.error("empty blank node label")
        return BNode(self.line[start:self.pos])

    def read_literal(self) -> Literal:
        self.expect('"')
        # find the closing unescaped quote
        chunk_start = self.pos
        while True:
            if self.pos >= len(self.line):
                raise self.error("unterminated literal")
            ch = self.line[self.pos]
            if ch == "\\":
                self.pos += 2
                continue
            if ch == '"':
                break
            self.pos += 1
        lexical = _unescape(self.line[chunk_start:self.pos])
        self.pos += 1  # consume closing quote
        if not self.at_end() and self.peek() == "@":
            self.pos += 1
            start = self.pos
            while self.pos < len(self.line) and (
                self.line[self.pos].isalnum() or self.line[self.pos] == "-"
            ):
                self.pos += 1
            if self.pos == start:
                raise self.error("empty language tag")
            return Literal(lexical, language=self.line[start:self.pos])
        if not self.at_end() and self.peek() == "^":
            self.expect("^")
            self.expect("^")
            datatype = self.read_iri()
            return Literal(lexical, datatype=datatype.value)
        return Literal(lexical)

    def read_subject(self) -> Term:
        ch = self.peek()
        if ch == "<":
            return self.read_iri()
        if ch == "_":
            return self.read_bnode()
        raise self.error("subject must be IRI or blank node")

    def read_object(self) -> Term:
        ch = self.peek()
        if ch == "<":
            return self.read_iri()
        if ch == "_":
            return self.read_bnode()
        if ch == '"':
            return self.read_literal()
        raise self.error("object must be IRI, blank node or literal")


def parse_ntriples_lines(lines: Iterable[str]) -> Iterator[Triple]:
    """Parse an iterable of N-Triples lines into triples."""
    for line_no, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        scanner = _LineScanner(raw.rstrip("\n"), line_no)
        scanner.skip_ws()
        subject = scanner.read_subject()
        scanner.skip_ws()
        predicate = scanner.read_iri()
        scanner.skip_ws()
        obj = scanner.read_object()
        scanner.skip_ws()
        scanner.expect(".")
        scanner.skip_ws()
        if not scanner.at_end() and not scanner.line[scanner.pos:].lstrip().startswith("#"):
            raise scanner.error("trailing content after '.'")
        yield Triple(subject, predicate, obj)


def parse_ntriples(source: str | TextIO) -> Graph:
    """Parse N-Triples from a string or text stream into a new graph."""
    if isinstance(source, str):
        source = io.StringIO(source)
    graph = Graph()
    graph.add_all(parse_ntriples_lines(source))
    return graph


def serialize_ntriples(graph: Iterable[Triple], sink: TextIO | None = None) -> str:
    """Serialize triples as N-Triples text, sorted for reproducible output.

    When *sink* is given the text is also written there; the serialized
    string is always returned.
    """
    lines = sorted(triple.n3() for triple in graph)
    text = "\n".join(lines)
    if lines:
        text += "\n"
    if sink is not None:
        sink.write(text)
    return text
