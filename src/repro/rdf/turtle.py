"""Turtle (subset) parsing and serialization.

Catalog exchanges in the wild are Turtle more often than N-Triples;
this module implements the pragmatic subset that covers them:

* ``@prefix`` / ``PREFIX`` declarations and prefixed names;
* ``a`` as ``rdf:type``;
* predicate lists (``;``) and object lists (``,``);
* IRIs, blank node labels, and literals with escapes, language tags and
  datatypes (including the ``'...'`` and long ``\"\"\"...\"\"\"`` forms);
* integer / decimal / boolean abbreviations;
* comments.

Not supported (raises :class:`TurtleParseError`): collections ``( )``,
anonymous blank nodes ``[ ]``, and ``@base``-relative IRIs. The
serializer groups triples by subject with predicate lists and compacts
IRIs through a :class:`~repro.rdf.namespace.NamespaceManager`.
"""

from __future__ import annotations

import re
from typing import Dict, Iterator, List, Tuple

from repro.rdf.graph import Graph
from repro.rdf.namespace import RDF, NamespaceManager
from repro.rdf.ntriples import _unescape
from repro.rdf.terms import (
    BNode,
    IRI,
    Literal,
    Term,
    TermError,
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_INTEGER,
)


class TurtleParseError(ValueError):
    """Raised on malformed or unsupported Turtle input."""

    def __init__(self, message: str, position: int, text: str) -> None:
        line = text.count("\n", 0, position) + 1
        super().__init__(f"line {line}: {message}")
        self.line = line


_PNAME_RE = re.compile(r"([A-Za-z_][\w.-]*)?:([\w.-]*)")
_NUMBER_RE = re.compile(r"[+-]?\d+(\.\d+)?([eE][+-]?\d+)?")
_PREFIX_RE = re.compile(
    r"(@prefix|PREFIX)\s+([A-Za-z_][\w.-]*)?:\s*<([^>]*)>\s*\.?",
    re.IGNORECASE,
)


class _TurtleScanner:
    """Cursor-based scanner over the whole Turtle document."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.prefixes: Dict[str, str] = {}

    def error(self, message: str) -> TurtleParseError:
        return TurtleParseError(message, self.pos, self.text)

    def at_end(self) -> bool:
        self.skip_ws()
        return self.pos >= len(self.text)

    def skip_ws(self) -> None:
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if ch in " \t\r\n":
                self.pos += 1
            elif ch == "#":
                newline = self.text.find("\n", self.pos)
                self.pos = len(self.text) if newline < 0 else newline + 1
            else:
                return

    def peek(self) -> str:
        if self.pos >= len(self.text):
            raise self.error("unexpected end of input")
        return self.text[self.pos]

    def expect(self, token: str) -> None:
        self.skip_ws()
        if not self.text.startswith(token, self.pos):
            raise self.error(f"expected {token!r}")
        self.pos += len(token)

    def try_token(self, token: str) -> bool:
        self.skip_ws()
        if self.text.startswith(token, self.pos):
            self.pos += len(token)
            return True
        return False

    # ------------------------------------------------------------------
    # directives
    # ------------------------------------------------------------------
    def try_prefix(self) -> bool:
        self.skip_ws()
        match = _PREFIX_RE.match(self.text, self.pos)
        if not match:
            if self.text.startswith("@base", self.pos) or self.text.startswith(
                "BASE", self.pos
            ):
                raise self.error("@base is not supported by this subset")
            return False
        prefix = match.group(2) or ""
        self.prefixes[prefix] = match.group(3)
        self.pos = match.end()
        return True

    # ------------------------------------------------------------------
    # terms
    # ------------------------------------------------------------------
    def read_iri_or_pname(self) -> IRI:
        self.skip_ws()
        ch = self.peek()
        if ch == "<":
            end = self.text.find(">", self.pos + 1)
            if end < 0:
                raise self.error("unterminated IRI")
            raw = self.text[self.pos + 1:end]
            self.pos = end + 1
            try:
                return IRI(_unescape(raw))
            except TermError as exc:
                raise self.error(f"invalid IRI ({exc})") from exc
        match = _PNAME_RE.match(self.text, self.pos)
        if not match:
            raise self.error("expected IRI or prefixed name")
        prefix = match.group(1) or ""
        local = match.group(2)
        if prefix not in self.prefixes:
            raise self.error(f"unknown prefix {prefix!r}")
        self.pos = match.end()
        return IRI(self.prefixes[prefix] + local)

    def read_subject(self) -> Term:
        self.skip_ws()
        ch = self.peek()
        if ch == "_":
            return self.read_bnode()
        if ch == "[":
            raise self.error("anonymous blank nodes are not supported")
        return self.read_iri_or_pname()

    def read_predicate(self) -> IRI:
        self.skip_ws()
        if (
            self.text.startswith("a", self.pos)
            and self.pos + 1 < len(self.text)
            and self.text[self.pos + 1] in " \t\r\n<"
        ):
            self.pos += 1
            return RDF.type
        return self.read_iri_or_pname()

    def read_bnode(self) -> BNode:
        self.expect("_")
        self.expect(":")
        match = re.match(r"[\w.-]+", self.text[self.pos:])
        if not match:
            raise self.error("empty blank node label")
        self.pos += match.end()
        return BNode(match.group(0))

    def read_object(self) -> Term:
        self.skip_ws()
        ch = self.peek()
        # boolean abbreviations first — but 'true:x' is a prefixed name
        # and 'truely' a (hypothetical) pname fragment, so the word must
        # end at a non-name character
        for word in ("true", "false"):
            if self.text.startswith(word, self.pos):
                follow = self.text[self.pos + len(word):self.pos + len(word) + 1]
                if not follow or not (follow.isalnum() or follow in "_.-:"):
                    self.pos += len(word)
                    return Literal(word, datatype=XSD_BOOLEAN)
        # blank nodes before prefixed names: '_:b1' matches the pname
        # pattern too, but Turtle prefix names never start with '_'
        if ch == "_" and self.text.startswith("_:", self.pos):
            return self.read_bnode()
        if ch == "<" or _PNAME_RE.match(self.text, self.pos):
            return self.read_iri_or_pname()
        if ch == "(":
            raise self.error("collections are not supported")
        if ch == "[":
            raise self.error("anonymous blank nodes are not supported")
        if ch in "\"'":
            return self.read_literal()
        match = _NUMBER_RE.match(self.text, self.pos)
        if match:
            lexical = match.group(0)
            self.pos = match.end()
            datatype = XSD_DECIMAL if ("." in lexical or "e" in lexical.lower()) else XSD_INTEGER
            return Literal(lexical, datatype=datatype)
        raise self.error("expected an object term")

    def read_literal(self) -> Literal:
        quote = self.peek()
        long_quote = quote * 3
        if self.text.startswith(long_quote, self.pos):
            end = self.text.find(long_quote, self.pos + 3)
            if end < 0:
                raise self.error("unterminated long literal")
            lexical = _unescape(self.text[self.pos + 3:end])
            self.pos = end + 3
        else:
            self.pos += 1
            start = self.pos
            while True:
                if self.pos >= len(self.text):
                    raise self.error("unterminated literal")
                ch = self.text[self.pos]
                if ch == "\\":
                    self.pos += 2
                    continue
                if ch == quote:
                    break
                if ch == "\n":
                    raise self.error("newline in short literal")
                self.pos += 1
            lexical = _unescape(self.text[start:self.pos])
            self.pos += 1
        if self.try_token("^^"):
            datatype = self.read_iri_or_pname()
            return Literal(lexical, datatype=datatype.value)
        self.skip_nothing_language_ok = True
        if self.pos < len(self.text) and self.text[self.pos] == "@":
            self.pos += 1
            match = re.match(r"[A-Za-z]+(-[A-Za-z0-9]+)*", self.text[self.pos:])
            if not match:
                raise self.error("empty language tag")
            self.pos += match.end()
            return Literal(lexical, language=match.group(0))
        return Literal(lexical)


def parse_turtle(text: str) -> Graph:
    """Parse Turtle *text* into a new :class:`Graph`."""
    from repro.rdf.triples import Triple

    scanner = _TurtleScanner(text)
    graph = Graph()
    while not scanner.at_end():
        if scanner.try_prefix():
            continue
        subject = scanner.read_subject()
        while True:
            predicate = scanner.read_predicate()
            while True:
                obj = scanner.read_object()
                graph.add(Triple(subject, predicate, obj))
                if not scanner.try_token(","):
                    break
            if not scanner.try_token(";"):
                break
            # a dangling ';' directly before '.' is legal Turtle
            scanner.skip_ws()
            if scanner.pos < len(scanner.text) and scanner.peek() == ".":
                break
        scanner.expect(".")
    return graph


def serialize_turtle(
    graph: Graph,
    namespaces: NamespaceManager | None = None,
) -> str:
    """Serialize *graph* as Turtle, grouped by subject, sorted, compact."""
    manager = namespaces or NamespaceManager()

    def compact(term: Term) -> str:
        if isinstance(term, IRI):
            qname = manager.qname(term)
            # NamespaceManager.qname falls back to <iri>; both forms are
            # valid Turtle tokens
            return qname
        return term.n3()

    prefixes_used: set[str] = set()

    def note_prefix(token: str) -> str:
        if not token.startswith("<") and ":" in token:
            prefixes_used.add(token.split(":", 1)[0])
        return token

    by_subject: Dict[Term, List[Tuple[IRI, Term]]] = {}
    for triple in graph:
        by_subject.setdefault(triple.subject, []).append(
            (triple.predicate, triple.object)
        )

    blocks: List[str] = []
    for subject in sorted(by_subject, key=lambda t: t.n3()):
        pairs = by_subject[subject]
        by_predicate: Dict[IRI, List[Term]] = {}
        for predicate, obj in pairs:
            by_predicate.setdefault(predicate, []).append(obj)
        lines: List[str] = []
        subject_token = note_prefix(compact(subject))
        for i, predicate in enumerate(sorted(by_predicate, key=lambda p: p.value)):
            if predicate == RDF.type:
                pred_token = "a"
            else:
                pred_token = note_prefix(compact(predicate))
            objects = ", ".join(
                note_prefix(compact(obj))
                for obj in sorted(by_predicate[predicate], key=lambda t: t.n3())
            )
            prefix = f"{subject_token} " if i == 0 else "    "
            suffix = " ." if i == len(by_predicate) - 1 else " ;"
            lines.append(f"{prefix}{pred_token} {objects}{suffix}")
        blocks.append("\n".join(lines))

    header_lines = []
    for prefix, namespace in sorted(manager.namespaces()):
        if prefix in prefixes_used:
            header_lines.append(f"@prefix {prefix}: <{namespace.base}> .")
    header = "\n".join(header_lines)
    body = "\n\n".join(blocks)
    if header and body:
        return header + "\n\n" + body + "\n"
    return (header or body) + ("\n" if (header or body) else "")
