"""An in-memory RDF graph with three triple indexes.

The graph maintains SPO, POS and OSP nested-dictionary indexes so that any
triple pattern — with ``None`` as a wildcard — is answered by iterating the
most selective index. This is the workhorse container for the catalog
source ``S_L``, the provider source ``S_E`` and the training-set graph.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Set, Tuple

from repro.rdf.terms import IRI, Literal, Term
from repro.rdf.triples import Triple

_Pattern = Tuple[Optional[Term], Optional[IRI], Optional[Term]]
_Index = Dict[Term, Dict[Term, Set[Term]]]


def _index_add(index: _Index, a: Term, b: Term, c: Term) -> None:
    index.setdefault(a, {}).setdefault(b, set()).add(c)


def _index_remove(index: _Index, a: Term, b: Term, c: Term) -> None:
    level1 = index.get(a)
    if level1 is None:
        return
    level2 = level1.get(b)
    if level2 is None:
        return
    level2.discard(c)
    if not level2:
        del level1[b]
    if not level1:
        del index[a]


class Graph:
    """A set of RDF triples with pattern-matching access.

    >>> g = Graph()
    >>> g.add(Triple(EX.p1, EX.partNumber, Literal("CRCW0805-10K")))
    >>> list(g.objects(EX.p1, EX.partNumber))
    [Literal(lexical='CRCW0805-10K', ...)]
    """

    __slots__ = ("_spo", "_pos", "_osp", "_size", "identifier")

    def __init__(
        self,
        triples: Iterable[Triple] = (),
        identifier: str | None = None,
    ) -> None:
        self._spo: _Index = {}
        self._pos: _Index = {}
        self._osp: _Index = {}
        self._size = 0
        #: Optional graph name; used by :class:`repro.rdf.dataset.Dataset`.
        self.identifier = identifier
        for triple in triples:
            self.add(triple)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, triple: Triple) -> bool:
        """Add *triple*; return ``True`` if it was not already present."""
        s, p, o = triple
        existing = self._spo.get(s, {}).get(p)
        if existing is not None and o in existing:
            return False
        _index_add(self._spo, s, p, o)
        _index_add(self._pos, p, o, s)
        _index_add(self._osp, o, s, p)
        self._size += 1
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Add every triple in *triples*; return how many were new."""
        return sum(1 for t in triples if self.add(t))

    def remove(self, triple: Triple) -> bool:
        """Remove *triple*; return ``True`` if it was present."""
        s, p, o = triple
        existing = self._spo.get(s, {}).get(p)
        if existing is None or o not in existing:
            return False
        _index_remove(self._spo, s, p, o)
        _index_remove(self._pos, p, o, s)
        _index_remove(self._osp, o, s, p)
        self._size -= 1
        return True

    def remove_matching(self, s: Term | None, p: IRI | None, o: Term | None) -> int:
        """Remove all triples matching the pattern; return the count."""
        doomed = list(self.triples(s, p, o))
        for triple in doomed:
            self.remove(triple)
        return len(doomed)

    # ------------------------------------------------------------------
    # pattern matching
    # ------------------------------------------------------------------
    def triples(
        self,
        s: Term | None = None,
        p: IRI | None = None,
        o: Term | None = None,
    ) -> Iterator[Triple]:
        """Yield triples matching the (s, p, o) pattern; ``None`` = wildcard."""
        if s is not None:
            po = self._spo.get(s)
            if po is None:
                return
            if p is not None:
                objs = po.get(p)
                if objs is None:
                    return
                if o is not None:
                    if o in objs:
                        yield Triple(s, p, o)
                    return
                for obj in objs:
                    yield Triple(s, p, obj)
                return
            for pred, objs in po.items():
                if o is not None:
                    if o in objs:
                        yield Triple(s, pred, o)
                    continue
                for obj in objs:
                    yield Triple(s, pred, obj)
            return
        if p is not None:
            os_ = self._pos.get(p)
            if os_ is None:
                return
            if o is not None:
                subs = os_.get(o)
                if subs is None:
                    return
                for sub in subs:
                    yield Triple(sub, p, o)
                return
            for obj, subs in os_.items():
                for sub in subs:
                    yield Triple(sub, p, obj)
            return
        if o is not None:
            sp = self._osp.get(o)
            if sp is None:
                return
            for sub, preds in sp.items():
                for pred in preds:
                    yield Triple(sub, pred, o)
            return
        for sub, po in self._spo.items():
            for pred, objs in po.items():
                for obj in objs:
                    yield Triple(sub, pred, obj)

    def subjects(self, p: IRI | None = None, o: Term | None = None) -> Iterator[Term]:
        """Yield distinct subjects of triples matching ``(?, p, o)``."""
        seen: Set[Term] = set()
        for triple in self.triples(None, p, o):
            if triple.subject not in seen:
                seen.add(triple.subject)
                yield triple.subject

    def predicates(self, s: Term | None = None, o: Term | None = None) -> Iterator[IRI]:
        """Yield distinct predicates of triples matching ``(s, ?, o)``."""
        seen: Set[IRI] = set()
        for triple in self.triples(s, None, o):
            if triple.predicate not in seen:
                seen.add(triple.predicate)
                yield triple.predicate

    def objects(self, s: Term | None = None, p: IRI | None = None) -> Iterator[Term]:
        """Yield distinct objects of triples matching ``(s, p, ?)``."""
        seen: Set[Term] = set()
        for triple in self.triples(s, p, None):
            if triple.object not in seen:
                seen.add(triple.object)
                yield triple.object

    def value(self, s: Term | None = None, p: IRI | None = None, o: Term | None = None) -> Term | None:
        """Return one term filling the single ``None``-but-wanted slot.

        Exactly the convenience of rdflib's ``Graph.value``: with ``(s, p)``
        given, returns one object or ``None``.
        """
        if s is None and o is not None:
            for triple in self.triples(None, p, o):
                return triple.subject
            return None
        for triple in self.triples(s, p, None):
            return triple.object
        return None

    def literal_values(self, s: Term, p: IRI) -> list[str]:
        """Return the lexical forms of literal objects of ``(s, p, ?)``."""
        return [
            obj.lexical
            for obj in self.objects(s, p)
            if isinstance(obj, Literal)
        ]

    # ------------------------------------------------------------------
    # set protocol
    # ------------------------------------------------------------------
    def __contains__(self, triple: Triple) -> bool:
        objs = self._spo.get(triple.subject, {}).get(triple.predicate)
        return objs is not None and triple.object in objs

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    def __bool__(self) -> bool:
        return self._size > 0

    def copy(self) -> "Graph":
        """Return a shallow copy (terms are immutable, so this is safe)."""
        return Graph(self.triples(), identifier=self.identifier)

    def __or__(self, other: "Graph") -> "Graph":
        """Union of two graphs as a new graph."""
        merged = self.copy()
        merged.add_all(other.triples())
        return merged

    def __repr__(self) -> str:
        name = f" {self.identifier!r}" if self.identifier else ""
        return f"<Graph{name} size={self._size}>"
