"""RDF terms: IRIs, literals and blank nodes.

Terms are immutable, hashable values so they can serve as dictionary keys
in the triple indexes of :class:`repro.rdf.graph.Graph`. Equality follows
RDF 1.1 term equality: two literals are equal when their lexical form,
datatype and language tag all coincide.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Union

_XSD = "http://www.w3.org/2001/XMLSchema#"

XSD_STRING = _XSD + "string"
XSD_INTEGER = _XSD + "integer"
XSD_DECIMAL = _XSD + "decimal"
XSD_DOUBLE = _XSD + "double"
XSD_BOOLEAN = _XSD + "boolean"
RDF_LANGSTRING = "http://www.w3.org/1999/02/22-rdf-syntax-ns#langString"


class TermError(ValueError):
    """Raised when a term is constructed from invalid components."""


@dataclass(frozen=True, slots=True)
class IRI:
    """An absolute IRI reference, e.g. ``IRI("http://example.org/p1")``.

    Only minimal validation is applied (non-empty, no angle brackets and no
    literal whitespace) — full RFC 3987 validation is out of scope and the
    generators in :mod:`repro.datagen` only emit well-formed IRIs.
    """

    value: str

    def __post_init__(self) -> None:
        if not self.value:
            raise TermError("IRI must be a non-empty string")
        if any(ch in self.value for ch in "<>\" \n\t\r"):
            raise TermError(f"IRI contains forbidden character: {self.value!r}")

    def __str__(self) -> str:
        return self.value

    def n3(self) -> str:
        """Return the N-Triples serialization, e.g. ``<http://...>``."""
        return f"<{self.value}>"

    @property
    def local_name(self) -> str:
        """The fragment after the last ``#`` or ``/`` (best-effort)."""
        for sep in ("#", "/"):
            if sep in self.value:
                tail = self.value.rsplit(sep, 1)[1]
                if tail:
                    return tail
        return self.value


_ESCAPES = {
    "\\": "\\\\",
    '"': '\\"',
    "\n": "\\n",
    "\r": "\\r",
    "\t": "\\t",
}


def _escape_literal(text: str) -> str:
    out = []
    for ch in text:
        out.append(_ESCAPES.get(ch, ch))
    return "".join(out)


@dataclass(frozen=True, slots=True)
class Literal:
    """An RDF literal with optional datatype IRI or language tag.

    ``Literal("ohm")`` is a plain ``xsd:string`` literal;
    ``Literal("42", datatype=XSD_INTEGER)`` a typed one;
    ``Literal("Widerstand", language="de")`` a language-tagged string.
    A literal cannot carry both a datatype and a language tag (RDF 1.1:
    language-tagged strings implicitly have datatype ``rdf:langString``).
    """

    lexical: str
    datatype: str = XSD_STRING
    language: str | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.lexical, str):
            raise TermError(
                f"literal lexical form must be str, got {type(self.lexical).__name__}"
            )
        if self.language is not None:
            if self.datatype not in (XSD_STRING, RDF_LANGSTRING):
                raise TermError("a literal cannot have both datatype and language")
            object.__setattr__(self, "datatype", RDF_LANGSTRING)
            object.__setattr__(self, "language", self.language.lower())

    def __str__(self) -> str:
        return self.lexical

    def n3(self) -> str:
        """Return the N-Triples serialization of this literal."""
        body = f'"{_escape_literal(self.lexical)}"'
        if self.language is not None:
            return f"{body}@{self.language}"
        if self.datatype != XSD_STRING:
            return f"{body}^^<{self.datatype}>"
        return body

    def to_python(self) -> Union[str, int, float, bool]:
        """Convert to the closest Python value for known XSD datatypes.

        Unknown datatypes and unparsable lexical forms fall back to the raw
        lexical string rather than raising: the learner treats every value
        as text anyway, so a lossy conversion must never abort a pipeline.
        """
        try:
            if self.datatype == XSD_INTEGER:
                return int(self.lexical)
            if self.datatype in (XSD_DECIMAL, XSD_DOUBLE):
                return float(self.lexical)
            if self.datatype == XSD_BOOLEAN:
                return self.lexical.strip() in ("true", "1")
        except ValueError:
            return self.lexical
        return self.lexical


_bnode_counter = itertools.count()
_bnode_lock = threading.Lock()


def _next_bnode_id() -> str:
    with _bnode_lock:
        return f"b{next(_bnode_counter)}"


@dataclass(frozen=True, slots=True)
class BNode:
    """A blank node. Without an explicit id, a fresh unique id is minted."""

    id: str = field(default_factory=_next_bnode_id)

    def __post_init__(self) -> None:
        if not self.id:
            raise TermError("blank node id must be non-empty")

    def __str__(self) -> str:
        return f"_:{self.id}"

    def n3(self) -> str:
        """Return the N-Triples serialization, e.g. ``_:b0``."""
        return f"_:{self.id}"


Term = Union[IRI, Literal, BNode]


def term_from_python(value: object) -> Term:
    """Coerce a Python value into an RDF term.

    Existing terms pass through; ``bool``/``int``/``float`` become typed
    literals; everything else is stringified into a plain literal. This is
    the convenience path used by the data generators and examples.
    """
    if isinstance(value, (IRI, Literal, BNode)):
        return value
    if isinstance(value, bool):
        return Literal("true" if value else "false", datatype=XSD_BOOLEAN)
    if isinstance(value, int):
        return Literal(str(value), datatype=XSD_INTEGER)
    if isinstance(value, float):
        return Literal(repr(value), datatype=XSD_DOUBLE)
    return Literal(str(value))
