"""Namespaces and CURIE management for readable IRIs.

A :class:`Namespace` mints IRIs by attribute or item access::

    EX = Namespace("http://example.org/")
    EX.partNumber        # IRI("http://example.org/partNumber")
    EX["Fixed-film"]     # IRI("http://example.org/Fixed-film")

The well-known vocabularies used throughout the repository (RDF, RDFS, OWL,
XSD) are provided as module-level constants, plus ``EX`` as the default
namespace for examples and generated data.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.rdf.terms import IRI


class Namespace:
    """A factory of IRIs sharing a common prefix."""

    __slots__ = ("_base",)

    def __init__(self, base: str) -> None:
        if not base:
            raise ValueError("namespace base must be non-empty")
        self._base = base

    @property
    def base(self) -> str:
        """The namespace IRI prefix string."""
        return self._base

    def term(self, name: str) -> IRI:
        """Mint the IRI ``base + name``."""
        return IRI(self._base + name)

    def __getattr__(self, name: str) -> IRI:
        if name.startswith("_"):
            raise AttributeError(name)
        return self.term(name)

    def __getitem__(self, name: str) -> IRI:
        return self.term(name)

    def __contains__(self, iri: IRI | str) -> bool:
        value = iri.value if isinstance(iri, IRI) else iri
        return value.startswith(self._base)

    def local(self, iri: IRI) -> str:
        """Strip the namespace prefix from *iri*.

        Raises :class:`ValueError` when the IRI is outside this namespace.
        """
        if iri not in self:
            raise ValueError(f"{iri} is not in namespace {self._base}")
        return iri.value[len(self._base):]

    def __repr__(self) -> str:
        return f"Namespace({self._base!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Namespace) and other._base == self._base

    def __hash__(self) -> int:
        return hash(("Namespace", self._base))


RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
OWL = Namespace("http://www.w3.org/2002/07/owl#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")
EX = Namespace("http://example.org/")


class NamespaceManager:
    """Bidirectional prefix <-> namespace registry used for CURIE display.

    The manager is purely cosmetic — graphs store full IRIs — but examples
    and reports benefit from compact, human-readable qualified names.
    """

    def __init__(self) -> None:
        self._by_prefix: Dict[str, Namespace] = {}
        self.bind("rdf", RDF)
        self.bind("rdfs", RDFS)
        self.bind("owl", OWL)
        self.bind("xsd", XSD)

    def bind(self, prefix: str, namespace: Namespace | str) -> None:
        """Register *prefix* for *namespace*, replacing any previous binding."""
        if isinstance(namespace, str):
            namespace = Namespace(namespace)
        self._by_prefix[prefix] = namespace

    def namespaces(self) -> Iterator[Tuple[str, Namespace]]:
        """Iterate over (prefix, namespace) bindings."""
        yield from self._by_prefix.items()

    def expand(self, curie: str) -> IRI:
        """Expand ``prefix:local`` into a full IRI.

        Raises :class:`KeyError` for unknown prefixes and
        :class:`ValueError` when the input has no colon.
        """
        if ":" not in curie:
            raise ValueError(f"not a CURIE: {curie!r}")
        prefix, local = curie.split(":", 1)
        return self._by_prefix[prefix].term(local)

    def qname(self, iri: IRI) -> str:
        """Compact *iri* into ``prefix:local`` if a binding matches.

        Longest-prefix match wins; unmatched IRIs come back as ``<iri>``.
        """
        best: Tuple[int, str, Namespace] | None = None
        for prefix, ns in self._by_prefix.items():
            if iri in ns:
                candidate = (len(ns.base), prefix, ns)
                if best is None or candidate[0] > best[0]:
                    best = candidate
        if best is None:
            return iri.n3()
        _, prefix, ns = best
        return f"{prefix}:{ns.local(iri)}"
