"""A provenance-aware collection of named graphs.

The paper stores each linked pair "with their provenance information
(external or local)". The :class:`Dataset` models exactly that: named
graphs keyed by a provenance label (e.g. ``"local"`` / ``"external"``),
plus cross-graph queries.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Term
from repro.rdf.triples import Triple

#: Conventional graph names for the paper's two sources.
LOCAL = "local"
EXTERNAL = "external"


class Dataset:
    """Named graphs with provenance-tracking helpers.

    >>> ds = Dataset()
    >>> ds.graph("local").add(Triple(EX.p1, RDF.type, EX.Resistor))
    >>> ds.provenance_of(EX.p1)
    {'local'}
    """

    def __init__(self) -> None:
        self._graphs: Dict[str, Graph] = {}

    def graph(self, name: str) -> Graph:
        """Return the named graph, creating it on first access."""
        if name not in self._graphs:
            self._graphs[name] = Graph(identifier=name)
        return self._graphs[name]

    @property
    def local(self) -> Graph:
        """The conventional local-source graph (catalog ``S_L``)."""
        return self.graph(LOCAL)

    @property
    def external(self) -> Graph:
        """The conventional external-source graph (provider ``S_E``)."""
        return self.graph(EXTERNAL)

    def names(self) -> Iterator[str]:
        """Yield the names of all graphs in the dataset."""
        yield from self._graphs

    def graphs(self) -> Iterator[Graph]:
        """Yield all graphs in the dataset."""
        yield from self._graphs.values()

    def __contains__(self, name: str) -> bool:
        return name in self._graphs

    def __len__(self) -> int:
        """Total number of triples across all graphs."""
        return sum(len(g) for g in self._graphs.values())

    def quads(self) -> Iterator[Tuple[Triple, str]]:
        """Yield (triple, graph-name) pairs across the dataset."""
        for name, graph in self._graphs.items():
            for triple in graph:
                yield triple, name

    def triples(
        self,
        s: Term | None = None,
        p: IRI | None = None,
        o: Term | None = None,
    ) -> Iterator[Triple]:
        """Pattern-match across all graphs (duplicates across graphs kept)."""
        for graph in self._graphs.values():
            yield from graph.triples(s, p, o)

    def provenance_of(self, subject: Term) -> set[str]:
        """Names of the graphs in which *subject* appears as a subject."""
        return {
            name
            for name, graph in self._graphs.items()
            if next(graph.triples(subject, None, None), None) is not None
        }

    def union(self) -> Graph:
        """Merge every named graph into one new anonymous graph."""
        merged = Graph()
        for graph in self._graphs.values():
            merged.add_all(graph.triples())
        return merged

    def __repr__(self) -> str:
        parts = ", ".join(f"{n}:{len(g)}" for n, g in self._graphs.items())
        return f"<Dataset {parts or 'empty'}>"
