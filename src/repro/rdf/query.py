"""Basic graph pattern (BGP) matching — a SPARQL-lite for the substrate.

Enough query power for catalog exploration and tests without a full
SPARQL engine: conjunctive triple patterns with shared variables,
solved by backtracking with a most-selective-pattern-first order.

>>> i, c = Variable("i"), Variable("c")
>>> list(match_bgp(graph, [
...     (i, RDF.type, c),
...     (i, EX.partNumber, Literal("T83-220uF")),
... ]))
[{Variable('i'): IRI(...), Variable('c'): IRI(...)}]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple, Union

from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Term


@dataclass(frozen=True, slots=True)
class Variable:
    """A query variable, compared and hashed by name."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("variable name must be non-empty")

    def __str__(self) -> str:
        return f"?{self.name}"


PatternTerm = Union[Term, Variable]
TriplePattern = Tuple[PatternTerm, PatternTerm, PatternTerm]
Bindings = Dict[Variable, Term]


class QueryError(ValueError):
    """Raised for structurally invalid queries."""


def _substitute(term: PatternTerm, bindings: Bindings) -> PatternTerm:
    if isinstance(term, Variable):
        return bindings.get(term, term)
    return term


def _ground(term: PatternTerm) -> Term | None:
    """The term if ground, else None (wildcard for Graph.triples)."""
    return None if isinstance(term, Variable) else term


def _pattern_selectivity(pattern: TriplePattern, bindings: Bindings, graph: Graph) -> int:
    """Rough cost: number of triples matching with current bindings."""
    s, p, o = (_substitute(t, bindings) for t in pattern)
    s_g, p_g, o_g = _ground(s), _ground(p), _ground(o)
    if p_g is not None and not isinstance(p_g, IRI):
        return 0  # a non-IRI predicate can never match
    return sum(1 for _ in graph.triples(s_g, p_g, o_g))  # small graphs: fine


def _solve(
    graph: Graph,
    patterns: List[TriplePattern],
    bindings: Bindings,
) -> Iterator[Bindings]:
    if not patterns:
        yield dict(bindings)
        return
    # choose the most selective remaining pattern under current bindings
    costed = sorted(
        range(len(patterns)),
        key=lambda i: _pattern_selectivity(patterns[i], bindings, graph),
    )
    index = costed[0]
    pattern = patterns[index]
    rest = patterns[:index] + patterns[index + 1:]

    s, p, o = (_substitute(t, bindings) for t in pattern)
    p_g = _ground(p)
    if p_g is not None and not isinstance(p_g, IRI):
        return
    for triple in graph.triples(_ground(s), p_g, _ground(o)):
        new_bindings = dict(bindings)
        consistent = True
        for pattern_term, bound_term in (
            (s, triple.subject),
            (p, triple.predicate),
            (o, triple.object),
        ):
            if isinstance(pattern_term, Variable):
                existing = new_bindings.get(pattern_term)
                if existing is None:
                    new_bindings[pattern_term] = bound_term
                elif existing != bound_term:
                    consistent = False
                    break
        if consistent:
            yield from _solve(graph, rest, new_bindings)


def match_bgp(
    graph: Graph,
    patterns: Sequence[TriplePattern],
) -> Iterator[Bindings]:
    """Yield every variable binding satisfying all *patterns* jointly."""
    if not patterns:
        raise QueryError("a BGP needs at least one triple pattern")
    for pattern in patterns:
        if len(pattern) != 3:
            raise QueryError(f"not a triple pattern: {pattern!r}")
    yield from _solve(graph, list(patterns), {})


def select(
    graph: Graph,
    variables: Sequence[Variable],
    patterns: Sequence[TriplePattern],
    distinct: bool = True,
) -> List[Tuple[Term, ...]]:
    """SELECT-style projection of :func:`match_bgp` solutions.

    Returns rows in deterministic (sorted) order; ``distinct`` removes
    duplicate rows (the default, as in SPARQL ``SELECT DISTINCT``).
    """
    if not variables:
        raise QueryError("select needs at least one projection variable")
    rows = []
    for bindings in match_bgp(graph, patterns):
        try:
            rows.append(tuple(bindings[v] for v in variables))
        except KeyError as exc:
            raise QueryError(
                f"projection variable {exc.args[0]} is not bound by the patterns"
            ) from None
    if distinct:
        rows = list(set(rows))
    rows.sort(key=lambda row: tuple(term.n3() for term in row))
    return rows


def ask(graph: Graph, patterns: Sequence[TriplePattern]) -> bool:
    """ASK-style: does at least one solution exist?"""
    return next(iter(match_bgp(graph, patterns)), None) is not None
