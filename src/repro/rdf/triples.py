"""The RDF statement: an immutable (subject, predicate, object) triple."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.rdf.terms import BNode, IRI, Literal, Term, TermError


@dataclass(frozen=True, slots=True)
class Triple:
    """An RDF triple.

    RDF 1.1 constraints are enforced at construction time:

    * the subject is an :class:`IRI` or :class:`BNode` (never a literal);
    * the predicate is an :class:`IRI`;
    * the object is any term.
    """

    subject: Term
    predicate: IRI
    object: Term

    def __post_init__(self) -> None:
        if isinstance(self.subject, Literal):
            raise TermError("triple subject cannot be a literal")
        if not isinstance(self.subject, (IRI, BNode)):
            raise TermError(
                f"triple subject must be IRI or BNode, got {type(self.subject).__name__}"
            )
        if not isinstance(self.predicate, IRI):
            raise TermError(
                f"triple predicate must be IRI, got {type(self.predicate).__name__}"
            )
        if not isinstance(self.object, (IRI, BNode, Literal)):
            raise TermError(
                f"triple object must be an RDF term, got {type(self.object).__name__}"
            )

    def __iter__(self) -> Iterator[Term]:
        """Support ``s, p, o = triple`` unpacking."""
        yield self.subject
        yield self.predicate
        yield self.object

    def n3(self) -> str:
        """Return the N-Triples line for this triple (without newline)."""
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."

    def __str__(self) -> str:
        return self.n3()
