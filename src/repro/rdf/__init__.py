"""RDF substrate: terms, triples, indexed graphs, namespaces and I/O.

This package is a small, dependency-free RDF data model sufficient to host
the paper's data: a local catalog source ``S_L`` typed against an OWL
ontology ``O_L``, an external provider source ``S_E`` with unknown schema,
and the expert-validated ``sameAs`` training set ``TS`` with provenance.

The model follows RDF 1.1 concepts: :class:`IRI`, :class:`Literal` and
:class:`BNode` terms, immutable :class:`Triple` statements, an indexed
:class:`Graph` supporting pattern matching, and a provenance-aware
:class:`Dataset` of named graphs.
"""

from repro.rdf.terms import IRI, Literal, BNode, Term, term_from_python
from repro.rdf.triples import Triple
from repro.rdf.graph import Graph
from repro.rdf.dataset import Dataset
from repro.rdf.namespace import (
    Namespace,
    NamespaceManager,
    RDF,
    RDFS,
    OWL,
    XSD,
    EX,
)
from repro.rdf.ntriples import (
    parse_ntriples,
    serialize_ntriples,
    NTriplesParseError,
)
from repro.rdf.turtle import (
    parse_turtle,
    serialize_turtle,
    TurtleParseError,
)
from repro.rdf.query import (
    Variable,
    match_bgp,
    select,
    ask,
    QueryError,
)

__all__ = [
    "IRI",
    "Literal",
    "BNode",
    "Term",
    "term_from_python",
    "Triple",
    "Graph",
    "Dataset",
    "Namespace",
    "NamespaceManager",
    "RDF",
    "RDFS",
    "OWL",
    "XSD",
    "EX",
    "parse_ntriples",
    "serialize_ntriples",
    "NTriplesParseError",
    "parse_turtle",
    "serialize_turtle",
    "TurtleParseError",
    "Variable",
    "match_bgp",
    "select",
    "ask",
    "QueryError",
]
