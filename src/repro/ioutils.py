"""Crash-safe filesystem primitives shared across subsystems.

Benchmark result files (:mod:`repro.bench.io`) and index artifact
bundles (:mod:`repro.index.artifacts`) both persist state that other
runs read back later — a writer killed mid-write must never leave a
truncated file where a complete one used to be. Both go through
:func:`atomic_write_text`: the bytes land in a uniquely-named temp file
*in the same directory* (so the final rename cannot cross filesystems)
and are published with ``os.replace``, which is atomic on POSIX and
Windows. Readers see either the old complete file or the new complete
file, never a partial one — including under concurrent writers, since
every writer gets its own temp name from :func:`tempfile.mkstemp`.

:func:`find_repo_root` locates the repository checkout from an anchor
path — the default-directory resolution used by the benchmark I/O so
``repro bench run`` from a subdirectory stops scattering ``benchmarks/``
trees relative to whatever the cwd happens to be.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Optional

#: Filenames that mark the repository root, checked in order. The
#: ``benchmarks`` directory is required alongside so an unrelated
#: checkout that merely has a pyproject is not mistaken for this repo.
_ROOT_MARKER = "pyproject.toml"
_ROOT_SIBLING = "benchmarks"


def atomic_write_text(path: Path | str, text: str, encoding: str = "utf-8") -> Path:
    """Write *text* to *path* atomically; returns the final path.

    The parent directory is created as needed. The temp file is fsynced
    before the rename so a crash right after the replace cannot publish
    an empty file, and unlinked on any failure so aborted writes leave
    no litter behind.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as sink:
            sink.write(text)
            sink.flush()
            os.fsync(sink.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def find_repo_root(start: Path | str | None = None) -> Optional[Path]:
    """The repository root at or above *start*, or ``None``.

    Walks upward looking for a directory holding both ``pyproject.toml``
    and a ``benchmarks/`` tree. Defaults to anchoring at this source
    file, which resolves the checkout that the imported package actually
    lives in — independent of the invoking directory.
    """
    anchor = Path(start) if start is not None else Path(__file__)
    anchor = anchor.resolve()
    if anchor.is_file():
        anchor = anchor.parent
    for candidate in (anchor, *anchor.parents):
        if (candidate / _ROOT_MARKER).is_file() and (candidate / _ROOT_SIBLING).is_dir():
            return candidate
    return None
