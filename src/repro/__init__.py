"""repro — reproduction of "Classification Rule Learning for Data Linking".

Pernelle & Saïs, LWDM workshop @ EDBT/ICDT 2012.

The package learns value-based classification rules
``p(X,Y) ∧ subsegment(Y,a) ⇒ c(X)`` from expert-validated ``sameAs``
links and uses them to cut the data-linking space when the external
schema is unknown. It ships every substrate the paper relies on: an RDF
data model, an OWL-lite ontology layer, segmentation and string
similarity, the rule learner itself, classic blocking baselines, a
synthetic stand-in for the proprietary Thales catalog, and the full
experiment harness (see DESIGN.md / EXPERIMENTS.md).

Quickstart::

    from repro import (
        CatalogConfig, ElectronicCatalogGenerator,
        LearnerConfig, RuleLearner, RuleClassifier,
    )

    catalog = ElectronicCatalogGenerator(CatalogConfig.small()).generate()
    rules = RuleLearner(LearnerConfig(support_threshold=0.004)).learn(
        catalog.to_training_set()
    )
    classifier = RuleClassifier(rules.with_min_confidence(0.8))
"""

# rdf substrate
from repro.rdf import (
    IRI,
    Literal,
    BNode,
    Triple,
    Graph,
    Dataset,
    Namespace,
    NamespaceManager,
    RDF,
    RDFS,
    OWL,
    XSD,
    EX,
    parse_ntriples,
    serialize_ntriples,
)

# ontology substrate
from repro.ontology import (
    Ontology,
    OntClass,
    ClassHierarchy,
    RDFSReasoner,
    ontology_from_graph,
    ontology_to_graph,
)

# text substrate
from repro.text import (
    SeparatorSegmenter,
    NGramSegmenter,
    TokenSegmenter,
    CompositeSegmenter,
    normalize_value,
    segment_statistics,
)

# the paper's core
from repro.core import (
    SameAsLink,
    TrainingSet,
    ClassificationRule,
    RuleSet,
    RuleQualityMeasures,
    ContingencyCounts,
    LearnerConfig,
    RuleLearner,
    ClassPrediction,
    RuleClassifier,
    LinkingSubspace,
    SubspaceReduction,
    RuleGeneralizer,
)

# linking substrate
from repro.linking import (
    Record,
    RecordStore,
    StandardBlocking,
    SortedNeighbourhood,
    QGramBlocking,
    CanopyBlocking,
    RuleBasedBlocking,
    FullIndex,
    FieldComparator,
    RecordComparator,
    ThresholdMatcher,
    FellegiSunterMatcher,
    LinkingPipeline,
    evaluate_blocking,
    evaluate_matching,
)

# batch linking engine
from repro.engine import (
    CachedRecordComparator,
    EngineProgress,
    EngineStats,
    JobConfig,
    LinkingJob,
)

# data generation
from repro.datagen import (
    CatalogConfig,
    ElectronicCatalogGenerator,
    Corruptor,
    CorruptionConfig,
)

__version__ = "1.0.0"

__all__ = [
    # rdf
    "IRI", "Literal", "BNode", "Triple", "Graph", "Dataset",
    "Namespace", "NamespaceManager", "RDF", "RDFS", "OWL", "XSD", "EX",
    "parse_ntriples", "serialize_ntriples",
    # ontology
    "Ontology", "OntClass", "ClassHierarchy", "RDFSReasoner",
    "ontology_from_graph", "ontology_to_graph",
    # text
    "SeparatorSegmenter", "NGramSegmenter", "TokenSegmenter",
    "CompositeSegmenter", "normalize_value", "segment_statistics",
    # core
    "SameAsLink", "TrainingSet", "ClassificationRule", "RuleSet",
    "RuleQualityMeasures", "ContingencyCounts", "LearnerConfig",
    "RuleLearner", "ClassPrediction", "RuleClassifier",
    "LinkingSubspace", "SubspaceReduction", "RuleGeneralizer",
    # linking
    "Record", "RecordStore", "StandardBlocking", "SortedNeighbourhood",
    "QGramBlocking", "CanopyBlocking", "RuleBasedBlocking", "FullIndex",
    "FieldComparator", "RecordComparator", "ThresholdMatcher",
    "FellegiSunterMatcher", "LinkingPipeline",
    "evaluate_blocking", "evaluate_matching",
    # engine
    "CachedRecordComparator", "EngineProgress", "EngineStats",
    "JobConfig", "LinkingJob",
    # datagen
    "CatalogConfig", "ElectronicCatalogGenerator",
    "Corruptor", "CorruptionConfig",
]
