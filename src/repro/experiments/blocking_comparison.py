"""Experiment A3: rule-based reduction vs classic blocking baselines.

The paper's related-work section positions classification rules against
blocking (standard, sorted neighbourhood, bi-gram). This experiment runs
all of them on the same provider-vs-catalog task and reports reduction
ratio, pairs completeness and pairs quality — the standard blocking
quality triple.

The rule-based method is trained on TS and evaluated on a *fresh* batch
of provider records (never seen during learning), giving an honest
out-of-sample comparison.

Every method runs through :class:`repro.engine.LinkingJob`, so each row
also reports engine throughput (``time`` covers blocking *and* the
chunked, cached pair comparison) alongside the quality triple.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.classifier import RuleClassifier
from repro.core.learner import LearnerConfig, RuleLearner
from repro.datagen.catalog import (
    PART_NUMBER,
    ElectronicCatalogGenerator,
    GeneratedCatalog,
)
from repro.datagen.config import CatalogConfig
from repro.engine import JobConfig, LinkingJob
from repro.experiments.throughput import provider_batch
from repro.linking.blocking import (
    BlockingMethod,
    CanopyBlocking,
    QGramBlocking,
    RuleBasedBlocking,
    SortedNeighbourhood,
    StandardBlocking,
)
from repro.linking.comparators import FieldComparator, RecordComparator
from repro.linking.evaluation import evaluate_blocking
from repro.linking.matchers import ThresholdMatcher
from repro.linking.records import RecordStore


@dataclass(frozen=True, slots=True)
class BlockingComparisonRow:
    """One blocking method's quality on the shared task."""

    method: str
    candidate_pairs: int
    reduction_ratio: float
    pairs_completeness: float
    pairs_quality: float
    seconds: float
    pairs_per_second: float = 0.0
    cache_hit_rate: float = 0.0

    def format(self) -> str:
        return (
            f"{self.method:<22}{self.candidate_pairs:<12}"
            f"{self.reduction_ratio:>8.4f} {self.pairs_completeness:>8.4f} "
            f"{self.pairs_quality:>8.4f} {self.seconds:>8.2f}s "
            f"{self.pairs_per_second:>11,.0f} {self.cache_hit_rate:>7.1%}"
        )


#: Column header matching :meth:`BlockingComparisonRow.format` — shared
#: by the CLI, the benchmark report and :func:`main`.
BLOCKING_COMPARISON_HEADER = (
    f"{'method':<22}{'pairs':<12}{'RR':>8} {'PC':>9} {'PQ':>9} {'time':>9} "
    f"{'pairs/s':>11} {'cache':>7}"
)


def run_blocking_comparison(
    catalog: GeneratedCatalog | None = None,
    n_test_items: int = 1000,
    support_threshold: float = 0.002,
    seed: int = 4242,
    job_config: JobConfig | None = None,
) -> List[BlockingComparisonRow]:
    """Compare all blocking methods on an out-of-sample provider batch."""
    if catalog is None:
        catalog = ElectronicCatalogGenerator(CatalogConfig.thales_like()).generate()
    engine_config = job_config or JobConfig(executor="serial", chunk_size=2048)

    training_set = catalog.to_training_set()
    rules = RuleLearner(
        LearnerConfig(properties=(PART_NUMBER,), support_threshold=support_threshold)
    ).learn(training_set)
    classifier = RuleClassifier(rules.with_min_confidence(0.4))

    test_graph, truth = provider_batch(catalog, n_test_items, seed)
    external = RecordStore.from_graph(test_graph, {"pn": PART_NUMBER})
    local = RecordStore.from_graph(catalog.local_graph, {"pn": PART_NUMBER})
    naive = len(external) * len(local)
    comparator = RecordComparator([FieldComparator("pn")])
    matcher = ThresholdMatcher(match_threshold=0.9)

    methods: Dict[str, BlockingMethod] = {
        "rule-based (paper)": RuleBasedBlocking(
            classifier, catalog.ontology, test_graph, fallback_full=True
        ),
        "rule-based (strict)": RuleBasedBlocking(
            classifier, catalog.ontology, test_graph, fallback_full=False
        ),
        "standard prefix-4": StandardBlocking.on_field_prefix("pn", length=4),
        "sorted neighbourhood": SortedNeighbourhood.on_field("pn", window_size=7),
        "bigram (q=2, t=0.9)": QGramBlocking("pn", q=2, threshold=0.9),
        "canopy (0.7/0.95)": CanopyBlocking("pn", loose=0.7, tight=0.95),
    }

    rows: List[BlockingComparisonRow] = []
    for name, method in methods.items():
        job = LinkingJob(method, comparator, matcher, engine_config)
        result = job.run(external, local)
        stats = result.stats
        quality = evaluate_blocking(result.candidate_pairs, truth, naive_pairs=naive)
        rows.append(
            BlockingComparisonRow(
                method=name,
                candidate_pairs=quality.candidate_pairs,
                reduction_ratio=quality.reduction_ratio,
                pairs_completeness=quality.pairs_completeness,
                pairs_quality=quality.pairs_quality,
                seconds=stats.elapsed_seconds,
                pairs_per_second=stats.pairs_per_second,
                cache_hit_rate=stats.cache_hit_rate,
            )
        )
    return rows


def main() -> None:
    """Run the comparison and print the table.

    Uses the small preset: the canopy baseline is O(|test| x |catalog|)
    similarity computations and would dominate the run at paper scale
    (the whole point of blocking is avoiding exactly that cost).
    """
    catalog = ElectronicCatalogGenerator(CatalogConfig.small()).generate()
    print("A3 blocking comparison (out-of-sample provider batch)")
    print(BLOCKING_COMPARISON_HEADER)
    for row in run_blocking_comparison(catalog, n_test_items=400):
        print(row.format())


if __name__ == "__main__":
    main()
