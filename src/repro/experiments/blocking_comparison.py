"""Experiment A3: rule-based reduction vs classic blocking baselines.

The paper's related-work section positions classification rules against
blocking (standard, sorted neighbourhood, bi-gram). This experiment runs
all of them on the same provider-vs-catalog task and reports reduction
ratio, pairs completeness and pairs quality — the standard blocking
quality triple.

The rule-based method is trained on TS and evaluated on a *fresh* batch
of provider records (never seen during learning), giving an honest
out-of-sample comparison.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.classifier import RuleClassifier
from repro.core.learner import LearnerConfig, RuleLearner
from repro.datagen.catalog import (
    MANUFACTURER,
    PART_NUMBER,
    ElectronicCatalogGenerator,
    GeneratedCatalog,
)
from repro.datagen.config import CatalogConfig
from repro.datagen.corruption import Corruptor
from repro.linking.blocking import (
    BlockingMethod,
    CanopyBlocking,
    QGramBlocking,
    RuleBasedBlocking,
    SortedNeighbourhood,
    StandardBlocking,
)
from repro.linking.evaluation import BlockingQuality, evaluate_blocking
from repro.linking.records import RecordStore
from repro.rdf.graph import Graph
from repro.rdf.namespace import Namespace
from repro.rdf.terms import Literal, Term
from repro.rdf.triples import Triple


@dataclass(frozen=True, slots=True)
class BlockingComparisonRow:
    """One blocking method's quality on the shared task."""

    method: str
    candidate_pairs: int
    reduction_ratio: float
    pairs_completeness: float
    pairs_quality: float
    seconds: float

    def format(self) -> str:
        return (
            f"{self.method:<22}{self.candidate_pairs:<12}"
            f"{self.reduction_ratio:>8.4f} {self.pairs_completeness:>8.4f} "
            f"{self.pairs_quality:>8.4f} {self.seconds:>8.2f}s"
        )


def _fresh_provider_batch(
    catalog: GeneratedCatalog, n_items: int, seed: int
) -> Tuple[Graph, List[Tuple[Term, Term]]]:
    """Corrupted twins of catalog items NOT used in TS (out-of-sample)."""
    rng = random.Random(seed)
    linked_locals = {link.local for link in catalog.links}
    unseen = [item for item in catalog.items if item.iri not in linked_locals]
    if len(unseen) < n_items:
        n_items = len(unseen)
    chosen = rng.sample(unseen, n_items)
    ns = Namespace("http://example.org/catalog/provider-test/")
    graph = Graph(identifier="external-test")
    truth: List[Tuple[Term, Term]] = []
    corruptor = Corruptor()
    for i, item in enumerate(chosen):
        ext = ns.term(f"t{i}")
        corrupted = corruptor.corrupt(item.part_number, rng)
        graph.add(Triple(ext, PART_NUMBER, Literal(corrupted)))
        graph.add(Triple(ext, MANUFACTURER, Literal(item.manufacturer)))
        truth.append((ext, item.iri))
    return graph, truth


def run_blocking_comparison(
    catalog: GeneratedCatalog | None = None,
    n_test_items: int = 1000,
    support_threshold: float = 0.002,
    seed: int = 4242,
) -> List[BlockingComparisonRow]:
    """Compare all blocking methods on an out-of-sample provider batch."""
    if catalog is None:
        catalog = ElectronicCatalogGenerator(CatalogConfig.thales_like()).generate()

    training_set = catalog.to_training_set()
    rules = RuleLearner(
        LearnerConfig(properties=(PART_NUMBER,), support_threshold=support_threshold)
    ).learn(training_set)
    classifier = RuleClassifier(rules.with_min_confidence(0.4))

    test_graph, truth = _fresh_provider_batch(catalog, n_test_items, seed)
    external = RecordStore.from_graph(test_graph, {"pn": PART_NUMBER})
    local = RecordStore.from_graph(catalog.local_graph, {"pn": PART_NUMBER})
    naive = len(external) * len(local)

    methods: Dict[str, BlockingMethod] = {
        "rule-based (paper)": RuleBasedBlocking(
            classifier, catalog.ontology, test_graph, fallback_full=True
        ),
        "rule-based (strict)": RuleBasedBlocking(
            classifier, catalog.ontology, test_graph, fallback_full=False
        ),
        "standard prefix-4": StandardBlocking.on_field_prefix("pn", length=4),
        "sorted neighbourhood": SortedNeighbourhood.on_field("pn", window_size=7),
        "bigram (q=2, t=0.9)": QGramBlocking("pn", q=2, threshold=0.9),
        "canopy (0.7/0.95)": CanopyBlocking("pn", loose=0.7, tight=0.95),
    }

    rows: List[BlockingComparisonRow] = []
    for name, method in methods.items():
        started = time.perf_counter()
        candidates = list(method.candidate_pairs(external, local))
        elapsed = time.perf_counter() - started
        quality = evaluate_blocking(candidates, truth, naive_pairs=naive)
        rows.append(
            BlockingComparisonRow(
                method=name,
                candidate_pairs=quality.candidate_pairs,
                reduction_ratio=quality.reduction_ratio,
                pairs_completeness=quality.pairs_completeness,
                pairs_quality=quality.pairs_quality,
                seconds=elapsed,
            )
        )
    return rows


def main() -> None:
    """Run the comparison and print the table.

    Uses the small preset: the canopy baseline is O(|test| x |catalog|)
    similarity computations and would dominate the run at paper scale
    (the whole point of blocking is avoiding exactly that cost).
    """
    catalog = ElectronicCatalogGenerator(CatalogConfig.small()).generate()
    print("A3 blocking comparison (out-of-sample provider batch)")
    print(
        f"{'method':<22}{'pairs':<12}{'RR':>8} {'PC':>9} {'PQ':>8} {'time':>9}"
    )
    for row in run_blocking_comparison(catalog, n_test_items=400):
        print(row.format())


if __name__ == "__main__":
    main()
