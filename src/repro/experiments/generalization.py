"""Experiment X1: the paper's future-work subsumption generalization.

§6: "we plan to study how the learnt classification rules can be used to
infer more general rules by exploiting the semantics of the subsumption
between classes of the ontology."

The experiment measures what the extension buys: same-premise rule
groups with split conclusions are lifted to their least common subsumer
(:class:`repro.core.generalize.RuleGeneralizer`), and we compare recall
of the confident rule set before and after adding the lifted rules. The
expected shape: recall rises (items whose segment was split across
sibling classes become decidable), precision stays high (the lifted
conclusion subsumes the true class), and lift falls (broader classes cut
the space less).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.classifier import RuleClassifier
from repro.core.generalize import GeneralizedRule, RuleGeneralizer
from repro.core.learner import LearnerConfig, RuleLearner
from repro.core.rules import RuleSet
from repro.datagen.catalog import (
    PART_NUMBER,
    ElectronicCatalogGenerator,
    GeneratedCatalog,
)
from repro.datagen.config import CatalogConfig
from repro.experiments.table1 import eligible_count


@dataclass(frozen=True, slots=True)
class GeneralizationReport:
    """Before/after comparison of adding generalized rules."""

    n_base_rules: int
    n_generalized_rules: int
    base_decisions: int
    base_correct: int
    base_recall: float
    extended_decisions: int
    extended_correct: int
    extended_recall: float
    average_generalized_lift: float

    def format(self) -> str:
        lines = [
            "X1 rule generalization via subsumption",
            f"base rules (conf >= 0.4): {self.n_base_rules}",
            f"generalized rules added:  {self.n_generalized_rules} "
            f"(avg lift {self.average_generalized_lift:.1f})",
            "",
            f"{'':<12}{'#dec.':<8}{'#correct':<10}{'recall':>8}",
            f"{'base':<12}{self.base_decisions:<8}{self.base_correct:<10}"
            f"{self.base_recall * 100:>7.1f}%",
            f"{'extended':<12}{self.extended_decisions:<8}{self.extended_correct:<10}"
            f"{self.extended_recall * 100:>7.1f}%",
        ]
        return "\n".join(lines)


def _evaluate_with_subsumption(
    rules: RuleSet,
    training_set,
    eligible: int,
) -> tuple[int, int, float]:
    """(decisions, correct, recall); a decision is correct when the
    predicted class equals or *subsumes* the item's true class (the
    right notion once conclusions may be inner classes)."""
    classifier = RuleClassifier(rules)
    graph = training_set.external_graph
    ontology = training_set.ontology
    decisions = 0
    correct = 0
    items_correct = 0
    for example in training_set.examples([PART_NUMBER]):
        predictions = classifier.predict(example.link.external, graph)
        if not predictions:
            continue
        decisions += len(predictions)
        hit = False
        for prediction in predictions:
            if any(
                ontology.is_subclass_of(true_cls, prediction.predicted_class)
                for true_cls in example.classes
            ):
                correct += 1
                hit = True
        if hit:
            items_correct += 1
    recall = items_correct / eligible if eligible else 0.0
    return decisions, correct, recall


def run_generalization(
    catalog: GeneratedCatalog | None = None,
    support_threshold: float = 0.002,
    min_confidence: float = 0.4,
    max_depth_lift: int | None = 4,
) -> GeneralizationReport:
    """Learn, generalize, and compare decision coverage on TS.

    ``max_depth_lift`` bounds how far conclusions may climb: unbounded
    lifting converges on near-root classes whose predictions are vacuous
    (lift -> 1, no space reduction), which is precisely the trade-off
    the paper's future-work section hints at.
    """
    if catalog is None:
        catalog = ElectronicCatalogGenerator(CatalogConfig.thales_like()).generate()
    training_set = catalog.to_training_set()

    rules = RuleLearner(
        LearnerConfig(properties=(PART_NUMBER,), support_threshold=support_threshold)
    ).learn(training_set)
    base = rules.with_min_confidence(min_confidence)

    generalizer = RuleGeneralizer(
        catalog.ontology,
        min_confidence_gain=0.05,
        max_depth_lift=max_depth_lift,
    )
    lifted: List[GeneralizedRule] = generalizer.generalize(rules, training_set)
    lifted_confident = [
        g.rule for g in lifted if g.rule.confidence >= min_confidence
    ]
    extended = base.merge(RuleSet(lifted_confident))

    histogram = training_set.class_histogram()
    min_count = int(support_threshold * len(training_set)) + 1
    frequent = frozenset(
        cls for cls, count in histogram.items() if count >= min_count
    )
    eligible = eligible_count(training_set, frequent)

    base_dec, base_ok, base_recall = _evaluate_with_subsumption(
        base, training_set, eligible
    )
    ext_dec, ext_ok, ext_recall = _evaluate_with_subsumption(
        extended, training_set, eligible
    )

    avg_lift = (
        sum(g.rule.lift for g in lifted) / len(lifted) if lifted else 0.0
    )
    return GeneralizationReport(
        n_base_rules=len(base),
        n_generalized_rules=len(lifted_confident),
        base_decisions=base_dec,
        base_correct=base_ok,
        base_recall=base_recall,
        extended_decisions=ext_dec,
        extended_correct=ext_ok,
        extended_recall=ext_recall,
        average_generalized_lift=avg_lift,
    )


def main() -> None:
    """Sweep the depth budget: deeper lifting buys recall, costs lift."""
    catalog = ElectronicCatalogGenerator(CatalogConfig.thales_like()).generate()
    for budget in (2, 4, 6, None):
        report = run_generalization(catalog, max_depth_lift=budget)
        label = "unbounded" if budget is None else str(budget)
        print(f"--- max_depth_lift = {label} ---")
        print(report.format())
        print()


if __name__ == "__main__":
    main()
