"""Experiment X2: generality — the same pipeline on a second domain.

Paper §6: "To show the generality of our approach we plan to test it on
data from other domains." We run the identical learner on the toponym
gazetteer (the paper's own §4 motivation), with token segmentation over
``rdfs:label`` instead of separator segmentation over part numbers, and
report the same Table-1-style bands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.learner import LearnerConfig, RuleLearner
from repro.datagen.toponyms import GeneratedGazetteer, ToponymConfig, generate_gazetteer
from repro.experiments.table1 import Table1Row, eligible_count, evaluate_ruleset
from repro.rdf.namespace import RDFS
from repro.text.segmentation import TokenSegmenter

#: Stopwords for label tokenization (the expert's choice for this domain).
LABEL_STOPWORDS = frozenset({"the", "of", "le", "la", "de"})


@dataclass
class GeneralityReport:
    """Table-1-style results on the toponym domain."""

    rows: List[Table1Row]
    total_rules: int
    total_links: int
    eligible_items: int

    def format(self) -> str:
        lines = [
            "X2 generality: same pipeline, toponym domain (rdfs:label, tokens)",
            f"|TS| = {self.total_links}, eligible = {self.eligible_items}, "
            f"rules = {self.total_rules}",
            "",
            "conf  #rules  #dec.   prec.   recall  lift",
        ]
        lines += [row.format() for row in self.rows]
        return "\n".join(lines)


def run_generality(
    gazetteer: GeneratedGazetteer | None = None,
    support_threshold: float = 0.005,
    bands: Sequence[float] = (1.0, 0.8, 0.6, 0.4),
) -> GeneralityReport:
    """Run the full pipeline on the toponym gazetteer."""
    if gazetteer is None:
        gazetteer = generate_gazetteer(ToponymConfig())
    training_set = gazetteer.to_training_set()
    segmenter = TokenSegmenter(stopwords=LABEL_STOPWORDS)
    properties = (RDFS.label,)

    learner = RuleLearner(
        LearnerConfig(
            properties=properties,
            support_threshold=support_threshold,
            segmenter=segmenter,
        )
    )
    rules = learner.learn(training_set)

    histogram = training_set.class_histogram()
    min_count = int(support_threshold * len(training_set)) + 1
    frequent = frozenset(
        cls for cls, count in histogram.items() if count >= min_count
    )
    eligible = eligible_count(training_set, frequent)

    band_groups = rules.confidence_bands(list(bands))
    rows: List[Table1Row] = []
    previously_decided: set = set()
    for threshold, band in band_groups.items():
        cumulative = rules.with_min_confidence(threshold)
        decided, correct = evaluate_ruleset(
            cumulative, training_set, segmenter=segmenter, properties=properties
        )
        rows.append(
            Table1Row(
                confidence_threshold=threshold,
                n_rules=len(band),
                n_decisions=len(decided - previously_decided),
                precision=len(correct) / len(decided) if decided else 1.0,
                recall=len(correct) / eligible if eligible else 0.0,
                average_lift=band.average_lift(),
            )
        )
        previously_decided = decided

    return GeneralityReport(
        rows=rows,
        total_rules=len(rules),
        total_links=len(training_set),
        eligible_items=eligible,
    )


def main() -> None:
    """Run the toponym-domain experiment and print the table."""
    print(run_generality().format())


if __name__ == "__main__":
    main()
