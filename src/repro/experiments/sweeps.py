"""Experiments A1/A2/A4: ablations around the paper's design choices.

* **A1 — support threshold.** The paper fixes ``th = 0.002`` without
  ablation; the sweep shows the rule-count / precision / recall
  trade-off that choice sits on.
* **A2 — segmentation strategy.** §4.1 allows separator characters *or*
  n-grams; the experiment ran separators. The ablation compares both.
* **A4 — scalability.** Learning and classification cost versus |TS|
  (the paper's motivation is that naive linking is quadratic; rule
  learning must stay cheap).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.core.learner import LearnerConfig, RuleLearner
from repro.datagen.catalog import (
    PART_NUMBER,
    ElectronicCatalogGenerator,
    GeneratedCatalog,
)
from repro.datagen.config import CatalogConfig
from repro.experiments.table1 import eligible_count, evaluate_band
from repro.text.segmentation import (
    NGramSegmenter,
    SegmentFunction,
    SeparatorSegmenter,
    TokenSegmenter,
)


# ---------------------------------------------------------------------------
# A1: support-threshold sweep
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class SupportSweepRow:
    """One support-threshold setting."""

    support_threshold: float
    n_rules: int
    n_frequent_classes: int
    n_decisions: int
    precision: float
    recall: float

    def format(self) -> str:
        return (
            f"{self.support_threshold:<10g}{self.n_rules:<8}"
            f"{self.n_frequent_classes:<10}{self.n_decisions:<8}"
            f"{self.precision * 100:>6.1f}% {self.recall * 100:>6.1f}%"
        )


def run_support_sweep(
    catalog: GeneratedCatalog | None = None,
    thresholds: Sequence[float] = (0.0005, 0.001, 0.002, 0.005, 0.01, 0.02),
) -> List[SupportSweepRow]:
    """Sweep ``th`` and evaluate all >=0.4-confidence rules per setting."""
    if catalog is None:
        catalog = ElectronicCatalogGenerator(CatalogConfig.thales_like()).generate()
    training_set = catalog.to_training_set()
    rows: List[SupportSweepRow] = []
    for threshold in thresholds:
        learner = RuleLearner(
            LearnerConfig(properties=(PART_NUMBER,), support_threshold=threshold)
        )
        rules = learner.learn(training_set)
        confident = rules.with_min_confidence(0.4)
        histogram = training_set.class_histogram()
        min_count = int(threshold * len(training_set)) + 1
        frequent = frozenset(
            cls for cls, count in histogram.items() if count >= min_count
        )
        eligible = eligible_count(training_set, frequent)
        decisions, precision, recall = evaluate_band(
            confident, training_set, eligible, properties=(PART_NUMBER,)
        )
        rows.append(
            SupportSweepRow(
                support_threshold=threshold,
                n_rules=len(rules),
                n_frequent_classes=learner.statistics.frequent_classes,
                n_decisions=decisions,
                precision=precision,
                recall=recall,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# A2: segmentation-strategy ablation
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class SegmentationRow:
    """One segmentation strategy."""

    strategy: str
    distinct_segments: int
    segment_occurrences: int
    n_rules: int
    n_decisions: int
    precision: float
    recall: float

    def format(self) -> str:
        return (
            f"{self.strategy:<14}{self.distinct_segments:<10}"
            f"{self.segment_occurrences:<10}{self.n_rules:<8}"
            f"{self.n_decisions:<8}{self.precision * 100:>6.1f}% "
            f"{self.recall * 100:>6.1f}%"
        )


def default_segmentation_strategies() -> Dict[str, SegmentFunction]:
    """The strategies §4.1 names: separators and n-grams (plus tokens)."""
    return {
        "separator": SeparatorSegmenter(),
        "bigram": NGramSegmenter(n=2),
        "trigram": NGramSegmenter(n=3),
        "4-gram": NGramSegmenter(n=4),
        "token": TokenSegmenter(),
    }


def run_segmentation_ablation(
    catalog: GeneratedCatalog | None = None,
    support_threshold: float = 0.002,
    strategies: Dict[str, SegmentFunction] | None = None,
) -> List[SegmentationRow]:
    """Compare segmentation strategies on the same catalog."""
    if catalog is None:
        catalog = ElectronicCatalogGenerator(CatalogConfig.thales_like()).generate()
    training_set = catalog.to_training_set()
    strategies = strategies or default_segmentation_strategies()

    histogram = training_set.class_histogram()
    min_count = int(support_threshold * len(training_set)) + 1
    frequent = frozenset(
        cls for cls, count in histogram.items() if count >= min_count
    )
    eligible = eligible_count(training_set, frequent)

    rows: List[SegmentationRow] = []
    for name, segmenter in strategies.items():
        learner = RuleLearner(
            LearnerConfig(
                properties=(PART_NUMBER,),
                support_threshold=support_threshold,
                segmenter=segmenter,
            )
        )
        rules = learner.learn(training_set)
        confident = rules.with_min_confidence(0.4)
        decisions, precision, recall = evaluate_band(
            confident,
            training_set,
            eligible,
            segmenter=segmenter,
            properties=(PART_NUMBER,),
        )
        stats = learner.statistics
        rows.append(
            SegmentationRow(
                strategy=name,
                distinct_segments=stats.distinct_segments,
                segment_occurrences=stats.segment_occurrences,
                n_rules=stats.rule_count,
                n_decisions=decisions,
                precision=precision,
                recall=recall,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# A4: scalability in |TS|
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class ScalabilityRow:
    """One |TS| size point."""

    n_links: int
    learn_seconds: float
    classify_seconds: float
    n_rules: int

    def format(self) -> str:
        return (
            f"{self.n_links:<8}{self.learn_seconds:<10.3f}"
            f"{self.classify_seconds:<12.3f}{self.n_rules:<8}"
        )


def run_scalability(
    sizes: Sequence[int] = (1000, 2500, 5000, 10265, 20000),
    support_threshold: float = 0.002,
    base_config: CatalogConfig | None = None,
) -> List[ScalabilityRow]:
    """Measure learning/classification wall time as |TS| grows."""
    from repro.core.classifier import RuleClassifier

    base = base_config or CatalogConfig.thales_like()
    rows: List[ScalabilityRow] = []
    for size in sizes:
        config = base.with_links(size, catalog_size=max(size, base.catalog_size))
        catalog = ElectronicCatalogGenerator(config).generate()
        training_set = catalog.to_training_set()
        learner = RuleLearner(
            LearnerConfig(properties=(PART_NUMBER,), support_threshold=support_threshold)
        )
        started = time.perf_counter()
        rules = learner.learn(training_set)
        learn_seconds = time.perf_counter() - started

        classifier = RuleClassifier(rules)
        graph = training_set.external_graph
        started = time.perf_counter()
        for link in training_set:
            classifier.predict(link.external, graph)
        classify_seconds = time.perf_counter() - started

        rows.append(
            ScalabilityRow(
                n_links=size,
                learn_seconds=learn_seconds,
                classify_seconds=classify_seconds,
                n_rules=len(rules),
            )
        )
    return rows


def main() -> None:
    """Run and print all three ablations on the default catalog."""
    catalog = ElectronicCatalogGenerator(CatalogConfig.thales_like()).generate()
    print("A1 support-threshold sweep")
    print(f"{'th':<10}{'#rules':<8}{'#freq.cls':<10}{'#dec.':<8}{'prec.':>7} {'recall':>7}")
    for row in run_support_sweep(catalog):
        print(row.format())
    print()
    print("A2 segmentation ablation")
    print(
        f"{'strategy':<14}{'distinct':<10}{'occur.':<10}{'#rules':<8}"
        f"{'#dec.':<8}{'prec.':>7} {'recall':>7}"
    )
    for row in run_segmentation_ablation(catalog):
        print(row.format())
    print()
    print("A4 scalability")
    print(f"{'|TS|':<8}{'learn(s)':<10}{'classify(s)':<12}{'#rules':<8}")
    for row in run_scalability():
        print(row.format())


if __name__ == "__main__":
    main()
