"""Experiment A5: batch linking throughput through the engine.

The paper makes the candidate set small; :class:`repro.engine.LinkingJob`
makes executing it fast. This experiment measures that execution layer:
provider batches of growing size are linked against the catalog through
the engine and each run reports compared pairs, match quality, wall
time, pairs/sec, similarity-cache hit rate and chunk count.

The module also hosts the shared provider-batch generator (corrupted
out-of-sample twins of catalog items) and the toponym linking setup used
by the benchmark suite to verify that parallel chunked execution is
byte-identical to the serial path on a second domain.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.datagen.catalog import (
    MANUFACTURER,
    PART_NUMBER,
    ElectronicCatalogGenerator,
    GeneratedCatalog,
)
from repro.datagen.config import CatalogConfig
from repro.datagen.corruption import Corruptor
from repro.datagen.toponyms import GeneratedGazetteer, ToponymConfig, generate_gazetteer
from repro.engine import JobConfig, LinkingJob
from repro.linking.blocking import BlockingMethod, StandardBlocking
from repro.linking.comparators import FieldComparator, RecordComparator
from repro.linking.matchers import ThresholdMatcher
from repro.linking.records import RecordStore
from repro.rdf.graph import Graph
from repro.rdf.namespace import RDFS, Namespace
from repro.rdf.terms import Literal, Term
from repro.rdf.triples import Triple

Pair = Tuple[Term, Term]


def provider_batch(
    catalog: GeneratedCatalog,
    n_items: int,
    seed: int = 4242,
    namespace: str = "http://example.org/catalog/provider-test/",
    corruptor: Corruptor | None = None,
) -> Tuple[Graph, List[Pair]]:
    """Corrupted twins of catalog items NOT used in TS (out-of-sample).

    ``corruptor`` overrides the default corruption model — scenario
    profiles (clean, harsh...) pass their own.
    """
    rng = random.Random(seed)
    linked_locals = {link.local for link in catalog.links}
    unseen = [item for item in catalog.items if item.iri not in linked_locals]
    if len(unseen) < n_items:
        n_items = len(unseen)
    chosen = rng.sample(unseen, n_items)
    ns = Namespace(namespace)
    graph = Graph(identifier="external-test")
    truth: List[Pair] = []
    corruptor = corruptor or Corruptor()
    for i, item in enumerate(chosen):
        ext = ns.term(f"t{i}")
        corrupted = corruptor.corrupt(item.part_number, rng)
        graph.add(Triple(ext, PART_NUMBER, Literal(corrupted)))
        graph.add(Triple(ext, MANUFACTURER, Literal(item.manufacturer)))
        truth.append((ext, item.iri))
    return graph, truth


@dataclass(frozen=True, slots=True)
class ThroughputRow:
    """One engine run at one provider-batch size."""

    n_external: int
    executor: str
    compared: int
    matches: int
    f1: float
    seconds: float
    pairs_per_second: float
    cache_hit_rate: float
    chunk_count: int
    index_build_seconds: float = 0.0
    index_probe_seconds: float = 0.0

    def format(self) -> str:
        return (
            f"{self.n_external:<8}{self.executor:<9}{self.compared:<10}"
            f"{self.matches:<9}{self.f1:>6.3f} {self.seconds:>8.2f}s "
            f"{self.pairs_per_second:>11,.0f} {self.cache_hit_rate:>7.1%} "
            f"{self.chunk_count:>7}"
        )


def run_linking_throughput(
    catalog: GeneratedCatalog | None = None,
    sizes: Sequence[int] = (200, 400, 800),
    job_config: JobConfig | None = None,
    blocking: BlockingMethod | None = None,
    match_threshold: float = 0.9,
    seed: int = 4242,
    use_index: bool = True,
) -> List[ThroughputRow]:
    """Link provider batches of growing size through the engine.

    With ``use_index`` (and no explicit *blocking*), the local catalog's
    block index is built once by the first run and shared by every
    subsequent batch size — the cross-run payoff of ``repro.index``.
    """
    if catalog is None:
        catalog = ElectronicCatalogGenerator(CatalogConfig.small()).generate()
    config = job_config or JobConfig(executor="serial", chunk_size=512)
    blocking = blocking or StandardBlocking.on_field_prefix(
        "pn", length=4, use_index=use_index
    )
    # the maker field repeats heavily across the catalog — exactly the
    # redundancy the engine's similarity cache exists to exploit
    comparator = RecordComparator(
        [FieldComparator("pn", weight=2.0), FieldComparator("maker", weight=1.0)]
    )
    matcher = ThresholdMatcher(match_threshold=match_threshold)
    field_map = {"pn": PART_NUMBER, "maker": MANUFACTURER}
    local = RecordStore.from_graph(catalog.local_graph, field_map)

    rows: List[ThroughputRow] = []
    for size in sizes:
        graph, truth = provider_batch(catalog, size, seed=seed)
        external = RecordStore.from_graph(graph, field_map)
        job = LinkingJob(blocking, comparator, matcher, config)
        result = job.run(external, local)
        stats = result.stats
        quality = result.matching_quality(truth)
        rows.append(
            ThroughputRow(
                n_external=len(external),
                executor=stats.executor,
                compared=result.compared,
                matches=len(result.matches),
                f1=quality.f1,
                seconds=stats.elapsed_seconds,
                pairs_per_second=stats.pairs_per_second,
                cache_hit_rate=stats.cache_hit_rate,
                chunk_count=stats.chunk_count,
                index_build_seconds=stats.index_build_seconds,
                index_probe_seconds=stats.index_probe_seconds,
            )
        )
    return rows


THROUGHPUT_HEADER = (
    "A5 linking throughput (provider batch vs catalog, through the engine)\n"
    f"{'|S_E|':<8}{'executor':<9}{'pairs':<10}{'matches':<9}"
    f"{'F1':>6} {'time':>9} {'pairs/s':>11} {'cache':>7} {'chunks':>7}"
)


def toponym_linking_setup(
    config: ToponymConfig | None = None,
    gazetteer: GeneratedGazetteer | None = None,
    match_threshold: float = 0.85,
) -> Tuple[BlockingMethod, RecordComparator, ThresholdMatcher, RecordStore, RecordStore, List[Pair]]:
    """Everything a linking job needs on the toponym (second) domain."""
    if gazetteer is None:
        gazetteer = generate_gazetteer(config or ToponymConfig())
    external = RecordStore.from_graph(gazetteer.external_graph, {"label": RDFS.label})
    local = RecordStore.from_graph(gazetteer.local_graph, {"label": RDFS.label})
    blocking = StandardBlocking.on_field_prefix("label", length=4)
    comparator = RecordComparator([FieldComparator("label")])
    matcher = ThresholdMatcher(match_threshold=match_threshold)
    truth = [(ext, loc) for ext, loc in gazetteer.truth.items()]
    return blocking, comparator, matcher, external, local, truth


def main() -> None:
    """Run the throughput experiment and print the table."""
    print(THROUGHPUT_HEADER)
    for row in run_linking_throughput():
        print(row.format())


if __name__ == "__main__":
    main()
