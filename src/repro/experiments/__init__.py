"""Experiment harness: every table, figure and in-text statistic.

One module per experiment family (ids from DESIGN.md §5):

* :mod:`repro.experiments.table1` — **T1**: the paper's Table 1
  (confidence bands -> #rules, #decisions, precision, recall, lift);
* :mod:`repro.experiments.stats` — **S1/S2**: the in-text §5 statistics
  (segment counts, threshold selection, classes with indicative
  segments, space-reduction claims);
* :mod:`repro.experiments.sweeps` — **A1/A2/A4**: support-threshold
  sweep, segmentation-strategy ablation, scalability in |TS|;
* :mod:`repro.experiments.blocking_comparison` — **A3**: rule-based
  reduction vs the classic blocking baselines (through the engine);
* :mod:`repro.experiments.throughput` — **A5**: batch linking
  throughput through :class:`repro.engine.LinkingJob` (pairs/sec,
  cache hit rate, chunking);
* :mod:`repro.experiments.generalization` — **X1**: the future-work
  subsumption generalization.

Every module exposes a ``run_*`` function returning a dataclass report
and a ``main()`` that prints the paper-style table; ``python -m
repro.experiments.table1`` etc. work from the command line.
"""

from repro.experiments.table1 import Table1Report, Table1Row, run_table1
from repro.experiments.stats import InTextStats, run_stats
from repro.experiments.sweeps import (
    SupportSweepRow,
    run_support_sweep,
    SegmentationRow,
    run_segmentation_ablation,
    ScalabilityRow,
    run_scalability,
)
from repro.experiments.blocking_comparison import (
    BlockingComparisonRow,
    run_blocking_comparison,
)
from repro.experiments.throughput import (
    ThroughputRow,
    provider_batch,
    run_linking_throughput,
    toponym_linking_setup,
)
from repro.experiments.generalization import (
    GeneralizationReport,
    run_generalization,
)
from repro.experiments.generality import (
    GeneralityReport,
    run_generality,
)
from repro.experiments.ordering_ablation import (
    OrderingRow,
    run_ordering_ablation,
)

__all__ = [
    "Table1Report",
    "Table1Row",
    "run_table1",
    "InTextStats",
    "run_stats",
    "SupportSweepRow",
    "run_support_sweep",
    "SegmentationRow",
    "run_segmentation_ablation",
    "ScalabilityRow",
    "run_scalability",
    "BlockingComparisonRow",
    "run_blocking_comparison",
    "ThroughputRow",
    "provider_batch",
    "run_linking_throughput",
    "toponym_linking_setup",
    "GeneralizationReport",
    "run_generalization",
    "GeneralityReport",
    "run_generality",
    "OrderingRow",
    "run_ordering_ablation",
]
