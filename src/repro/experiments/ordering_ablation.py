"""Experiment A5: ablation of the rule-ordering design choice (§4.4).

The paper ranks decisions by confidence, breaking ties with lift. The
alternatives from the literature it cites: CBA ordering (confidence,
then support) and subspace-size-first (lift-major). The ablation
measures, per strategy, the accuracy of the per-item best decision and
the size of the induced linking subspace — the precision/reduction
trade-off the ordering controls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.classifier import RuleClassifier
from repro.core.learner import LearnerConfig, RuleLearner
from repro.core.ordering import ORDERINGS
from repro.core.subspace import LinkingSubspace
from repro.datagen.catalog import (
    PART_NUMBER,
    ElectronicCatalogGenerator,
    GeneratedCatalog,
)
from repro.datagen.config import CatalogConfig


@dataclass(frozen=True, slots=True)
class OrderingRow:
    """One ordering strategy's decision quality and reduction."""

    strategy: str
    decided_items: int
    top_decision_accuracy: float
    reduced_pairs: int
    reduction_factor: float

    def format(self) -> str:
        return (
            f"{self.strategy:<12}{self.decided_items:<10}"
            f"{self.top_decision_accuracy * 100:>7.1f}% "
            f"{self.reduced_pairs:>12} {self.reduction_factor:>8.1f}x"
        )


def run_ordering_ablation(
    catalog: GeneratedCatalog | None = None,
    support_threshold: float = 0.002,
    min_confidence: float = 0.4,
    sample: int = 3000,
) -> List[OrderingRow]:
    """Compare decision orderings on the same learned rule set.

    The *top* decision per item follows the strategy; the subspace uses
    only that top decision (single-class reduction), isolating what the
    ordering changes.
    """
    if catalog is None:
        catalog = ElectronicCatalogGenerator(CatalogConfig.thales_like()).generate()
    training_set = catalog.to_training_set()
    rules = RuleLearner(
        LearnerConfig(properties=(PART_NUMBER,), support_threshold=support_threshold)
    ).learn(training_set)
    confident = rules.with_min_confidence(min_confidence)

    examples = training_set.examples([PART_NUMBER])[:sample]
    rows: List[OrderingRow] = []
    for name, ordering in ORDERINGS.items():
        classifier = RuleClassifier(confident, ordering=ordering)
        decided = 0
        correct = 0
        top_predictions: Dict = {}
        for example in examples:
            predictions = classifier.predict(
                example.link.external, training_set.external_graph
            )
            if not predictions:
                continue
            decided += 1
            top = predictions[0]
            top_predictions[example.link.external] = [top]
            if top.predicted_class in example.classes:
                correct += 1
        subspace = LinkingSubspace.from_predictions(
            top_predictions, catalog.ontology
        )
        reduced = subspace.pair_count()
        naive = decided * len(catalog.items)
        rows.append(
            OrderingRow(
                strategy=name,
                decided_items=decided,
                top_decision_accuracy=correct / decided if decided else 1.0,
                reduced_pairs=reduced,
                reduction_factor=naive / reduced if reduced else float("inf"),
            )
        )
    return rows


def main() -> None:
    """Run the ordering ablation and print the table."""
    print("A5 rule-ordering ablation (top decision per item)")
    print(f"{'strategy':<12}{'#decided':<10}{'accuracy':>8} {'pairs':>12} {'factor':>9}")
    for row in run_ordering_ablation():
        print(row.format())


if __name__ == "__main__":
    main()
