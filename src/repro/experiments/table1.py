"""Experiment T1: regenerate the paper's Table 1.

The paper groups the learned rules into disjoint confidence bands (1,
[0.8,1), [0.6,0.8), [0.4,0.6)) and reports, per band: the number of
rules, the number of classification decisions over TS, their precision
and recall, and the average lift.

Interpretation (reverse-engineered from the paper's own arithmetic,
documented in DESIGN.md §7 and EXPERIMENTS.md):

* each row evaluates the *cumulative* rule set ``confidence >= row
  threshold``; per item the single best prediction (confidence first,
  lift second — the paper's §4.4 ordering) is the decision;
* ``#rules`` is the per-band (disjoint group) rule count, as printed;
* ``#dec.`` is the number of *newly decided* items versus the row above
  (the paper's 2107/1224/712/1025 sum to ~half of TS, while its recall
  column keeps growing — only the incremental reading is consistent);
* ``prec.`` = cumulatively correct decisions / cumulatively decided
  items (this is how the paper's 92% at the [0.6, 0.8) row can exceed
  the band's own rule confidence);
* ``recall`` = cumulatively correct decisions / *eligible* items, where
  eligible = TS items whose true class passed the frequency filter (the
  paper's 29% at confidence 1 against 2107 correct items implies a
  ~7.1-7.3k denominator, not the full |TS| = 10 265);
* ``lift`` = the per-band average rule lift (the paper's 27/24/24/21).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.classifier import RuleClassifier
from repro.core.learner import LearnerConfig, LearningStatistics, RuleLearner
from repro.core.rules import RuleSet
from repro.core.training import TrainingSet
from repro.datagen.catalog import PART_NUMBER, GeneratedCatalog
from repro.datagen.config import CatalogConfig
from repro.datagen.catalog import ElectronicCatalogGenerator
from repro.rdf.terms import IRI
from repro.text.segmentation import SegmentFunction, SeparatorSegmenter

#: The paper's Table 1, row by row, for side-by-side reporting.
PAPER_TABLE1 = {
    1.0: dict(rules=44, decisions=2107, precision=1.0, recall=0.29, lift=27),
    0.8: dict(rules=22, decisions=1224, precision=0.969, recall=0.457, lift=24),
    0.6: dict(rules=13, decisions=712, precision=0.92, recall=0.499, lift=24),
    0.4: dict(rules=17, decisions=1025, precision=0.838, recall=0.601, lift=21),
}


@dataclass(frozen=True, slots=True)
class Table1Row:
    """One confidence band of Table 1."""

    confidence_threshold: float
    n_rules: int
    n_decisions: int
    precision: float
    recall: float
    average_lift: float

    def format(self) -> str:
        """Render like the paper: conf, #rules, #dec., prec., recall, lift."""
        return (
            f"{self.confidence_threshold:<6g}{self.n_rules:<8}"
            f"{self.n_decisions:<8}{self.precision * 100:>6.1f}% "
            f"{self.recall * 100:>6.1f}% {self.average_lift:>6.1f}"
        )


@dataclass
class Table1Report:
    """The full regenerated table plus its inputs."""

    rows: List[Table1Row]
    total_rules: int
    eligible_items: int
    total_links: int
    learning_stats: LearningStatistics

    def row(self, threshold: float) -> Table1Row:
        """The band row keyed by its threshold (1.0, 0.8, 0.6, 0.4)."""
        for row in self.rows:
            if row.confidence_threshold == threshold:
                return row
        raise KeyError(threshold)

    def format(self) -> str:
        """The paper-style table with the paper's numbers alongside."""
        lines = [
            "Table 1: Classification rule results (ours vs paper)",
            f"|TS| = {self.total_links}, eligible = {self.eligible_items}, "
            f"rules learned = {self.total_rules}",
            "",
            "conf  #rules  #dec.   prec.   recall  lift   | paper: #rules #dec prec recall lift",
        ]
        for row in self.rows:
            paper = PAPER_TABLE1.get(row.confidence_threshold)
            suffix = ""
            if paper:
                suffix = (
                    f" | {paper['rules']:>6} {paper['decisions']:>4} "
                    f"{paper['precision'] * 100:.1f}% {paper['recall'] * 100:.1f}% "
                    f"{paper['lift']}"
                )
            lines.append(row.format() + suffix)
        return "\n".join(lines)


def evaluate_ruleset(
    rules: RuleSet,
    training_set: TrainingSet,
    segmenter: SegmentFunction | None = None,
    properties: Sequence[IRI] | None = None,
) -> Tuple[set, set]:
    """(decided items, correctly decided items) of *rules* over TS.

    Per item the single best prediction decides (the paper's ordering);
    an item is correct when that prediction names its true class.
    """
    classifier = RuleClassifier(rules, segmenter=segmenter)
    graph = training_set.external_graph
    decided = set()
    correct = set()
    for example in training_set.examples(properties):
        predictions = classifier.predict(example.link.external, graph)
        if not predictions:
            continue
        item = example.link.external
        decided.add(item)
        if predictions[0].predicted_class in example.classes:
            correct.add(item)
    return decided, correct


def evaluate_band(
    band: RuleSet,
    training_set: TrainingSet,
    eligible_items: int,
    segmenter: SegmentFunction | None = None,
    properties: Sequence[IRI] | None = None,
) -> Tuple[int, float, float]:
    """(decisions, precision, recall) of one standalone rule set over TS.

    Used by the ablation sweeps, where a single rule set (e.g. all rules
    with confidence >= 0.4) is evaluated in isolation.
    """
    decided, correct = evaluate_ruleset(
        band, training_set, segmenter=segmenter, properties=properties
    )
    precision = len(correct) / len(decided) if decided else 1.0
    recall = len(correct) / eligible_items if eligible_items else 0.0
    return len(decided), precision, recall


def eligible_count(training_set: TrainingSet, frequent_classes: frozenset[IRI]) -> int:
    """TS items whose true class is frequent — the recall denominator."""
    count = 0
    for link in training_set:
        classes = training_set.ontology.most_specific_classes_of(link.local)
        if classes & frequent_classes:
            count += 1
    return count


def run_table1(
    catalog: GeneratedCatalog | None = None,
    support_threshold: float = 0.002,
    bands: Sequence[float] = (1.0, 0.8, 0.6, 0.4),
    segmenter: SegmentFunction | None = None,
) -> Table1Report:
    """Learn rules on the (given or default) catalog and rebuild Table 1."""
    if catalog is None:
        catalog = ElectronicCatalogGenerator(CatalogConfig.thales_like()).generate()
    segmenter = segmenter or SeparatorSegmenter()
    training_set = catalog.to_training_set()
    properties = (PART_NUMBER,)

    learner = RuleLearner(
        LearnerConfig(
            properties=properties,
            support_threshold=support_threshold,
            segmenter=segmenter,
        )
    )
    rules = learner.learn(training_set)

    frequent = frozenset(rules.concluded_classes())
    # eligible denominator: items whose class passed the frequency filter
    # (use the learner's frequent classes, i.e. classes a rule could target)
    histogram = training_set.class_histogram()
    min_count = int(support_threshold * len(training_set)) + 1
    frequent_classes = frozenset(
        cls for cls, count in histogram.items() if count >= min_count
    )
    eligible = eligible_count(training_set, frequent_classes)

    band_groups = rules.confidence_bands(list(bands))
    rows: List[Table1Row] = []
    previously_decided: set = set()
    for threshold, band in band_groups.items():
        cumulative = rules.with_min_confidence(threshold)
        decided, correct = evaluate_ruleset(
            cumulative, training_set, segmenter=segmenter, properties=properties
        )
        newly_decided = len(decided - previously_decided)
        precision = len(correct) / len(decided) if decided else 1.0
        recall = len(correct) / eligible if eligible else 0.0
        rows.append(
            Table1Row(
                confidence_threshold=threshold,
                n_rules=len(band),
                n_decisions=newly_decided,
                precision=precision,
                recall=recall,
                average_lift=band.average_lift(),
            )
        )
        previously_decided = decided

    return Table1Report(
        rows=rows,
        total_rules=len(rules),
        eligible_items=eligible,
        total_links=len(training_set),
        learning_stats=learner.statistics,
    )


def main() -> None:
    """Regenerate Table 1 on the Thales-like catalog and print it."""
    print(run_table1().format())


if __name__ == "__main__":
    main()
