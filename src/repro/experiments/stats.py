"""Experiments S1/S2: the in-text statistics of the paper's §5.

The paper reports, outside Table 1:

* 7842 distinct segments, 26 077 occurrences over the TS part numbers;
* at ``th = 0.002``: 7058 selected segment occurrences, 68 classes with
  more than 20 instances, 144 classification rules;
* 2107 products correctly classified by the 44 confidence-1 rules;
* average lift > 20 at every threshold, so "even for a big class that
  represents 20% of the catalog, the linkage space can be divided by 5
  for one instance";
* indicative segments found for 16 leaf classes among 67 frequent ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.learner import LearnerConfig, RuleLearner
from repro.core.rules import RuleSet
from repro.datagen.catalog import (
    PART_NUMBER,
    ElectronicCatalogGenerator,
    GeneratedCatalog,
)
from repro.datagen.config import CatalogConfig
from repro.experiments.table1 import eligible_count
from repro.text.segmentation import SegmentFunction, SeparatorSegmenter

#: The paper's in-text numbers for side-by-side reporting.
PAPER_STATS = dict(
    distinct_segments=7842,
    segment_occurrences=26077,
    selected_occurrences=7058,
    frequent_classes=68,
    rules=144,
    confidence_one_rules=44,
    classes_with_rules=16,
    frequent_classes_in_ts=67,
)


@dataclass(frozen=True, slots=True)
class InTextStats:
    """Everything §5 reports in prose, measured on our catalog."""

    total_links: int
    distinct_segments: int
    segment_occurrences: int
    selected_occurrences: int
    frequent_classes: int
    rule_count: int
    confidence_one_rules: int
    classes_with_confident_rules: int
    eligible_items: int
    min_lift_across_bands: float

    def format(self) -> str:
        """Side-by-side ours/paper report."""
        paper = PAPER_STATS
        rows = [
            ("|TS|", self.total_links, 10265),
            ("distinct segments", self.distinct_segments, paper["distinct_segments"]),
            ("segment occurrences", self.segment_occurrences, paper["segment_occurrences"]),
            ("selected occurrences", self.selected_occurrences, paper["selected_occurrences"]),
            ("frequent classes (>20 inst.)", self.frequent_classes, paper["frequent_classes"]),
            ("classification rules", self.rule_count, paper["rules"]),
            ("confidence-1 rules", self.confidence_one_rules, paper["confidence_one_rules"]),
            ("classes with confident rules", self.classes_with_confident_rules, paper["classes_with_rules"]),
        ]
        lines = ["In-text statistics (ours vs paper)", ""]
        lines.append(f"{'statistic':<32}{'ours':>10}{'paper':>10}")
        for name, ours, paper_value in rows:
            lines.append(f"{name:<32}{ours:>10}{paper_value:>10}")
        lines.append(
            f"{'min average band lift':<32}{self.min_lift_across_bands:>10.1f}"
            f"{'>20':>10}"
        )
        return "\n".join(lines)


def run_stats(
    catalog: GeneratedCatalog | None = None,
    support_threshold: float = 0.002,
    segmenter: SegmentFunction | None = None,
) -> InTextStats:
    """Measure every §5 in-text statistic on the (default) catalog."""
    if catalog is None:
        catalog = ElectronicCatalogGenerator(CatalogConfig.thales_like()).generate()
    segmenter = segmenter or SeparatorSegmenter()
    training_set = catalog.to_training_set()

    learner = RuleLearner(
        LearnerConfig(
            properties=(PART_NUMBER,),
            support_threshold=support_threshold,
            segmenter=segmenter,
        )
    )
    rules = learner.learn(training_set)
    stats = learner.statistics

    confidence_one = rules.with_min_confidence(1.0)
    confident = rules.with_min_confidence(0.4)

    bands = rules.confidence_bands([1.0, 0.8, 0.6, 0.4])
    lifts = [band.average_lift() for band in bands.values() if len(band)]
    min_lift = min(lifts) if lifts else 0.0

    histogram = training_set.class_histogram()
    min_count = int(support_threshold * len(training_set)) + 1
    frequent_classes = frozenset(
        cls for cls, count in histogram.items() if count >= min_count
    )

    return InTextStats(
        total_links=stats.total_links,
        distinct_segments=stats.distinct_segments,
        segment_occurrences=stats.segment_occurrences,
        selected_occurrences=stats.selected_segment_occurrences,
        frequent_classes=stats.frequent_classes,
        rule_count=stats.rule_count,
        confidence_one_rules=len(confidence_one),
        classes_with_confident_rules=len(confident.concluded_classes()),
        eligible_items=eligible_count(training_set, frequent_classes),
        min_lift_across_bands=min_lift,
    )


def main() -> None:
    """Measure and print the in-text statistics."""
    print(run_stats().format())


if __name__ == "__main__":
    main()
