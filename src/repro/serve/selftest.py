"""Cold-reference and self-test harness for the serve layer.

The serve layer's contract is byte-identity with the one-shot CLI
path. :func:`cold_reference` IS that path, rebuilt from scratch — the
deterministic catalog, fresh record stores, freshly learned rules, a
cold comparator — so comparing its response against warm daemon
responses proves the bundle round-trip end to end.
:func:`run_self_test` drives a live daemon with concurrent clients and
reports identity plus cold/warm timings; ``repro serve --self-test``
and the CI serve-smoke step are thin wrappers over it.
"""

from __future__ import annotations

import statistics
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.serve.build import _catalog_for
from repro.serve.daemon import LinkDaemon, link_response, request_json, serve_bundle
from repro.serve.session import ServeError, make_blocking


def response_identity(response: Mapping[str, Any]) -> Dict[str, Any]:
    """The byte-identity comparand of a link response.

    Everything except ``executor``: which executor answered (serial,
    shard, or a degraded fallback) is diagnostic and machine-dependent,
    while the counters and the canonical N-Triples string are the
    contract — the shard fold restores serial emission order precisely
    so that this projection is executor-invariant.
    """
    return {key: value for key, value in response.items() if key != "executor"}


def cold_reference(
    config: Mapping[str, Any], items: int
) -> Tuple[Any, Dict[str, Any], float]:
    """The one-shot path for *items* provider records, from scratch.

    Returns ``(external_store, response, elapsed_seconds)`` where
    *response* has :func:`link_response` shape. Every step recomputes —
    catalog generation, store construction, rule learning, blocking,
    cold comparator — exactly as ``repro link`` would, making this the
    independent comparand for warm answers.
    """
    from repro.datagen.catalog import PART_NUMBER
    from repro.engine import JobConfig, LinkingJob
    from repro.experiments.throughput import provider_batch
    from repro.linking import (
        FieldComparator,
        RecordComparator,
        RecordStore,
        ThresholdMatcher,
    )

    started = time.perf_counter()
    preset = config.get("preset", "small")
    seed = config.get("seed")
    blocking_name = config.get("blocking", "prefix")
    use_index = bool(config.get("use_index", True))

    catalog = _catalog_for(preset, seed)
    batch_seed = 4242 if seed is None else seed
    test_graph, _ = provider_batch(catalog, items, seed=batch_seed)
    external = RecordStore.from_graph(test_graph, {"pn": PART_NUMBER})
    local = RecordStore.from_graph(catalog.local_graph, {"pn": PART_NUMBER})

    rules = None
    ontology = None
    if blocking_name in ("rules", "rules-strict"):
        from repro.core.learner import LearnerConfig, RuleLearner

        rules = RuleLearner(
            LearnerConfig(
                properties=(PART_NUMBER,),
                support_threshold=float(config.get("support_threshold", 0.002)),
            )
        ).learn(catalog.to_training_set())
        ontology = catalog.ontology

    job = LinkingJob(
        make_blocking(
            blocking_name,
            use_index=use_index,
            rules=rules,
            ontology=ontology,
            external_graph=test_graph,
        ),
        RecordComparator([FieldComparator("pn")]),
        ThresholdMatcher(match_threshold=float(config.get("match_threshold", 0.9))),
        JobConfig(executor="serial"),
    )
    result = job.run(external, local)
    return external, link_response(result), time.perf_counter() - started


def run_self_test(
    bundle_path: Path | str,
    *,
    items: int = 120,
    requests: int = 8,
    workers: int = 4,
    multiplex_threshold: Optional[int] = None,
    daemon: Optional[LinkDaemon] = None,
) -> Dict[str, Any]:
    """Fire concurrent warm requests and diff them against the cold path.

    Builds (or reuses) a daemon over *bundle_path*, computes the
    one-shot reference in-process, then sends *requests* concurrent
    ``/link`` calls from *workers* client threads. Returns a report
    dict; ``report["identical"]`` is the gate.

    With *multiplex_threshold* the daemon shards any batch of at least
    that many records, so the gate also proves the multiplexed path:
    responses are compared through :func:`response_identity` (the
    executor tag legitimately differs; everything else must not), and
    the report records how many requests actually multiplexed and which
    executors answered.
    """
    from repro.index.artifacts import record_store_to_payload

    own_daemon = daemon is None
    if daemon is None:
        daemon = serve_bundle(
            bundle_path, multiplex_threshold=multiplex_threshold
        )
    try:
        host, port = daemon.start()
        config = daemon.session.bundle.config
        external, cold, cold_seconds = cold_reference(config, items)
        payload = record_store_to_payload(external)
        cold_identity = response_identity(cold)

        warm_seconds = []

        def fire(_: int) -> Dict[str, Any]:
            started = time.perf_counter()
            response = request_json(host, port, "POST", "/link", payload)
            warm_seconds.append(time.perf_counter() - started)
            return response

        with ThreadPoolExecutor(max_workers=workers) as pool:
            responses = list(pool.map(fire, range(requests)))

        mismatched = [
            index
            for index, response in enumerate(responses)
            if response_identity(response) != cold_identity
        ]
        return {
            "identical": not mismatched,
            "mismatched_requests": mismatched,
            "requests": requests,
            "workers": workers,
            "items": items,
            "matches": cold["matches"],
            "compared": cold["compared"],
            "cold_seconds": cold_seconds,
            "warm_p50_seconds": statistics.median(warm_seconds),
            "warm_max_seconds": max(warm_seconds),
            "warm_speedup_p50": cold_seconds / max(
                statistics.median(warm_seconds), 1e-9
            ),
            "cache_hit_rate": daemon.session.comparator.cache_hit_rate,
            "multiplex_threshold": daemon.session.multiplex_threshold,
            "multiplexed_requests": daemon.session.multiplexed_count,
            "executors": sorted(
                {str(response.get("executor")) for response in responses}
            ),
            "queue": daemon.queue.stats(),
        }
    finally:
        if own_daemon:
            daemon.shutdown()
