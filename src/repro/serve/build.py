"""Artifact-bundle construction for the warm-start serve layer.

:func:`build_bundle` does the expensive one-time work a cold ``repro
link`` run repeats on every invocation — catalog generation, record
store construction, rule learning, key-index builds — and persists the
results as an on-disk bundle (:mod:`repro.index.artifacts`). A later
``repro serve`` (or :class:`~repro.serve.session.LinkSession`) opens
the bundle O(1) instead of recomputing.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Optional

from repro.serve.session import BLOCKING_NAMES, ServeError, make_blocking

#: Blockings whose ``shard_block_sizes`` warms the shared key index.
_INDEX_WARMING = ("prefix", "qgram")


def _catalog_for(preset: str, seed: Optional[int]):
    from repro.datagen.catalog import ElectronicCatalogGenerator
    from repro.datagen.config import CatalogConfig

    factories = {
        "thales": CatalogConfig.thales_like,
        "small": CatalogConfig.small,
        "tiny": CatalogConfig.tiny,
    }
    factory = factories.get(preset)
    if factory is None:
        raise ServeError(
            f"unknown preset {preset!r}; expected one of {', '.join(sorted(factories))}"
        )
    config = factory(seed=seed) if seed is not None else factory()
    return ElectronicCatalogGenerator(config).generate()


def build_bundle(
    out_dir: Path,
    *,
    preset: str = "small",
    seed: Optional[int] = None,
    blocking: str = "prefix",
    support_threshold: float = 0.002,
    match_threshold: float = 0.9,
    use_index: bool = True,
    warm_items: int = 0,
    cache_size: Optional[int] = None,
) -> Dict[str, Any]:
    """Build and write a warm-start bundle; returns its manifest.

    The bundled state reproduces the one-shot CLI inputs exactly: the
    same deterministic catalog, the same local store, rules learned
    with the same learner configuration. ``warm_items > 0``
    additionally pre-warms the similarity cache by linking one provider
    batch of that size through a thread-safe comparator and bundling
    its entries.
    """
    from repro.datagen.catalog import PART_NUMBER
    from repro.index import shared_index_snapshot
    from repro.index.artifacts import read_manifest, write_bundle
    from repro.linking import RecordStore

    if blocking not in BLOCKING_NAMES:
        raise ServeError(
            f"unknown blocking {blocking!r}; expected one of {', '.join(BLOCKING_NAMES)}"
        )

    catalog = _catalog_for(preset, seed)
    local = RecordStore.from_graph(catalog.local_graph, {"pn": PART_NUMBER})

    rules = None
    ontology = None
    training = None
    if blocking in ("rules", "rules-strict"):
        from repro.core.incremental import IncrementalRuleLearner
        from repro.core.learner import LearnerConfig

        # learn through the incremental learner (provably identical to
        # the batch learner) so the grown feature index can be bundled:
        # a warm session resumes expert-validation ingestion from here
        # instead of replaying the whole training set
        learner = IncrementalRuleLearner(
            LearnerConfig(
                properties=(PART_NUMBER,), support_threshold=support_threshold
            ),
            catalog.ontology,
        )
        learner.add_training_set(catalog.to_training_set())
        rules = learner.rules()
        ontology = catalog.ontology
        training = learner.to_state()

    if use_index and blocking in _INDEX_WARMING:
        # shard_block_sizes only reads the local side; probing it with
        # an empty external store builds the key index into the shared
        # per-store cache, from which the snapshot below captures it
        warmer = make_blocking(blocking, use_index=True)
        warmer.shard_block_sizes(RecordStore(), local)
    indexes = shared_index_snapshot(local)

    comparator_cache = None
    if warm_items > 0:
        comparator_cache = _warm_comparator(
            catalog,
            local,
            blocking=blocking,
            rules=rules,
            ontology=ontology,
            use_index=use_index,
            match_threshold=match_threshold,
            warm_items=warm_items,
            seed=seed,
            cache_size=cache_size,
        )

    config: Dict[str, Any] = {
        "preset": preset,
        "seed": seed,
        "blocking": blocking,
        "support_threshold": support_threshold,
        "match_threshold": match_threshold,
        "use_index": use_index,
        "warm_items": warm_items,
        "field_properties": {"pn": PART_NUMBER.value},
    }
    path = write_bundle(
        Path(out_dir),
        store=local,
        indexes=indexes,
        rules=rules,
        ontology=ontology,
        comparator_cache=comparator_cache,
        training=training,
        config=config,
    )
    return read_manifest(path)


def _warm_comparator(
    catalog,
    local,
    *,
    blocking: str,
    rules,
    ontology,
    use_index: bool,
    match_threshold: float,
    warm_items: int,
    seed: Optional[int],
    cache_size: Optional[int],
):
    """Similarity-cache payload from one warm-up provider batch."""
    from repro.datagen.catalog import PART_NUMBER
    from repro.engine import (
        DEFAULT_CACHE_SIZE,
        CachedRecordComparator,
        JobConfig,
        LinkingJob,
    )
    from repro.experiments.throughput import provider_batch
    from repro.linking import (
        FieldComparator,
        RecordComparator,
        RecordStore,
        ThresholdMatcher,
    )

    batch_seed = 4242 if seed is None else seed
    warm_graph, _ = provider_batch(catalog, warm_items, seed=batch_seed)
    external = RecordStore.from_graph(warm_graph, {"pn": PART_NUMBER})
    comparator = CachedRecordComparator(
        RecordComparator([FieldComparator("pn")]),
        DEFAULT_CACHE_SIZE if cache_size is None else cache_size,
        thread_safe=True,
    )
    job = LinkingJob(
        make_blocking(
            blocking,
            use_index=use_index,
            rules=rules,
            ontology=ontology,
            external_graph=warm_graph,
        ),
        comparator,
        ThresholdMatcher(match_threshold=match_threshold),
        JobConfig(executor="serial"),
    )
    job.run(external, local)
    return comparator.cache_export()
