"""A long-running linking daemon over one warm :class:`LinkSession`.

Stdlib-only HTTP front: a :class:`ThreadingHTTPServer` dispatches each
request on its own thread into the shared session — the bundle's record
store, seeded key indexes and the thread-safe similarity cache are
loaded exactly once, so a warm request pays only its own candidate
generation and comparisons.

Protocol (all JSON):

* ``GET /stats`` — session snapshot (records, cache hit rate, ...).
* ``POST /link`` — body ``{"records": [...]}`` in the artifact-bundle
  record payload shape; responds with match counts and the confirmed
  links as canonical N-Triples (the byte-identity comparand).
* ``POST /delta`` — body ``{"stream": name, "records": [...]}``;
  ingests a delta into a named cumulative stream.
"""

from __future__ import annotations

import json
import threading
from http.client import HTTPConnection
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.serve.session import LinkSession, ServeError


def link_response(result) -> Dict[str, Any]:
    """The JSON body describing one linking result.

    ``sameas_ntriples`` is the canonical serialized link set — two runs
    are byte-identical iff these strings (and the counters) are equal.
    """
    from repro.rdf.ntriples import serialize_ntriples

    return {
        "matches": len(result.matches),
        "possible": len(result.possible),
        "compared": result.compared,
        "naive_pairs": result.naive_pairs,
        "sameas_ntriples": serialize_ntriples(result.sameas_graph()),
        "executor": result.stats.executor if result.stats else None,
    }


def _make_handler(session: LinkSession):
    from repro.index.artifacts import ArtifactError, record_store_from_payload

    class LinkRequestHandler(BaseHTTPRequestHandler):
        # one handler class per daemon: the session rides on the closure
        protocol_version = "HTTP/1.1"
        server_version = "repro-serve"

        def log_message(self, format: str, *args: Any) -> None:
            pass  # request logging is the caller's business, not stderr's

        def _reply(self, status: int, payload: Dict[str, Any]) -> None:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _read_body(self) -> Dict[str, Any]:
            length = int(self.headers.get("Content-Length", "0"))
            raw = self.rfile.read(length) if length else b""
            if not raw:
                raise ServeError("empty request body; expected JSON")
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ServeError(f"request body is not valid JSON: {exc}") from exc
            if not isinstance(payload, dict):
                raise ServeError("request body must be a JSON object")
            return payload

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            if self.path.rstrip("/") in ("", "/stats"):
                self._reply(200, session.stats())
                return
            self._reply(404, {"error": f"unknown path {self.path!r}"})

        def do_POST(self) -> None:  # noqa: N802 - http.server API
            try:
                payload = self._read_body()
                if self.path == "/link":
                    self._reply(200, self._handle_link(payload))
                elif self.path == "/delta":
                    self._reply(200, self._handle_delta(payload))
                else:
                    self._reply(404, {"error": f"unknown path {self.path!r}"})
            except (ServeError, ArtifactError) as exc:
                self._reply(400, {"error": str(exc)})
            except Exception as exc:  # pragma: no cover - defensive
                self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})

        def _handle_link(self, payload: Dict[str, Any]) -> Dict[str, Any]:
            external = record_store_from_payload(payload)
            result = session.link(external)
            return link_response(result)

        def _handle_delta(self, payload: Dict[str, Any]) -> Dict[str, Any]:
            stream = payload.get("stream")
            if not isinstance(stream, str) or not stream:
                raise ServeError('delta requests need a non-empty "stream" name')
            store = record_store_from_payload(payload)
            job, delta = session.delta(stream, list(store))
            response = link_response(job.result())
            response["stream"] = stream
            response["delta"] = {
                "index": delta.index,
                "records": delta.records,
                "compared": delta.compared,
                "matches": delta.matches,
            }
            return response

    return LinkRequestHandler


class LinkDaemon:
    """The serve daemon: one warm session behind a threading HTTP server."""

    def __init__(
        self, session: LinkSession, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self._session = session
        self._server = ThreadingHTTPServer((host, port), _make_handler(session))
        self._thread: Optional[threading.Thread] = None

    @property
    def session(self) -> LinkSession:
        """The shared warm session answering requests."""
        return self._session

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` actually bound (port 0 resolves at bind)."""
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def start(self) -> Tuple[str, int]:
        """Serve on a daemon thread; returns the bound address."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="repro-serve",
                daemon=True,
            )
            self._thread.start()
        return self.address

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown`."""
        self._server.serve_forever()

    def wait(self) -> None:
        """Block until the serving thread exits (after :meth:`shutdown`)."""
        if self._thread is not None:
            self._thread.join()

    def shutdown(self) -> None:
        """Stop serving and release the socket."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def __enter__(self) -> "LinkDaemon":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()


def serve_bundle(
    bundle_path: Path | str,
    host: str = "127.0.0.1",
    port: int = 0,
    cache_size: Optional[int] = None,
) -> LinkDaemon:
    """Load a bundle and wrap it in a (not yet started) daemon."""
    from repro.index.artifacts import load_bundle

    session = LinkSession(load_bundle(bundle_path), cache_size=cache_size)
    return LinkDaemon(session, host=host, port=port)


def request_json(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Optional[Dict[str, Any]] = None,
    timeout: float = 60.0,
) -> Dict[str, Any]:
    """One JSON request against a running daemon (stdlib http.client).

    Raises :class:`ServeError` on any non-200 response, carrying the
    daemon's error message.
    """
    connection = HTTPConnection(host, port, timeout=timeout)
    try:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        raw = response.read().decode("utf-8")
        try:
            decoded = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ServeError(
                f"daemon returned non-JSON ({response.status}): {raw[:200]!r}"
            ) from exc
        if response.status != 200:
            raise ServeError(
                f"daemon error ({response.status}): "
                f"{decoded.get('error', raw[:200])}"
            )
        return decoded
    finally:
        connection.close()
