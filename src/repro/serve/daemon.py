"""A long-running linking daemon over a registry of warm sessions.

Stdlib-only HTTP front: a :class:`ThreadingHTTPServer` accepts each
connection on its own thread, but the linking work itself is admitted
through a bounded :class:`~repro.serve.queueing.RequestQueue` — at most
``queue_workers`` requests execute at once, at most ``queue_depth``
wait, and overload is answered with **503 + Retry-After** instead of an
unbounded thread pileup. Requests route by bundle name through a
:class:`~repro.serve.registry.BundleRegistry`, so one daemon hosts many
catalogs with lazy open and idle-LRU eviction.

Protocol (all JSON):

* ``GET /stats`` — daemon snapshot: queue counters (depth, rejections,
  in-flight), registry counters (opens, evictions), per-open-bundle
  session stats.
* ``GET /bundles`` — every hosted bundle (open ones with live session
  facts, closed ones from the manifest alone).
* ``POST /link`` — body ``{"records": [...], "bundle": name?}`` in the
  artifact-bundle record payload shape; responds with match counts and
  the confirmed links as canonical N-Triples (the byte-identity
  comparand). Without ``"bundle"`` the registry default answers.
* ``POST /delta`` — body ``{"stream": name, "records": [...],
  "bundle": name?}``; ingests a delta into a named cumulative stream.
* ``POST /work`` — body is one checksummed
  :class:`~repro.engine.executors.protocol.ShardWorkUnit` envelope
  (plus ``"bundle"``): the daemon acts as a remote shard worker,
  executing the unit against the bundle's resident store — after the
  unit's store fingerprint is verified — and answering with the
  worker-result envelope, behind the same queue backpressure.

Error mapping: malformed/empty JSON → 400, unknown bundle → 404,
unknown path → 404, body over ``max_body_bytes`` → 413 (rejected
before the body is read), full queue → 503. Every error body is JSON.
"""

from __future__ import annotations

import json
import threading
from http.client import HTTPConnection
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.serve.queueing import (
    DEFAULT_QUEUE_DEPTH,
    DEFAULT_QUEUE_WORKERS,
    DEFAULT_RETRY_AFTER,
    OverloadError,
    RequestQueue,
)
from repro.serve.registry import BundleRegistry, UnknownBundleError
from repro.serve.session import LinkSession, ServeError

#: Default request-body ceiling (64 MiB of JSON records is far beyond
#: any sane provider batch; bigger bodies are rejected before reading).
DEFAULT_MAX_BODY_BYTES = 64 * 1024 * 1024


def link_response(result) -> Dict[str, Any]:
    """The JSON body describing one linking result.

    ``sameas_ntriples`` is the canonical serialized link set — two runs
    are byte-identical iff these strings (and the counters) are equal.
    ``executor`` is diagnostic, not part of the identity comparand
    (see :func:`repro.serve.selftest.response_identity`).
    """
    from repro.rdf.ntriples import serialize_ntriples

    return {
        "matches": len(result.matches),
        "possible": len(result.possible),
        "compared": result.compared,
        "naive_pairs": result.naive_pairs,
        "sameas_ntriples": serialize_ntriples(result.sameas_graph()),
        "executor": result.stats.executor if result.stats else None,
    }


def _make_handler(daemon: "LinkDaemon"):
    from repro.engine.executors.protocol import WorkUnitError
    from repro.index.artifacts import ArtifactError, record_store_from_payload

    registry = daemon.registry
    request_queue = daemon.queue
    max_body = daemon.max_body_bytes

    class LinkRequestHandler(BaseHTTPRequestHandler):
        # one handler class per daemon: registry + queue ride the closure
        protocol_version = "HTTP/1.1"
        server_version = "repro-serve"

        def log_message(self, format: str, *args: Any) -> None:
            pass  # request logging is the caller's business, not stderr's

        def _reply(
            self,
            status: int,
            payload: Dict[str, Any],
            headers: Optional[Dict[str, str]] = None,
        ) -> None:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)

        def _read_body(self) -> Dict[str, Any]:
            length = int(self.headers.get("Content-Length", "0"))
            raw = self.rfile.read(length) if length else b""
            if not raw:
                raise ServeError("empty request body; expected JSON")
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ServeError(f"request body is not valid JSON: {exc}") from exc
            if not isinstance(payload, dict):
                raise ServeError("request body must be a JSON object")
            return payload

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            if self.path.rstrip("/") in ("", "/stats"):
                self._reply(200, daemon.stats())
                return
            if self.path.rstrip("/") == "/bundles":
                self._reply(200, registry.summary())
                return
            self._reply(404, {"error": f"unknown path {self.path!r}"})

        def do_POST(self) -> None:  # noqa: N802 - http.server API
            try:
                length = int(self.headers.get("Content-Length", "0"))
                if length > max_body:
                    # reject before reading: the body stays on the
                    # socket, so the connection cannot be reused
                    self.close_connection = True
                    self._reply(
                        413,
                        {
                            "error": f"request body of {length} bytes "
                            f"exceeds the {max_body}-byte limit"
                        },
                    )
                    return
                payload = self._read_body()
                if self.path == "/link":
                    handle = self._handle_link
                elif self.path == "/delta":
                    handle = self._handle_delta
                elif self.path == "/work":
                    handle = self._handle_work
                else:
                    self._reply(404, {"error": f"unknown path {self.path!r}"})
                    return
                # admission first, session resolution second: a full
                # queue answers 503 without touching any bundle
                self._reply(200, request_queue.submit(lambda: handle(payload)))
            except OverloadError as exc:
                self._reply(
                    503,
                    {"error": str(exc), "retry_after": exc.retry_after},
                    headers={"Retry-After": f"{exc.retry_after:g}"},
                )
            except UnknownBundleError as exc:
                self._reply(404, {"error": str(exc)})
            except (ServeError, ArtifactError, WorkUnitError) as exc:
                self._reply(400, {"error": str(exc)})
            except Exception as exc:  # pragma: no cover - defensive
                self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})

        def _handle_link(self, payload: Dict[str, Any]) -> Dict[str, Any]:
            bundle = payload.pop("bundle", None)
            with registry.lease(_bundle_name(bundle)) as session:
                external = record_store_from_payload(payload)
                result = session.link(external)
                return link_response(result)

        def _handle_delta(self, payload: Dict[str, Any]) -> Dict[str, Any]:
            bundle = payload.pop("bundle", None)
            stream = payload.get("stream")
            if not isinstance(stream, str) or not stream:
                raise ServeError('delta requests need a non-empty "stream" name')
            with registry.lease(_bundle_name(bundle)) as session:
                store = record_store_from_payload(payload)
                job, delta = session.delta(stream, list(store))
                response = link_response(job.result())
                response["stream"] = stream
                response["delta"] = {
                    "index": delta.index,
                    "records": delta.records,
                    "compared": delta.compared,
                    "matches": delta.matches,
                }
                return response

        def _handle_work(self, payload: Dict[str, Any]) -> Dict[str, Any]:
            bundle = payload.pop("bundle", None)
            with registry.lease(_bundle_name(bundle)) as session:
                return session.run_work_unit(payload)

    return LinkRequestHandler


def _bundle_name(raw: Any) -> Optional[str]:
    """The request's bundle field, validated to a routable shape."""
    if raw is None:
        return None
    if not isinstance(raw, str) or not raw:
        raise UnknownBundleError(
            f'request field "bundle" must be a non-empty string, got {raw!r}'
        )
    return raw


class LinkDaemon:
    """The serve daemon: warm sessions behind a queued threading server.

    Accepts either a :class:`BundleRegistry` (multi-bundle hosting) or
    a bare :class:`LinkSession` (wrapped as a single-entry registry
    named ``default``, preserving the PR 8 embedding API).
    """

    def __init__(
        self,
        source: Union[BundleRegistry, LinkSession],
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        queue_workers: int = DEFAULT_QUEUE_WORKERS,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        retry_after: float = DEFAULT_RETRY_AFTER,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    ) -> None:
        if isinstance(source, LinkSession):
            source = BundleRegistry.wrapping(source)
        if max_body_bytes < 1:
            raise ServeError(
                f"max_body_bytes must be >= 1, got {max_body_bytes}"
            )
        self._registry = source
        self._queue = RequestQueue(
            workers=queue_workers, depth=queue_depth, retry_after=retry_after
        )
        self.max_body_bytes = max_body_bytes
        self._server = ThreadingHTTPServer((host, port), _make_handler(self))
        self._thread: Optional[threading.Thread] = None

    @property
    def registry(self) -> BundleRegistry:
        """The bundle registry answering routed requests."""
        return self._registry

    @property
    def queue(self) -> RequestQueue:
        """The bounded admission queue (counters on ``GET /stats``)."""
        return self._queue

    @property
    def session(self) -> LinkSession:
        """The default bundle's warm session (opened on first access)."""
        return self._registry.session()

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` actually bound (port 0 resolves at bind)."""
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def stats(self) -> Dict[str, Any]:
        """The ``GET /stats`` body: queue + registry + open sessions."""
        registry_stats = self._registry.stats()
        sessions = {
            name: session.stats()
            for name, session in sorted(self._registry.open_sessions().items())
        }
        return {
            "default_bundle": self._registry.default_bundle,
            "queue": self._queue.stats(),
            "registry": registry_stats,
            "sessions": sessions,
        }

    def start(self) -> Tuple[str, int]:
        """Serve on a daemon thread; returns the bound address."""
        self._queue.start()
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="repro-serve",
                daemon=True,
            )
            self._thread.start()
        return self.address

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown`."""
        self._queue.start()
        self._server.serve_forever()

    def wait(self) -> None:
        """Block until the serving thread exits (after :meth:`shutdown`)."""
        if self._thread is not None:
            self._thread.join()

    def shutdown(self) -> None:
        """Stop serving and release the socket and worker pool."""
        self._server.shutdown()
        self._server.server_close()
        self._queue.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def __enter__(self) -> "LinkDaemon":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()


def serve_bundle(
    bundle_path: Path | str,
    host: str = "127.0.0.1",
    port: int = 0,
    cache_size: Optional[int] = None,
    *,
    queue_workers: int = DEFAULT_QUEUE_WORKERS,
    queue_depth: int = DEFAULT_QUEUE_DEPTH,
    retry_after: float = DEFAULT_RETRY_AFTER,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    multiplex_threshold: Optional[int] = None,
    multiplex_workers: Optional[int] = None,
) -> LinkDaemon:
    """One bundle behind a (not yet started) daemon.

    The single-bundle convenience over :func:`serve_bundles`; the
    bundle is named ``default`` and loaded eagerly so configuration
    errors surface at startup, not on the first request.
    """
    return serve_bundles(
        {"default": Path(bundle_path)},
        host=host,
        port=port,
        cache_size=cache_size,
        queue_workers=queue_workers,
        queue_depth=queue_depth,
        retry_after=retry_after,
        max_body_bytes=max_body_bytes,
        multiplex_threshold=multiplex_threshold,
        multiplex_workers=multiplex_workers,
    )


def serve_bundles(
    bundles: Mapping[str, Path | str],
    *,
    default: Optional[str] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    cache_size: Optional[int] = None,
    max_open: Optional[int] = None,
    queue_workers: int = DEFAULT_QUEUE_WORKERS,
    queue_depth: int = DEFAULT_QUEUE_DEPTH,
    retry_after: float = DEFAULT_RETRY_AFTER,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    multiplex_threshold: Optional[int] = None,
    multiplex_workers: Optional[int] = None,
) -> LinkDaemon:
    """Many named bundles behind one (not yet started) daemon.

    The default bundle is opened eagerly — a daemon that cannot answer
    its default route should fail at startup; the rest open lazily on
    first request (and idle ones are LRU-evicted past ``max_open``).
    """
    from repro.serve.registry import DEFAULT_MAX_OPEN

    registry = BundleRegistry(
        bundles,
        default=default,
        max_open=max_open if max_open is not None else DEFAULT_MAX_OPEN,
        cache_size=cache_size,
        multiplex_threshold=multiplex_threshold,
        multiplex_workers=multiplex_workers,
    )
    registry.session()  # eager default open: fail fast on a bad bundle
    return LinkDaemon(
        registry,
        host=host,
        port=port,
        queue_workers=queue_workers,
        queue_depth=queue_depth,
        retry_after=retry_after,
        max_body_bytes=max_body_bytes,
    )


def request_json(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Optional[Dict[str, Any]] = None,
    timeout: float = 60.0,
) -> Dict[str, Any]:
    """One JSON request against a running daemon (stdlib http.client).

    Raises :class:`ServeError` on any non-200 response, carrying the
    daemon's error message.
    """
    status, _, decoded = request_raw(
        host, port, method, path, payload=payload, timeout=timeout
    )
    if not isinstance(decoded, dict):
        raise ServeError(
            f"daemon returned non-JSON ({status}): {str(decoded)[:200]!r}"
        )
    if status != 200:
        raise ServeError(
            f"daemon error ({status}): {decoded.get('error', decoded)}"
        )
    return decoded


def request_raw(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Optional[Dict[str, Any]] = None,
    body: Optional[bytes] = None,
    timeout: float = 60.0,
) -> Tuple[int, Dict[str, str], Any]:
    """One request, returning ``(status, headers, decoded-or-raw body)``.

    The error-path and backpressure tests need the status line and the
    ``Retry-After`` header, which :func:`request_json` folds away.
    """
    connection = HTTPConnection(host, port, timeout=timeout)
    try:
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
        if body is not None:
            headers["Content-Type"] = "application/json"
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        raw = response.read().decode("utf-8", errors="replace")
        try:
            decoded: Any = json.loads(raw)
        except json.JSONDecodeError:
            decoded = raw
        return response.status, dict(response.getheaders()), decoded
    finally:
        connection.close()
