"""Many bundles behind one daemon: the :class:`BundleRegistry`.

One production daemon rarely serves one catalog. The registry maps
bundle *names* to on-disk artifact bundles, opens a
:class:`~repro.serve.session.LinkSession` lazily on a name's first
request, and keeps at most ``max_open`` warm sessions alive — the
least-recently-used *idle* session is evicted when the cap is crossed.
"Idle" is load-bearing: a session with in-flight requests (tracked by
:meth:`lease`) or live delta streams is never evicted, because stream
state is cumulative and closing it mid-stream would silently reset a
client's fold.

Open/evict/request counters feed ``GET /stats``; a cheap manifest-only
summary (no component reads) feeds ``GET /bundles`` for closed entries.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple

from repro.serve.session import LinkSession, ServeError

#: Default cap on simultaneously-open warm sessions.
DEFAULT_MAX_OPEN = 4


class UnknownBundleError(ServeError):
    """A request named a bundle the registry does not host (HTTP 404)."""


class BundleRegistry:
    """Named artifact bundles with lazy open and idle-LRU eviction."""

    def __init__(
        self,
        bundles: Mapping[str, Path | str],
        *,
        default: Optional[str] = None,
        max_open: int = DEFAULT_MAX_OPEN,
        cache_size: Optional[int] = None,
        multiplex_threshold: Optional[int] = None,
        multiplex_workers: Optional[int] = None,
    ) -> None:
        if not bundles:
            raise ServeError("a bundle registry needs at least one bundle")
        if max_open < 1:
            raise ServeError(f"max_open must be >= 1, got {max_open}")
        self._paths: Dict[str, Path] = {
            name: Path(path) for name, path in bundles.items()
        }
        for name in self._paths:
            if not name:
                raise ServeError("bundle names must be non-empty")
        if default is None:
            default = next(iter(self._paths))
        if default not in self._paths:
            raise ServeError(
                f"default bundle {default!r} is not registered "
                f"(have: {', '.join(sorted(self._paths))})"
            )
        self._default = default
        self._max_open = max_open
        self._cache_size = cache_size
        self._multiplex_threshold = multiplex_threshold
        self._multiplex_workers = multiplex_workers
        self._lock = threading.RLock()
        self._sessions: "OrderedDict[str, LinkSession]" = OrderedDict()
        self._open_locks = {name: threading.Lock() for name in self._paths}
        self._leases: Dict[str, int] = {name: 0 for name in self._paths}
        self._requests: Dict[str, int] = {name: 0 for name in self._paths}
        self._opens = 0
        self._evictions = 0

    @classmethod
    def wrapping(
        cls, session: LinkSession, name: str = "default"
    ) -> "BundleRegistry":
        """A single-entry registry around an already-open session.

        Back-compat shim: ``LinkDaemon(session)`` still works — the
        session becomes the registry's default (and only) bundle.
        """
        registry = cls({name: Path(".")}, default=name)
        registry._sessions[name] = session
        registry._opens = 1
        return registry

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    @property
    def default_bundle(self) -> str:
        """The name ``/link`` requests without a ``bundle`` field route to."""
        return self._default

    @property
    def max_open(self) -> int:
        """The cap on simultaneously-open warm sessions."""
        return self._max_open

    def names(self) -> Tuple[str, ...]:
        """All registered bundle names, sorted."""
        return tuple(sorted(self._paths))

    def is_open(self, name: str) -> bool:
        """Whether *name* currently holds a warm session."""
        with self._lock:
            return name in self._sessions

    def open_sessions(self) -> Dict[str, LinkSession]:
        """A snapshot of the open sessions, without touching LRU order."""
        with self._lock:
            return dict(self._sessions)

    def resolve(self, name: Optional[str]) -> str:
        """Map a request's bundle field (or ``None``) to a hosted name."""
        if name is None:
            return self._default
        if not isinstance(name, str) or name not in self._paths:
            raise UnknownBundleError(
                f"unknown bundle {name!r}; hosted bundles: "
                f"{', '.join(self.names())}"
            )
        return name

    # ------------------------------------------------------------------
    # sessions
    # ------------------------------------------------------------------
    def session(self, name: Optional[str] = None) -> LinkSession:
        """The warm session for *name*, opening it lazily if needed."""
        name = self.resolve(name)
        with self._lock:
            session = self._sessions.get(name)
            if session is not None:
                self._sessions.move_to_end(name)
                return session
        # load outside the registry lock (bundle loads take real time
        # and other names must keep answering), but one load per name
        with self._open_locks[name]:
            with self._lock:
                session = self._sessions.get(name)
                if session is not None:
                    self._sessions.move_to_end(name)
                    return session
            session = self._open(name)
            with self._lock:
                self._sessions[name] = session
                self._sessions.move_to_end(name)
                self._opens += 1
                self._evict_idle(protect=name)
            return session

    def _open(self, name: str) -> LinkSession:
        from repro.index.artifacts import load_bundle

        return LinkSession(
            load_bundle(self._paths[name]),
            cache_size=self._cache_size,
            multiplex_threshold=self._multiplex_threshold,
            multiplex_workers=self._multiplex_workers,
        )

    def _evict_idle(self, protect: Optional[str] = None) -> None:
        # under self._lock. Walk oldest-first, skipping busy sessions:
        # an in-flight lease means a request is mid-run on it, a live
        # stream means a client's cumulative fold would be lost, and
        # *protect* is the session just opened for the caller. The cap
        # is therefore soft under pathological load — correctness over
        # ceremony.
        while len(self._sessions) > self._max_open:
            victim = None
            for name, session in self._sessions.items():
                if name == protect:
                    continue
                if self._leases.get(name, 0) > 0:
                    continue
                if session.stream_count > 0:
                    continue
                victim = name
                break
            if victim is None:
                return
            del self._sessions[victim]
            self._evictions += 1

    @contextmanager
    def lease(self, name: Optional[str] = None) -> Iterator[LinkSession]:
        """A session checked out for one request.

        While leased, the session cannot be LRU-evicted; the request
        counter ticks on checkout.
        """
        name = self.resolve(name)
        session = self.session(name)
        with self._lock:
            self._leases[name] += 1
            self._requests[name] += 1
        try:
            yield session
        finally:
            with self._lock:
                self._leases[name] -= 1

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Registry-level counters plus per-bundle open/request state."""
        with self._lock:
            return {
                "default": self._default,
                "max_open": self._max_open,
                "open": len(self._sessions),
                "opens": self._opens,
                "evictions": self._evictions,
                "bundles": {
                    name: {
                        "open": name in self._sessions,
                        "requests": self._requests[name],
                        "in_flight": self._leases[name],
                    }
                    for name in sorted(self._paths)
                },
            }

    def summary(self) -> Dict[str, Any]:
        """The ``GET /bundles`` body: every hosted bundle, cheaply.

        Open bundles report their live session snapshot; closed ones
        only their manifest facts (no component reads, so listing a
        registry of cold multi-GB bundles stays O(names)).
        """
        from repro.index.artifacts import ArtifactError, read_manifest

        with self._lock:
            open_names = set(self._sessions)
            sessions = dict(self._sessions)
        entries: Dict[str, Any] = {}
        for name in self.names():
            entry: Dict[str, Any] = {"open": name in open_names}
            if name in open_names:
                session = sessions[name]
                entry["records"] = len(session.local_store)
                entry["blocking"] = session.blocking_name
                entry["requests"] = session.request_count
            else:
                try:
                    manifest = read_manifest(self._paths[name])
                except ArtifactError as exc:
                    entry["error"] = str(exc)
                else:
                    entry["bytes"] = sum(
                        component["bytes"]
                        for component in manifest.get("components", {}).values()
                    )
                    entry["components"] = sorted(manifest.get("components", {}))
            entries[name] = entry
        return {"default": self._default, "bundles": entries}
