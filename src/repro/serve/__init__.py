"""``repro.serve`` — the warm-start linking service.

A cold ``repro link`` run spends most of its wall clock on work that is
identical across runs: generating the catalog, building the local
record store, learning rules and constructing key indexes.
:func:`~repro.serve.build.build_bundle` does that once and persists it
as a versioned artifact bundle (:mod:`repro.index.artifacts`);
:class:`~repro.serve.session.LinkSession` opens a bundle O(1) and
answers link/delta requests byte-identically to the one-shot path;
:class:`~repro.serve.registry.BundleRegistry` hosts many named bundles
with lazy open and idle-LRU eviction;
:class:`~repro.serve.daemon.LinkDaemon` puts a registry behind a
threading HTTP server whose work is admitted through a bounded
:class:`~repro.serve.queueing.RequestQueue` (overload → 503 +
``Retry-After``), so many clients share warm engines without thread
pileup. Large batches multiplex over the shard executor and stay
byte-identical to serial.
"""

from repro.serve.build import build_bundle
from repro.serve.daemon import (
    DEFAULT_MAX_BODY_BYTES,
    LinkDaemon,
    link_response,
    request_json,
    request_raw,
    serve_bundle,
    serve_bundles,
)
from repro.serve.queueing import OverloadError, RequestQueue
from repro.serve.registry import BundleRegistry, UnknownBundleError
from repro.serve.selftest import cold_reference, response_identity, run_self_test
from repro.serve.session import (
    BLOCKING_NAMES,
    STREAMABLE_BLOCKING,
    LinkSession,
    ServeError,
    make_blocking,
)

__all__ = [
    "BLOCKING_NAMES",
    "DEFAULT_MAX_BODY_BYTES",
    "STREAMABLE_BLOCKING",
    "BundleRegistry",
    "LinkDaemon",
    "LinkSession",
    "OverloadError",
    "RequestQueue",
    "ServeError",
    "UnknownBundleError",
    "build_bundle",
    "cold_reference",
    "link_response",
    "make_blocking",
    "request_json",
    "request_raw",
    "response_identity",
    "run_self_test",
    "serve_bundle",
    "serve_bundles",
]
