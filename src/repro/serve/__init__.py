"""``repro.serve`` — the warm-start linking service.

A cold ``repro link`` run spends most of its wall clock on work that is
identical across runs: generating the catalog, building the local
record store, learning rules and constructing key indexes.
:func:`~repro.serve.build.build_bundle` does that once and persists it
as a versioned artifact bundle (:mod:`repro.index.artifacts`);
:class:`~repro.serve.session.LinkSession` opens a bundle O(1) and
answers link/delta requests byte-identically to the one-shot path;
:class:`~repro.serve.daemon.LinkDaemon` puts a session behind a
threading HTTP server so many clients share one warm engine.
"""

from repro.serve.build import build_bundle
from repro.serve.daemon import LinkDaemon, link_response, request_json, serve_bundle
from repro.serve.selftest import cold_reference, run_self_test
from repro.serve.session import (
    BLOCKING_NAMES,
    STREAMABLE_BLOCKING,
    LinkSession,
    ServeError,
    make_blocking,
)

__all__ = [
    "BLOCKING_NAMES",
    "STREAMABLE_BLOCKING",
    "LinkDaemon",
    "LinkSession",
    "ServeError",
    "build_bundle",
    "cold_reference",
    "link_response",
    "make_blocking",
    "request_json",
    "run_self_test",
    "serve_bundle",
]
