"""Warm engine sessions over loaded artifact bundles.

:class:`LinkSession` is the in-process heart of the serve layer: it
loads a bundle once, seeds the shared key-index cache, and then answers
any number of link requests with zero rebuild cost — only the request's
own candidate generation and comparison work remains. Every request
constructs its blocking method exactly as the one-shot ``repro link``
path does (same classes, same parameters, same order), so a session
answer is byte-identical to what a cold CLI run would print.

Concurrency: the session is shared across daemon worker threads. The
similarity cache is one :class:`CachedRecordComparator` built
``thread_safe=True`` — the constructor enforces this invariant and
refuses to run otherwise, because the engine's serial path reuses a
caller-provided comparator as-is and concurrent serial jobs over an
unsynchronized OrderedDict would race. Streams (delta ingestion) are
guarded by a per-stream lock.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, Optional

from repro.index.artifacts import ArtifactBundle
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI


class ServeError(RuntimeError):
    """Raised on invalid serve-layer configuration or requests."""


#: Blocking methods a session can construct; mirrors the CLI choices
#: plus the explicit cartesian strawman.
BLOCKING_NAMES = (
    "rules",
    "rules-strict",
    "prefix",
    "sorted",
    "qgram",
    "canopy",
    "full",
)

#: Blocking methods whose candidate set is independent of the external
#: graph and stable under delta ingestion (see engine.streaming).
STREAMABLE_BLOCKING = ("prefix", "qgram", "full")


def make_blocking(
    name: str,
    *,
    use_index: bool = True,
    rules=None,
    ontology=None,
    external_graph: Optional[Graph] = None,
):
    """The blocking method *name* with the one-shot CLI's parameters.

    This mirrors ``repro link --blocking <name>`` construction exactly —
    prefix length 4, window 7, q-gram (2, 0.8), canopy (0.5, 0.9), rules
    at min-confidence 0.4 — which is what makes warm session output
    byte-identical to the cold path.
    """
    from repro.core.classifier import RuleClassifier
    from repro.linking import (
        CanopyBlocking,
        FullIndex,
        QGramBlocking,
        RuleBasedBlocking,
        SortedNeighbourhood,
        StandardBlocking,
    )

    if name in ("rules", "rules-strict"):
        if rules is None or ontology is None or external_graph is None:
            raise ServeError(
                f"blocking {name!r} needs learned rules, an ontology and "
                f"the request's external graph — build the bundle with "
                f"--blocking {name}"
            )
        return RuleBasedBlocking(
            RuleClassifier(rules.with_min_confidence(0.4)),
            ontology,
            external_graph,
            fallback_full=name == "rules",
            use_index=use_index,
        )
    if name == "sorted":
        return SortedNeighbourhood.on_field("pn", window_size=7)
    if name == "qgram":
        return QGramBlocking("pn", q=2, threshold=0.8, use_index=use_index)
    if name == "canopy":
        return CanopyBlocking("pn", loose=0.5, tight=0.9)
    if name == "full":
        return FullIndex()
    if name == "prefix":
        return StandardBlocking.on_field_prefix("pn", length=4, use_index=use_index)
    raise ServeError(
        f"unknown blocking {name!r}; expected one of {', '.join(BLOCKING_NAMES)}"
    )


class LinkSession:
    """A warm, thread-shareable engine session over one bundle.

    ``multiplex_threshold`` turns on shard multiplexing for large
    batches: a ``link`` request of at least that many external records
    runs under ``JobConfig(executor="shard")`` — partitioned by the
    engine's :class:`~repro.engine.shard.ShardPlan` and folded with the
    ordinal merge — instead of serially. The shard executor is provably
    byte-identical to serial (its fold restores serial emission order,
    and the shared cache is pure memoization), so multiplexing changes
    wall clock, never bytes; when the machine cannot shard (one CPU,
    pool bring-up failure) the engine degrades to serial on its own.
    """

    def __init__(
        self,
        bundle: ArtifactBundle,
        cache_size: Optional[int] = None,
        *,
        multiplex_threshold: Optional[int] = None,
        multiplex_workers: Optional[int] = None,
    ) -> None:
        from repro.engine import DEFAULT_CACHE_SIZE, CachedRecordComparator
        from repro.linking import FieldComparator, RecordComparator

        self._bundle = bundle
        self._config = dict(bundle.config)
        self._local = bundle.store
        # O(1) open: deserialized posting lists go straight into the
        # shared per-store cache; the first prefix/q-gram request finds
        # them under its signature instead of rebuilding
        bundle.seed_shared_indexes()

        fields = sorted(self.field_map)
        inner = RecordComparator([FieldComparator(field) for field in fields])
        if cache_size is None:
            cache_size = DEFAULT_CACHE_SIZE
        comparator = CachedRecordComparator(inner, cache_size, thread_safe=True)
        if bundle.comparator_cache:
            comparator.cache_load(bundle.comparator_cache)
        if not comparator.thread_safe:
            # the serve-path invariant: concurrent requests share this
            # comparator through the engine's serial and thread paths,
            # which reuse caller-provided caches as-is
            raise ServeError(
                "serve sessions require a thread-safe shared comparator"
            )
        self._comparator = comparator
        if multiplex_threshold is not None and multiplex_threshold < 1:
            raise ServeError(
                f"multiplex threshold must be >= 1, got {multiplex_threshold}"
            )
        self._multiplex_threshold = multiplex_threshold
        self._multiplex_workers = multiplex_workers
        self._lock = threading.Lock()
        self._requests = 0
        self._multiplexed = 0
        self._work_units = 0
        self._streams: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # configuration views
    # ------------------------------------------------------------------
    @property
    def bundle(self) -> ArtifactBundle:
        """The loaded bundle this session serves from."""
        return self._bundle

    @property
    def comparator(self):
        """The shared thread-safe cached comparator."""
        return self._comparator

    @property
    def local_store(self):
        """The bundled local record store."""
        return self._local

    @property
    def field_map(self) -> Dict[str, IRI]:
        """Field name → property IRI, for building external stores."""
        from repro.datagen.catalog import PART_NUMBER

        raw = self._config.get("field_properties")
        if not raw:
            return {"pn": PART_NUMBER}
        return {name: IRI(value) for name, value in raw.items()}

    @property
    def blocking_name(self) -> str:
        """The bundle's configured blocking method."""
        return self._config.get("blocking", "prefix")

    @property
    def match_threshold(self) -> float:
        """The bundle's configured match threshold."""
        return float(self._config.get("match_threshold", 0.9))

    @property
    def use_index(self) -> bool:
        """Whether index-backed blocking paths are enabled."""
        return bool(self._config.get("use_index", True))

    @property
    def request_count(self) -> int:
        """Requests answered so far (link + delta)."""
        with self._lock:
            return self._requests

    @property
    def multiplexed_count(self) -> int:
        """Link requests that ran under the shard executor."""
        with self._lock:
            return self._multiplexed

    @property
    def multiplex_threshold(self) -> Optional[int]:
        """Batch size at which link requests shard (``None`` = never)."""
        return self._multiplex_threshold

    @property
    def stream_count(self) -> int:
        """Live delta streams (eviction guard: streams hold state)."""
        with self._lock:
            return len(self._streams)

    # ------------------------------------------------------------------
    # request construction
    # ------------------------------------------------------------------
    def make_blocking(self, external_graph: Optional[Graph] = None):
        """This session's blocking method for one request."""
        return make_blocking(
            self.blocking_name,
            use_index=self.use_index,
            rules=self._bundle.rules,
            ontology=self._bundle.ontology,
            external_graph=external_graph,
        )

    def external_store(self, graph: Graph):
        """An external record store over *graph* with the bundle's fields."""
        from repro.linking import RecordStore

        return RecordStore.from_graph(graph, self.field_map)

    def graph_of(self, store) -> Graph:
        """The external graph equivalent of a record store.

        Rule-based blocking classifies against graph triples; a store
        round-trips into exactly the mapped triples the classifier
        reads (rules only premise over mapped properties).
        """
        from repro.rdf.terms import Literal
        from repro.rdf.triples import Triple

        graph = Graph(identifier="external-request")
        field_map = self.field_map
        for record in store:
            for name, values in record.fields.items():
                prop = field_map.get(name)
                if prop is None:
                    continue
                for value in values:
                    graph.add(Triple(record.id, prop, Literal(value)))
        return graph

    # ------------------------------------------------------------------
    # requests
    # ------------------------------------------------------------------
    def link(
        self,
        external,
        external_graph: Optional[Graph] = None,
        job_config=None,
    ):
        """Link one external store against the warm local store.

        Returns the engine's :class:`~repro.linking.pipeline.LinkingResult`,
        byte-identical to the one-shot path on the same inputs.
        """
        from repro.engine import JobConfig, LinkingJob
        from repro.linking import ThresholdMatcher

        if external_graph is None and self.blocking_name in ("rules", "rules-strict"):
            external_graph = self.graph_of(external)
        blocking = self.make_blocking(external_graph)
        multiplexed = False
        if job_config is None:
            job_config = self._job_config_for(len(external))
            multiplexed = job_config.executor == "shard"
        job = LinkingJob(
            blocking,
            self._comparator,
            ThresholdMatcher(match_threshold=self.match_threshold),
            job_config,
        )
        result = job.run(external, self._local)
        with self._lock:
            self._requests += 1
            if multiplexed:
                self._multiplexed += 1
        return result

    def _job_config_for(self, batch_size: int):
        """Serial below the multiplex threshold, shard at or above it.

        Byte-identity is executor-invariant (the shard fold restores
        serial emission order), so this choice is purely a latency one.
        """
        from repro.engine import JobConfig

        if (
            self._multiplex_threshold is not None
            and batch_size >= self._multiplex_threshold
        ):
            return JobConfig(
                executor="shard", workers=self._multiplex_workers
            )
        return JobConfig(executor="serial")

    def incremental_learner(self):
        """A warm-started incremental rule learner over the bundled state.

        Resumes from the bundle's serialized
        :class:`~repro.index.TrainingFeatureIndex` — ``rules()`` on the
        returned learner reproduces the bundled rule set exactly, and
        ``add_links`` on new expert validations grows it from there
        without replaying the original training set.
        """
        from repro.core.incremental import IncrementalRuleLearner

        if self._bundle.training is None:
            raise ServeError(
                "bundle carries no training state; rebuild it with a "
                "rules blocking (`repro serve build --blocking rules`)"
            )
        if self._bundle.ontology is None:
            raise ServeError(
                "bundle carries training state but no ontology; rebuild it"
            )
        return IncrementalRuleLearner.from_state(
            self._bundle.training, self._bundle.ontology
        )

    def run_work_unit(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Act as a remote shard worker: execute one serialized work unit.

        The unit's ``local_fingerprint`` must pin exactly this session's
        resident store — a unit built against a different catalog is
        rejected (:class:`~repro.engine.executors.protocol.WorkUnitError`,
        mapped to 400 by the daemon) before any scan work happens. The
        outcome payload is the same envelope ``repro worker run-unit``
        prints, so a coordinator cannot tell a subprocess worker from a
        daemon-hosted one.
        """
        from repro.engine.executors.protocol import (
            execute_work_unit,
            work_unit_from_payload,
            worker_result_to_payload,
        )

        unit = work_unit_from_payload(payload)
        outcome = execute_work_unit(unit, local=self._local)
        with self._lock:
            self._requests += 1
            self._work_units += 1
        return worker_result_to_payload(outcome)

    def delta(self, stream: str, records: Iterable, job_config=None):
        """Ingest a delta of external records into a named stream.

        Streams keep cumulative best-match state; blocking must be
        graph-independent and stream-safe (prefix, qgram, full).
        """
        from repro.engine import JobConfig, StreamingLinkingJob
        from repro.linking import ThresholdMatcher

        if self.blocking_name not in STREAMABLE_BLOCKING:
            raise ServeError(
                f"blocking {self.blocking_name!r} cannot stream deltas; "
                f"streamable methods: {', '.join(STREAMABLE_BLOCKING)}"
            )
        with self._lock:
            job = self._streams.get(stream)
            if job is None:
                job = StreamingLinkingJob(
                    self._local,
                    self._comparator,
                    ThresholdMatcher(match_threshold=self.match_threshold),
                    job_config or JobConfig(executor="serial"),
                    blocking=self.make_blocking(None),
                )
                self._streams[stream] = job
            self._requests += 1
        # per-stream serialization: deltas of one stream fold in order
        delta = job.ingest(records)
        return job, delta

    def stream_result(self, stream: str):
        """The cumulative result of a named stream (or ``None``)."""
        with self._lock:
            job = self._streams.get(stream)
        return job.result() if job is not None else None

    def stats(self) -> Dict[str, Any]:
        """A JSON-ready snapshot of the warm session."""
        with self._lock:
            streams = sorted(self._streams)
            requests = self._requests
            multiplexed = self._multiplexed
            work_units = self._work_units
        return {
            "multiplex": {
                "threshold": self._multiplex_threshold,
                "workers": self._multiplex_workers,
                "requests": multiplexed,
            },
            "records": len(self._local),
            "blocking": self.blocking_name,
            "match_threshold": self.match_threshold,
            "indexes": sorted(self._bundle.indexes),
            "rules": len(self._bundle.rules) if self._bundle.rules is not None else 0,
            "requests": requests,
            "streams": streams,
            "work_units": work_units,
            "cache": {
                "capacity": self._comparator.cache_capacity,
                "hits": self._comparator.cache_hits,
                "misses": self._comparator.cache_misses,
                "hit_rate": self._comparator.cache_hit_rate,
                "thread_safe": self._comparator.thread_safe,
            },
        }
