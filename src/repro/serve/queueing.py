"""Bounded request admission for the serve daemon.

:class:`ThreadingHTTPServer` spawns one thread per connection, so
without admission control a traffic burst turns into an unbounded pile
of threads all executing linking jobs at once — throughput collapses
and every request's tail latency explodes together. The
:class:`RequestQueue` bounds both dimensions: at most ``workers``
requests execute concurrently, at most ``depth`` wait in line, and
everything beyond that is rejected *immediately* with
:class:`OverloadError` (the daemon maps it to HTTP 503 +
``Retry-After``). A rejected client learns in microseconds that it
should back off; an accepted one keeps the latency profile the worker
pool was sized for.

The submitting thread blocks until its task completes — HTTP handler
threads are cheap waiters; the scarce resource being rationed is the
linking work itself.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Dict, List, Optional

from repro.serve.session import ServeError

#: Default concurrent-execution width of a daemon.
DEFAULT_QUEUE_WORKERS = 4

#: Default number of requests allowed to wait behind the workers.
DEFAULT_QUEUE_DEPTH = 32

#: Default ``Retry-After`` (seconds) advertised on 503 responses.
DEFAULT_RETRY_AFTER = 1.0


class OverloadError(ServeError):
    """The queue is full: the request was rejected, not dropped mid-run."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class _Task:
    """One submitted callable and the box its outcome comes back in."""

    __slots__ = ("fn", "done", "value", "error")

    def __init__(self, fn: Callable[[], Any]) -> None:
        self.fn = fn
        self.done = threading.Event()
        self.value: Any = None
        self.error: Optional[BaseException] = None


_SHUTDOWN = object()


class RequestQueue:
    """A bounded work queue with a fixed worker pool and live counters.

    ``submit`` either enqueues and blocks until the task ran, or raises
    :class:`OverloadError` without blocking when ``depth`` tasks are
    already waiting. Counters (accepted/rejected/completed/failed,
    in-flight, queued) are exposed via :meth:`stats` for ``GET /stats``.
    """

    def __init__(
        self,
        workers: int = DEFAULT_QUEUE_WORKERS,
        depth: int = DEFAULT_QUEUE_DEPTH,
        retry_after: float = DEFAULT_RETRY_AFTER,
    ) -> None:
        if workers < 1:
            raise ServeError(f"queue workers must be >= 1, got {workers}")
        if depth < 1:
            # Queue(maxsize=0) means *unbounded* — exactly the pileup
            # this class exists to prevent
            raise ServeError(f"queue depth must be >= 1, got {depth}")
        if retry_after <= 0:
            raise ServeError(f"retry_after must be positive, got {retry_after}")
        self.workers = workers
        self.depth = depth
        self.retry_after = retry_after
        self._queue: "queue.Queue[Any]" = queue.Queue(maxsize=depth + workers)
        self._lock = threading.Lock()
        self._accepted = 0
        self._rejected = 0
        self._completed = 0
        self._failed = 0
        self._in_flight = 0
        self._threads: List[threading.Thread] = []
        self._started = False
        self._closed = False

    def start(self) -> None:
        """Spin up the worker pool (idempotent)."""
        with self._lock:
            if self._started:
                return
            self._started = True
            for index in range(self.workers):
                thread = threading.Thread(
                    target=self._work,
                    name=f"repro-serve-worker-{index}",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)

    def submit(self, fn: Callable[[], Any]) -> Any:
        """Run *fn* on a worker; block until done; propagate its result.

        Raises :class:`OverloadError` immediately when the waiting line
        is full — admission is decided before any work is queued.
        """
        self.start()
        task = _Task(fn)
        with self._lock:
            if self._closed:
                raise ServeError("request queue is shut down")
            # admission accounting: the physical queue is sized
            # depth + workers so a task a worker has *taken* no longer
            # occupies a waiting slot; the waiting line itself is
            # accepted-minus-(running+finished), bounded by depth
            waiting = self._accepted - self._completed - self._failed - self._in_flight
            if waiting >= self.depth:
                self._rejected += 1
                raise OverloadError(
                    f"request queue full ({self.depth} waiting, "
                    f"{self.workers} in flight); retry after "
                    f"{self.retry_after:g}s",
                    self.retry_after,
                )
            self._accepted += 1
            self._queue.put_nowait(task)
        task.done.wait()
        if task.error is not None:
            raise task.error
        return task.value

    def _work(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                # pass the sentinel on so every sibling exits too
                self._queue.put(_SHUTDOWN)
                return
            with self._lock:
                self._in_flight += 1
            try:
                item.value = item.fn()
                with self._lock:
                    self._in_flight -= 1
                    self._completed += 1
            except BaseException as exc:  # propagated to the submitter
                item.error = exc
                with self._lock:
                    self._in_flight -= 1
                    self._failed += 1
            finally:
                item.done.set()

    def stats(self) -> Dict[str, Any]:
        """A JSON-ready counter snapshot."""
        with self._lock:
            waiting = self._accepted - self._completed - self._failed - self._in_flight
            return {
                "workers": self.workers,
                "depth": self.depth,
                "retry_after": self.retry_after,
                "accepted": self._accepted,
                "rejected": self._rejected,
                "completed": self._completed,
                "failed": self._failed,
                "in_flight": self._in_flight,
                "queued": max(0, waiting),
            }

    def shutdown(self) -> None:
        """Stop accepting work and drain the worker pool."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            started = self._started
        if started:
            self._queue.put(_SHUTDOWN)
            for thread in self._threads:
                thread.join(timeout=10.0)
