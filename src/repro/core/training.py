"""The training set ``TS``: expert-validated sameAs links with provenance.

Paper §3: "Let TS be the set of same-as links between external and local
data items that are validated by a domain expert. We consider that the
linked pairs of data items are stored with their provenance information
(external or local)."

:class:`TrainingSet` stores the links and resolves, for each link, the
learning view the algorithm needs: the external item's property values
(from ``S_E``) and the local item's most-specific classes (from ``O_L``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Sequence

from repro.ontology.model import Ontology
from repro.rdf.dataset import Dataset
from repro.rdf.graph import Graph
from repro.rdf.namespace import OWL
from repro.rdf.terms import IRI, Literal, Term


class TrainingSetError(ValueError):
    """Raised on malformed training data (empty set, unknown items...)."""


@dataclass(frozen=True, slots=True)
class SameAsLink:
    """One expert-validated reconciliation: external item <-> local item."""

    external: Term
    local: Term

    def __str__(self) -> str:
        return f"{self.external} owl:sameAs {self.local}"


@dataclass(frozen=True, slots=True)
class TrainingExample:
    """A link joined with what the learner needs to count.

    ``property_values`` maps each selected data-type property of the
    external item to its literal values; ``classes`` holds the local
    item's most-specific classes.
    """

    link: SameAsLink
    property_values: Dict[IRI, tuple[str, ...]]
    classes: FrozenSet[IRI]


class TrainingSet:
    """The set ``TS`` plus the graphs/ontology required to interpret it.

    >>> ts = TrainingSet(links, external=se_graph, ontology=onto)
    >>> len(ts)                      # |TS|
    10265
    >>> examples = ts.examples([EX.partNumber])
    """

    def __init__(
        self,
        links: Iterable[SameAsLink],
        external: Graph,
        ontology: Ontology,
    ) -> None:
        self._links: List[SameAsLink] = list(links)
        if not self._links:
            raise TrainingSetError("training set must contain at least one link")
        seen = set()
        deduped = []
        for link in self._links:
            if link not in seen:
                seen.add(link)
                deduped.append(link)
        self._links = deduped
        self._external = external
        self._ontology = ontology

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dataset(
        cls,
        dataset: Dataset,
        ontology: Ontology,
        links_graph: str = "links",
    ) -> "TrainingSet":
        """Build from a provenance dataset holding ``owl:sameAs`` triples.

        The links graph must contain triples ``e owl:sameAs l`` with the
        external item as subject and the local item as object (checked
        against the dataset's provenance when available).
        """
        links = []
        for triple in dataset.graph(links_graph).triples(None, OWL.sameAs, None):
            external_item, local_item = triple.subject, triple.object
            prov_subject = dataset.provenance_of(external_item)
            prov_object = dataset.provenance_of(local_item)
            if "local" in prov_subject and "external" in prov_object:
                # stored the other way round; normalize
                external_item, local_item = local_item, external_item
            links.append(SameAsLink(external=external_item, local=local_item))
        if not links:
            raise TrainingSetError(
                f"no owl:sameAs links found in graph {links_graph!r}"
            )
        return cls(links, external=dataset.external, ontology=ontology)

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._links)

    def __iter__(self) -> Iterator[SameAsLink]:
        return iter(self._links)

    @property
    def links(self) -> Sequence[SameAsLink]:
        """The deduplicated links, in insertion order."""
        return tuple(self._links)

    @property
    def external_graph(self) -> Graph:
        """The external source graph ``S_E`` (provider descriptions)."""
        return self._external

    @property
    def ontology(self) -> Ontology:
        """The local ontology ``O_L`` typing the local items."""
        return self._ontology

    # ------------------------------------------------------------------
    # learning views
    # ------------------------------------------------------------------
    def external_properties(self) -> FrozenSet[IRI]:
        """Data-type properties used by linked external items.

        This is the default for Algorithm 1's ``P`` when the expert
        selects nothing ("all if no selection").
        """
        properties = set()
        for link in self._links:
            for triple in self._external.triples(link.external, None, None):
                if isinstance(triple.object, Literal):
                    properties.add(triple.predicate)
        return frozenset(properties)

    def examples(self, properties: Sequence[IRI] | None = None) -> List[TrainingExample]:
        """Join every link with its property values and local classes.

        Links whose local item carries no class are kept with an empty
        class set (they contribute to ``|TS|`` but never to a rule's
        conclusion counts, mirroring the paper's counting over TS).
        """
        selected = (
            tuple(properties)
            if properties is not None
            else tuple(sorted(self.external_properties(), key=lambda p: p.value))
        )
        out: List[TrainingExample] = []
        for link in self._links:
            values: Dict[IRI, tuple[str, ...]] = {}
            for prop in selected:
                literals = self._external.literal_values(link.external, prop)
                if literals:
                    values[prop] = tuple(literals)
            classes = self._ontology.most_specific_classes_of(link.local)
            out.append(
                TrainingExample(link=link, property_values=values, classes=classes)
            )
        return out

    def class_histogram(self) -> Dict[IRI, int]:
        """Count links per most-specific local class.

        A link typed with several most-specific classes counts once per
        class (rare; generated catalogs type items with one leaf).
        """
        histogram: Dict[IRI, int] = {}
        for link in self._links:
            for cls in self._ontology.most_specific_classes_of(link.local):
                histogram[cls] = histogram.get(cls, 0) + 1
        return histogram

    def split(self, fraction: float, *, seed: int = 0) -> tuple["TrainingSet", "TrainingSet"]:
        """Deterministic train/test split of the links.

        Used by the experiment harness to check generalization beyond the
        (paper-style) evaluation on TS itself.
        """
        if not 0.0 < fraction < 1.0:
            raise TrainingSetError(f"fraction must be in (0, 1), got {fraction}")
        import random

        rng = random.Random(seed)
        shuffled = list(self._links)
        rng.shuffle(shuffled)
        cut = max(1, min(len(shuffled) - 1, int(len(shuffled) * fraction)))
        head, tail = shuffled[:cut], shuffled[cut:]
        return (
            TrainingSet(head, external=self._external, ontology=self._ontology),
            TrainingSet(tail, external=self._external, ontology=self._ontology),
        )

    def __repr__(self) -> str:
        return f"<TrainingSet links={len(self._links)}>"
