"""Persistence of learned rule sets: JSON and RDF.

The paper emphasizes that "the learnt classification rules are concise
and easy to understand by an expert" — experts review, edit and version
them. Two formats:

* **JSON** — faithful round-trip including the contingency counts, so
  reloaded rules re-derive identical measures;
* **RDF (Turtle)** — rules published into the knowledge base itself,
  using a small vocabulary under ``http://example.org/rules#``, so a
  triple store can answer "which segments indicate class c?".
"""

from __future__ import annotations

import json
import math
from typing import Dict, Iterable, List

from repro.core.measures import ContingencyCounts, RuleQualityMeasures
from repro.core.rules import ClassificationRule, RuleSet
from repro.rdf.graph import Graph
from repro.rdf.namespace import Namespace, NamespaceManager, RDF
from repro.rdf.terms import IRI, Literal
from repro.rdf.triples import Triple
from repro.rdf.turtle import serialize_turtle

#: Vocabulary for rules-as-RDF.
RULE = Namespace("http://example.org/rules#")

_JSON_VERSION = 1


class RuleSerializationError(ValueError):
    """Raised on malformed serialized rule data."""


# ---------------------------------------------------------------------------
# JSON
# ---------------------------------------------------------------------------

def rule_to_dict(rule: ClassificationRule) -> Dict:
    """One rule as a JSON-ready dict (counts + measures).

    Conviction is ``+inf`` for confidence-1 rules and JSON has no
    Infinity; it is stored as ``null`` (and re-derived from the counts
    on load anyway).
    """
    measures = rule.measures.as_dict()
    if math.isinf(measures["conviction"]):
        measures["conviction"] = None
    return {
        "property": rule.property.value,
        "segment": rule.segment,
        "conclusion": rule.conclusion.value,
        "counts": {
            "both": rule.counts.both,
            "premise": rule.counts.premise,
            "conclusion": rule.counts.conclusion,
            "total": rule.counts.total,
        },
        "measures": measures,
    }


def rules_to_json(rules: RuleSet | Iterable[ClassificationRule], indent: int = 2) -> str:
    """Serialize a rule set as a JSON document."""
    rule_list = list(rules)
    payload = {
        "format": "repro-classification-rules",
        "version": _JSON_VERSION,
        "rule_count": len(rule_list),
        "rules": [rule_to_dict(rule) for rule in rule_list],
    }
    return json.dumps(payload, indent=indent, allow_nan=False)


def rules_from_json(text: str) -> RuleSet:
    """Parse a JSON document produced by :func:`rules_to_json`.

    Measures are *re-derived* from the stored counts — the authoritative
    data — so hand-edited measure fields cannot drift out of sync.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise RuleSerializationError(f"invalid JSON: {exc}") from exc
    if payload.get("format") != "repro-classification-rules":
        raise RuleSerializationError("not a repro rule document")
    if payload.get("version") != _JSON_VERSION:
        raise RuleSerializationError(
            f"unsupported version: {payload.get('version')!r}"
        )
    rules: List[ClassificationRule] = []
    for entry in payload.get("rules", []):
        try:
            counts = ContingencyCounts(
                both=entry["counts"]["both"],
                premise=entry["counts"]["premise"],
                conclusion=entry["counts"]["conclusion"],
                total=entry["counts"]["total"],
            )
            rules.append(
                ClassificationRule(
                    property=IRI(entry["property"]),
                    segment=entry["segment"],
                    conclusion=IRI(entry["conclusion"]),
                    measures=RuleQualityMeasures.from_counts(counts),
                    counts=counts,
                )
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise RuleSerializationError(f"malformed rule entry: {entry!r}") from exc
    return RuleSet(rules)


# ---------------------------------------------------------------------------
# RDF
# ---------------------------------------------------------------------------

def rules_to_graph(rules: RuleSet | Iterable[ClassificationRule]) -> Graph:
    """Publish rules as RDF: one ``rule:ClassificationRule`` node each."""
    graph = Graph(identifier="rules")
    for index, rule in enumerate(rules):
        node = RULE.term(f"r{index}")
        graph.add(Triple(node, RDF.type, RULE.ClassificationRule))
        graph.add(Triple(node, RULE.onProperty, rule.property))
        graph.add(Triple(node, RULE.segment, Literal(rule.segment)))
        graph.add(Triple(node, RULE.concludesClass, rule.conclusion))
        graph.add(Triple(node, RULE.support, Literal(repr(rule.support))))
        graph.add(Triple(node, RULE.confidence, Literal(repr(rule.confidence))))
        graph.add(Triple(node, RULE.lift, Literal(repr(rule.lift))))
        counts = rule.counts
        graph.add(Triple(node, RULE.countBoth, Literal(str(counts.both))))
        graph.add(Triple(node, RULE.countPremise, Literal(str(counts.premise))))
        graph.add(Triple(node, RULE.countConclusion, Literal(str(counts.conclusion))))
        graph.add(Triple(node, RULE.countTotal, Literal(str(counts.total))))
    return graph


def rules_from_graph(graph: Graph) -> RuleSet:
    """Load rules back from the RDF form (counts are authoritative)."""
    rules: List[ClassificationRule] = []
    for node in graph.subjects(RDF.type, RULE.ClassificationRule):
        def value_of(prop: IRI) -> str:
            term = graph.value(node, prop)
            if term is None:
                raise RuleSerializationError(
                    f"rule node {node} is missing {prop.local_name}"
                )
            return term.lexical if isinstance(term, Literal) else term.value

        prop_term = graph.value(node, RULE.onProperty)
        conclusion_term = graph.value(node, RULE.concludesClass)
        if not isinstance(prop_term, IRI) or not isinstance(conclusion_term, IRI):
            raise RuleSerializationError(f"rule node {node} has malformed terms")
        try:
            counts = ContingencyCounts(
                both=int(value_of(RULE.countBoth)),
                premise=int(value_of(RULE.countPremise)),
                conclusion=int(value_of(RULE.countConclusion)),
                total=int(value_of(RULE.countTotal)),
            )
        except ValueError as exc:
            raise RuleSerializationError(f"bad counts on {node}") from exc
        rules.append(
            ClassificationRule(
                property=prop_term,
                segment=value_of(RULE.segment),
                conclusion=conclusion_term,
                measures=RuleQualityMeasures.from_counts(counts),
                counts=counts,
            )
        )
    return RuleSet(rules)


def rules_to_turtle(rules: RuleSet | Iterable[ClassificationRule]) -> str:
    """Rules as a Turtle document (human-reviewable)."""
    manager = NamespaceManager()
    manager.bind("rule", RULE)
    return serialize_turtle(rules_to_graph(rules), manager)
