"""Rule generalization through class subsumption (paper §6, future work).

"As future work, we plan to study how the learnt classification rules can
be used to infer more general rules by exploiting the semantics of the
subsumption between classes of the ontology."

The natural construction: when several rules share the same premise
``(p, a)`` but conclude *different* classes, no single-class rule can be
confident — yet the conclusions often share a close common superclass
(e.g. the segment "uF" appears in both Tantalum and Ceramic capacitors;
the generalized rule concludes Capacitor). We lift such rule groups to
the least common subsumer and recompute the measures there: confidence
can only grow (the premise set is unchanged, the conclusion set is a
superset) while lift shrinks with class breadth — the paper's own
precision/reduction trade-off, climbing the hierarchy.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from repro.core.measures import ContingencyCounts, RuleQualityMeasures
from repro.core.rules import ClassificationRule, RuleSet, rule_order_key
from repro.core.training import TrainingSet
from repro.ontology.model import Ontology
from repro.rdf.terms import IRI
from repro.text.segmentation import SegmentFunction, SeparatorSegmenter


@dataclass(frozen=True, slots=True)
class GeneralizedRule:
    """A rule lifted to a superclass, with its provenance.

    ``sources`` are the leaf-level rules whose conclusions were subsumed.
    """

    rule: ClassificationRule
    sources: Tuple[ClassificationRule, ...]

    @property
    def conclusion(self) -> IRI:
        """The generalized (super)class."""
        return self.rule.conclusion

    def __str__(self) -> str:
        leaves = ", ".join(src.conclusion.local_name for src in self.sources)
        return f"{self.rule} [generalized from: {leaves}]"


class RuleGeneralizer:
    """Lifts same-premise rule groups to their least common subsumer.

    >>> generalizer = RuleGeneralizer(ontology, min_confidence_gain=0.05)
    >>> lifted = generalizer.generalize(rules, training_set)
    """

    def __init__(
        self,
        ontology: Ontology,
        min_confidence_gain: float = 0.0,
        max_depth_lift: int | None = None,
        segmenter: SegmentFunction | None = None,
    ) -> None:
        """Create a generalizer.

        ``min_confidence_gain`` keeps a lifted rule only when its
        confidence exceeds the best source confidence by at least this
        much (0 keeps every strictly better lift). ``max_depth_lift``
        bounds how many levels above the deepest source conclusion the
        lifted class may sit (``None`` = unbounded).
        """
        self._ontology = ontology
        self._min_gain = min_confidence_gain
        self._max_depth_lift = max_depth_lift
        self._segmenter = segmenter or SeparatorSegmenter()

    def generalize(
        self,
        rules: RuleSet,
        training_set: TrainingSet,
    ) -> List[GeneralizedRule]:
        """Produce lifted rules for premise groups with split conclusions."""
        groups: Dict[Tuple[IRI, str], List[ClassificationRule]] = defaultdict(list)
        for rule in rules:
            groups[(rule.property, rule.segment)].append(rule)

        lifted: List[GeneralizedRule] = []
        for (prop, segment), members in groups.items():
            if len(members) < 2:
                continue
            target = self._common_superclass(
                [rule.conclusion for rule in members]
            )
            if target is None:
                continue
            if self._exceeds_depth_budget(target, members):
                continue
            generalized = self._rebuild_rule(
                prop, segment, target, training_set
            )
            if generalized is None:
                continue
            best_source_confidence = max(r.confidence for r in members)
            if generalized.confidence < best_source_confidence + self._min_gain:
                continue
            lifted.append(
                GeneralizedRule(rule=generalized, sources=tuple(members))
            )
        lifted.sort(key=lambda g: rule_order_key(g.rule))
        return lifted

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _common_superclass(self, conclusions: Sequence[IRI]) -> IRI | None:
        """Fold the conclusions through pairwise least common subsumers."""
        hierarchy = self._ontology.hierarchy
        current = conclusions[0]
        for other in conclusions[1:]:
            lcs = hierarchy.least_common_subsumers(current, other)
            if not lcs:
                return None
            # deterministic choice: deepest first, then lexicographic
            current = sorted(
                lcs, key=lambda c: (-hierarchy.depth(c), c.value)
            )[0]
        if current in set(conclusions):
            # lifting to one of the sources is not a generalization
            return None
        return current

    def _exceeds_depth_budget(
        self, target: IRI, members: Sequence[ClassificationRule]
    ) -> bool:
        if self._max_depth_lift is None:
            return False
        hierarchy = self._ontology.hierarchy
        deepest_source = max(hierarchy.depth(r.conclusion) for r in members)
        return deepest_source - hierarchy.depth(target) > self._max_depth_lift

    def _rebuild_rule(
        self,
        prop: IRI,
        segment: str,
        target: IRI,
        training_set: TrainingSet,
    ) -> ClassificationRule | None:
        """Recount the contingency table with ``c(X)`` = descendant-or-self.

        Membership in the lifted class is evaluated against the
        subsumption closure: a link whose most-specific class is a leaf
        below *target* satisfies the generalized conclusion.
        """
        hierarchy = self._ontology.hierarchy
        below = hierarchy.descendants(target) | {target}
        examples = training_set.examples([prop])
        total = len(examples)
        premise = 0
        conclusion = 0
        both = 0
        for example in examples:
            values = example.property_values.get(prop, ())
            has_premise = any(
                segment in self._segmenter(value) for value in values
            )
            in_class = bool(example.classes & below)
            if has_premise:
                premise += 1
            if in_class:
                conclusion += 1
            if has_premise and in_class:
                both += 1
        if premise == 0 or both == 0:
            return None
        counts = ContingencyCounts(
            both=both, premise=premise, conclusion=conclusion, total=total
        )
        return ClassificationRule(
            property=prop,
            segment=segment,
            conclusion=target,
            measures=RuleQualityMeasures.from_counts(counts),
            counts=counts,
        )
