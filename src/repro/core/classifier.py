"""Applying classification rules to new external items (paper §4.4).

For a new external item ``i`` every applicable rule contributes a class
prediction. Predictions are ranked "using the confidence degree first; in
case of the same confidence degree, the lift measure is used in order to
consider first the smaller subspaces". Two rules predicting the same
class for the same item would induce the same linking subspace — the
duplicate with the worse confidence is dropped.

Batch classification (:meth:`RuleClassifier.predict_many`) inverts the
rule set once into a (property, segment) → rules probe table: instead
of scanning every rule against every record, each record's segments are
looked up directly, so per-record cost follows the record's segment
count, not the rule count. The probe path replicates the scan path's
iteration order exactly and is asserted byte-identical by the index
equivalence tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Sequence

from repro.core.rules import ClassificationRule, RuleSet, rule_order_key
from repro.index import IndexStats
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Term
from repro.text.segmentation import SegmentFunction, SeparatorSegmenter


@dataclass(frozen=True, slots=True)
class ClassPrediction:
    """One decision: *item* is predicted to belong to *predicted_class*.

    ``rule`` is the best rule (highest confidence, then lift) that
    produced the decision after duplicate elimination.
    """

    item: Term
    predicted_class: IRI
    rule: ClassificationRule

    @property
    def confidence(self) -> float:
        """Confidence inherited from the deciding rule."""
        return self.rule.confidence

    @property
    def lift(self) -> float:
        """Lift inherited from the deciding rule."""
        return self.rule.lift

    def __str__(self) -> str:
        return (
            f"{self.item} ⇒ {self.predicted_class.local_name} "
            f"(conf={self.confidence:.3f}, lift={self.lift:.1f})"
        )


class RuleClassifier:
    """Classifies external items with a learned :class:`RuleSet`.

    >>> classifier = RuleClassifier(rules)
    >>> predictions = classifier.predict(item, external_graph)
    >>> predictions[0].predicted_class     # best decision first
    """

    def __init__(
        self,
        rules: RuleSet | Iterable[ClassificationRule],
        segmenter: SegmentFunction | None = None,
        ordering: "Callable[[ClassificationRule], tuple] | None" = None,
    ) -> None:
        """``ordering`` overrides the paper's confidence-then-lift rank
        (see :mod:`repro.core.ordering` for alternatives like CBA)."""
        self._rules = rules if isinstance(rules, RuleSet) else RuleSet(rules)
        self._segmenter = segmenter or SeparatorSegmenter()
        self._ordering = ordering or rule_order_key
        # group rules by property so prediction only segments each value once
        self._by_property: Dict[IRI, List[ClassificationRule]] = {}
        for rule in self._rules:
            self._by_property.setdefault(rule.property, []).append(rule)
        # lazily built probe table: (property, segment) -> scan positions
        self._probe: Dict[IRI, Dict[str, List[int]]] | None = None
        self._scan_order: List[ClassificationRule] = []
        self._probe_build_seconds = 0.0

    @property
    def rules(self) -> RuleSet:
        """The rule set driving this classifier."""
        return self._rules

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def predict(self, item: Term, graph: Graph) -> List[ClassPrediction]:
        """All ranked decisions for *item* described in *graph*.

        Returns the deduplicated predictions ordered best-first; empty
        list when no rule applies (the item stays unclassified and must
        be compared against the whole catalog).
        """
        best_per_class: Dict[IRI, ClassificationRule] = {}
        for prop, rules in self._by_property.items():
            values = graph.literal_values(item, prop)
            if not values:
                continue
            segments = set()
            for value in values:
                segments.update(self._segmenter(value))
            for rule in rules:
                if rule.segment not in segments:
                    continue
                incumbent = best_per_class.get(rule.conclusion)
                if incumbent is None or self._ordering(rule) < self._ordering(incumbent):
                    best_per_class[rule.conclusion] = rule
        predictions = [
            ClassPrediction(item=item, predicted_class=cls, rule=rule)
            for cls, rule in best_per_class.items()
        ]
        predictions.sort(key=lambda pred: self._ordering(pred.rule))
        return predictions

    def predict_class(self, item: Term, graph: Graph) -> IRI | None:
        """The single best predicted class, or ``None`` if undecidable."""
        predictions = self.predict(item, graph)
        return predictions[0].predicted_class if predictions else None

    # ------------------------------------------------------------------
    # batch prediction over the inverted probe table
    # ------------------------------------------------------------------
    def _ensure_probe(self) -> Dict[IRI, Dict[str, List[int]]]:
        """Invert the rule set: (property, segment) → scan positions.

        Positions index :attr:`_scan_order`, the exact order the scan
        path visits rules (property grouping order, then rule order
        within the group), so probe-based incumbent updates replay the
        scan path's tie-breaking bit for bit.
        """
        if self._probe is None:
            started = time.perf_counter()
            probe: Dict[IRI, Dict[str, List[int]]] = {}
            scan_order: List[ClassificationRule] = []
            for prop, rules in self._by_property.items():
                segments = probe.setdefault(prop, {})
                for rule in rules:
                    segments.setdefault(rule.segment, []).append(len(scan_order))
                    scan_order.append(rule)
            self._probe = probe
            self._scan_order = scan_order
            self._probe_build_seconds = time.perf_counter() - started
        return self._probe

    def build_probe_table(self) -> None:
        """Eagerly build the rule probe table (idempotent).

        :meth:`predict_many` builds it lazily; callers that want to time
        probing separately from building (blocking, benchmarks) call
        this first.
        """
        self._ensure_probe()

    def predict_many(
        self,
        items: Iterable[Term],
        graph: Graph,
    ) -> Dict[Term, List[ClassPrediction]]:
        """Batch :meth:`predict`: probe the rule index per segment.

        Produces exactly what per-item :meth:`predict` produces (same
        predictions, same order) but touches only the rules whose
        segment actually occurs on the record — per-record cost is
        O(values + segments) instead of O(rules).
        """
        probe = self._ensure_probe()
        scan_order = self._scan_order
        ordering = self._ordering
        out: Dict[Term, List[ClassPrediction]] = {}
        for item in items:
            positions: List[int] = []
            for prop, by_segment in probe.items():
                values = graph.literal_values(item, prop)
                if not values:
                    continue
                segments = set()
                for value in values:
                    segments.update(self._segmenter(value))
                for segment in segments:
                    hits = by_segment.get(segment)
                    if hits:
                        positions.extend(hits)
            # ascending positions replay the scan path's visit order
            positions.sort()
            best_per_class: Dict[IRI, ClassificationRule] = {}
            for position in positions:
                rule = scan_order[position]
                incumbent = best_per_class.get(rule.conclusion)
                if incumbent is None or ordering(rule) < ordering(incumbent):
                    best_per_class[rule.conclusion] = rule
            predictions = [
                ClassPrediction(item=item, predicted_class=cls, rule=rule)
                for cls, rule in best_per_class.items()
            ]
            predictions.sort(key=lambda pred: ordering(pred.rule))
            out[item] = predictions
        return out

    def probe_index_stats(self, probe_seconds: float = 0.0) -> IndexStats:
        """Size/timing report of the rule probe table."""
        probe = self._ensure_probe()
        features = sum(len(by_segment) for by_segment in probe.values())
        postings = sum(
            len(hits)
            for by_segment in probe.values()
            for hits in by_segment.values()
        )
        return IndexStats(
            features=features,
            postings=postings,
            build_seconds=self._probe_build_seconds,
            probe_seconds=probe_seconds,
        )

    def predict_all(
        self,
        items: Iterable[Term],
        graph: Graph,
    ) -> Dict[Term, List[ClassPrediction]]:
        """Predictions for every item (items with none are included).

        Delegates to the index-backed :meth:`predict_many`; use
        :meth:`predict` per item for the scan reference path.
        """
        return self.predict_many(items, graph)

    def decided_items(self, items: Iterable[Term], graph: Graph) -> List[Term]:
        """Items for which at least one rule fires."""
        return [item for item in items if self.predict(item, graph)]

    def __repr__(self) -> str:
        return f"<RuleClassifier rules={len(self._rules)}>"
