"""Applying classification rules to new external items (paper §4.4).

For a new external item ``i`` every applicable rule contributes a class
prediction. Predictions are ranked "using the confidence degree first; in
case of the same confidence degree, the lift measure is used in order to
consider first the smaller subspaces". Two rules predicting the same
class for the same item would induce the same linking subspace — the
duplicate with the worse confidence is dropped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Sequence

from repro.core.rules import ClassificationRule, RuleSet, rule_order_key
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Term
from repro.text.segmentation import SegmentFunction, SeparatorSegmenter


@dataclass(frozen=True, slots=True)
class ClassPrediction:
    """One decision: *item* is predicted to belong to *predicted_class*.

    ``rule`` is the best rule (highest confidence, then lift) that
    produced the decision after duplicate elimination.
    """

    item: Term
    predicted_class: IRI
    rule: ClassificationRule

    @property
    def confidence(self) -> float:
        """Confidence inherited from the deciding rule."""
        return self.rule.confidence

    @property
    def lift(self) -> float:
        """Lift inherited from the deciding rule."""
        return self.rule.lift

    def __str__(self) -> str:
        return (
            f"{self.item} ⇒ {self.predicted_class.local_name} "
            f"(conf={self.confidence:.3f}, lift={self.lift:.1f})"
        )


class RuleClassifier:
    """Classifies external items with a learned :class:`RuleSet`.

    >>> classifier = RuleClassifier(rules)
    >>> predictions = classifier.predict(item, external_graph)
    >>> predictions[0].predicted_class     # best decision first
    """

    def __init__(
        self,
        rules: RuleSet | Iterable[ClassificationRule],
        segmenter: SegmentFunction | None = None,
        ordering: "Callable[[ClassificationRule], tuple] | None" = None,
    ) -> None:
        """``ordering`` overrides the paper's confidence-then-lift rank
        (see :mod:`repro.core.ordering` for alternatives like CBA)."""
        self._rules = rules if isinstance(rules, RuleSet) else RuleSet(rules)
        self._segmenter = segmenter or SeparatorSegmenter()
        self._ordering = ordering or rule_order_key
        # group rules by property so prediction only segments each value once
        self._by_property: Dict[IRI, List[ClassificationRule]] = {}
        for rule in self._rules:
            self._by_property.setdefault(rule.property, []).append(rule)

    @property
    def rules(self) -> RuleSet:
        """The rule set driving this classifier."""
        return self._rules

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def predict(self, item: Term, graph: Graph) -> List[ClassPrediction]:
        """All ranked decisions for *item* described in *graph*.

        Returns the deduplicated predictions ordered best-first; empty
        list when no rule applies (the item stays unclassified and must
        be compared against the whole catalog).
        """
        best_per_class: Dict[IRI, ClassificationRule] = {}
        for prop, rules in self._by_property.items():
            values = graph.literal_values(item, prop)
            if not values:
                continue
            segments = set()
            for value in values:
                segments.update(self._segmenter(value))
            for rule in rules:
                if rule.segment not in segments:
                    continue
                incumbent = best_per_class.get(rule.conclusion)
                if incumbent is None or self._ordering(rule) < self._ordering(incumbent):
                    best_per_class[rule.conclusion] = rule
        predictions = [
            ClassPrediction(item=item, predicted_class=cls, rule=rule)
            for cls, rule in best_per_class.items()
        ]
        predictions.sort(key=lambda pred: self._ordering(pred.rule))
        return predictions

    def predict_class(self, item: Term, graph: Graph) -> IRI | None:
        """The single best predicted class, or ``None`` if undecidable."""
        predictions = self.predict(item, graph)
        return predictions[0].predicted_class if predictions else None

    def predict_all(
        self,
        items: Iterable[Term],
        graph: Graph,
    ) -> Dict[Term, List[ClassPrediction]]:
        """Predictions for every item (items with none are included)."""
        return {item: self.predict(item, graph) for item in items}

    def decided_items(self, items: Iterable[Term], graph: Graph) -> List[Term]:
        """Items for which at least one rule fires."""
        return [item for item in items if self.predict(item, graph)]

    def __repr__(self) -> str:
        return f"<RuleClassifier rules={len(self._rules)}>"
