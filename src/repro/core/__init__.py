"""The paper's contribution: value-based classification rule learning.

Pipeline (paper §3-§4):

1. :class:`TrainingSet` — expert-validated ``sameAs`` links between the
   external source ``S_E`` and the local source ``S_L``, with provenance.
2. :class:`RuleLearner` — Algorithm 1: mine frequent (property, segment)
   pairs, frequent most-specific classes, then frequent conjunctions, and
   emit :class:`ClassificationRule` objects qualified by
   :class:`RuleQualityMeasures` (support / confidence / lift).
3. :class:`RuleSet` — ordering (confidence first, then lift) and
   confidence-band grouping as in Table 1.
4. :class:`RuleClassifier` — apply rules to new external items, producing
   ranked :class:`ClassPrediction` decisions with duplicate-subspace
   elimination.
5. :class:`LinkingSubspace` — the reduced linking space induced by the
   predictions, with reduction statistics against the naive
   ``|S_E| x |S_L|`` space.
6. :class:`RuleGeneralizer` — the paper's future-work extension: lift
   sibling rules through the subsumption hierarchy.
"""

from repro.core.training import SameAsLink, TrainingSet, TrainingExample
from repro.core.measures import RuleQualityMeasures, ContingencyCounts
from repro.core.rules import ClassificationRule, RuleSet
from repro.core.learner import LearnerConfig, RuleLearner
from repro.core.classifier import ClassPrediction, RuleClassifier
from repro.core.subspace import LinkingSubspace, SubspaceReduction
from repro.core.generalize import GeneralizedRule, RuleGeneralizer
from repro.core.conjunctive import ConjunctiveRule, ConjunctiveRuleLearner
from repro.core.incremental import IncrementalRuleLearner
from repro.core.ordering import (
    ORDERINGS,
    cba_ordering,
    get_ordering,
    paper_ordering,
    subspace_first_ordering,
)
from repro.core.serialize import (
    rules_to_json,
    rules_from_json,
    rules_to_graph,
    rules_from_graph,
    rules_to_turtle,
    RuleSerializationError,
)

__all__ = [
    "SameAsLink",
    "TrainingSet",
    "TrainingExample",
    "RuleQualityMeasures",
    "ContingencyCounts",
    "ClassificationRule",
    "RuleSet",
    "LearnerConfig",
    "RuleLearner",
    "ClassPrediction",
    "RuleClassifier",
    "LinkingSubspace",
    "SubspaceReduction",
    "GeneralizedRule",
    "RuleGeneralizer",
    "rules_to_json",
    "rules_from_json",
    "rules_to_graph",
    "rules_from_graph",
    "rules_to_turtle",
    "RuleSerializationError",
    "ORDERINGS",
    "paper_ordering",
    "cba_ordering",
    "subspace_first_ordering",
    "get_ordering",
    "ConjunctiveRule",
    "ConjunctiveRuleLearner",
    "IncrementalRuleLearner",
]
