"""Classification rules and ordered rule sets.

A value-based classification rule (paper §4.1)::

    p(X, Y) ∧ subsegment(Y, a)  ⇒  c(X)

is represented by :class:`ClassificationRule`: the data-type property
``p``, the segment ``a`` and the concluded class ``c``, plus its quality
measures over TS. :class:`RuleSet` holds learned rules in the paper's
order (confidence descending, then lift descending) and provides the
confidence-band grouping used by Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.core.measures import ContingencyCounts, RuleQualityMeasures
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Term


@dataclass(frozen=True, slots=True)
class ClassificationRule:
    """One learned rule ``p(X,Y) ∧ subsegment(Y,a) ⇒ c(X)``.

    ``measures`` carries support/confidence/lift (and extras) computed on
    the training set; ``counts`` keeps the raw contingency table so that
    measures can be re-derived or aggregated exactly.
    """

    property: IRI
    segment: str
    conclusion: IRI
    measures: RuleQualityMeasures
    counts: ContingencyCounts

    # ------------------------------------------------------------------
    # convenience accessors (sorting keys)
    # ------------------------------------------------------------------
    @property
    def support(self) -> float:
        """Support over TS."""
        return self.measures.support

    @property
    def confidence(self) -> float:
        """Confidence over TS."""
        return self.measures.confidence

    @property
    def lift(self) -> float:
        """Lift over TS."""
        return self.measures.lift

    def applies_to_value(self, value: str, segmenter: Callable[[str], List[str]]) -> bool:
        """Does *value* contain this rule's segment under *segmenter*?"""
        return self.segment in segmenter(value)

    def applies_to(
        self,
        item: Term,
        graph: Graph,
        segmenter: Callable[[str], List[str]],
    ) -> bool:
        """Does the rule's premise hold for *item* described in *graph*?

        True when some value of ``property`` on *item* contains the
        segment (the paper: "the segment a occurs at least one time in
        the value Y").
        """
        return any(
            self.applies_to_value(value, segmenter)
            for value in graph.literal_values(item, self.property)
        )

    def __str__(self) -> str:
        return (
            f"{self.property.local_name}(X,Y) ∧ subsegment(Y,'{self.segment}') "
            f"⇒ {self.conclusion.local_name}(X)  [{self.measures}]"
        )


def rule_order_key(rule: ClassificationRule) -> Tuple[float, float, str, str, str]:
    """Sort key implementing the paper's rule ordering (§4.4).

    Confidence descending first; "in case of the same confidence degree,
    the lift measure is used in order to consider first the smaller
    subspaces" — lift descending second. The textual tail makes the order
    total and deterministic.
    """
    return (
        -rule.confidence,
        -rule.lift,
        rule.property.value,
        rule.segment,
        rule.conclusion.value,
    )


class RuleSet:
    """Learned rules, kept in the paper's ranking order.

    >>> rules = RuleSet(learned)
    >>> rules.in_confidence_band(0.8, 1.0)      # Table 1 row "0.8"
    >>> rules.confidence_bands([1.0, 0.8, 0.6, 0.4])
    """

    def __init__(self, rules: Iterable[ClassificationRule] = ()) -> None:
        self._rules: List[ClassificationRule] = sorted(rules, key=rule_order_key)

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[ClassificationRule]:
        return iter(self._rules)

    def __getitem__(self, index: int) -> ClassificationRule:
        return self._rules[index]

    def __contains__(self, rule: ClassificationRule) -> bool:
        return rule in self._rules

    @property
    def rules(self) -> Sequence[ClassificationRule]:
        """The rules in ranking order (confidence desc, lift desc)."""
        return tuple(self._rules)

    # ------------------------------------------------------------------
    # filtering & grouping
    # ------------------------------------------------------------------
    def with_min_confidence(self, threshold: float) -> "RuleSet":
        """Rules with ``confidence >= threshold``."""
        return RuleSet(r for r in self._rules if r.confidence >= threshold)

    def in_confidence_band(self, low: float, high: float) -> "RuleSet":
        """Rules with ``low <= confidence < high`` (or == high when high is 1).

        Table 1 groups rules into disjoint bands; the top band is exactly
        confidence 1, so ``high=1.0`` is inclusive there.
        """
        if high >= 1.0:
            return RuleSet(
                r for r in self._rules if low <= r.confidence <= 1.0
            )
        return RuleSet(r for r in self._rules if low <= r.confidence < high)

    def confidence_bands(self, thresholds: Sequence[float]) -> Dict[float, "RuleSet"]:
        """Partition into the paper's disjoint bands.

        ``thresholds=[1.0, 0.8, 0.6, 0.4]`` yields ``{1.0: conf==1,
        0.8: [0.8,1), 0.6: [0.6,0.8), 0.4: [0.4,0.6)}``.
        """
        ordered = sorted(thresholds, reverse=True)
        bands: Dict[float, RuleSet] = {}
        prev_low: float | None = None
        for i, low in enumerate(ordered):
            if i == 0:
                if low >= 1.0:
                    members = [r for r in self._rules if r.confidence >= 1.0]
                else:
                    members = [r for r in self._rules if low <= r.confidence <= 1.0]
            else:
                assert prev_low is not None
                members = [
                    r for r in self._rules if low <= r.confidence < prev_low
                ]
            bands[low] = RuleSet(members)
            prev_low = low
        return bands

    def for_property(self, prop: IRI) -> "RuleSet":
        """Rules whose premise uses *prop*."""
        return RuleSet(r for r in self._rules if r.property == prop)

    def for_class(self, cls: IRI) -> "RuleSet":
        """Rules concluding *cls*."""
        return RuleSet(r for r in self._rules if r.conclusion == cls)

    def concluded_classes(self) -> frozenset[IRI]:
        """Distinct classes appearing in rule conclusions.

        The paper: "We have found interesting segments for 16 classes."
        """
        return frozenset(r.conclusion for r in self._rules)

    def properties(self) -> frozenset[IRI]:
        """Distinct properties appearing in rule premises."""
        return frozenset(r.property for r in self._rules)

    def segments(self) -> frozenset[str]:
        """Distinct segments appearing in rule premises."""
        return frozenset(r.segment for r in self._rules)

    def average_lift(self) -> float:
        """Mean lift of the rules (Table 1's last column); 0 if empty."""
        if not self._rules:
            return 0.0
        return sum(r.lift for r in self._rules) / len(self._rules)

    def merge(self, other: "RuleSet") -> "RuleSet":
        """Union of two rule sets, re-ranked."""
        return RuleSet([*self._rules, *other._rules])

    def __repr__(self) -> str:
        return f"<RuleSet rules={len(self._rules)}>"
