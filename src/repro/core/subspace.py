"""Linking subspaces: the reduced comparison space after classification.

Paper §4.4: "For a given new data item i, and a rule Rk, the application
of Rk leads to a data linking subspace d_ik composed of the set of pairs
(i, j) such that i ∈ S_E, j ∈ S_L and c(j). The whole data linking space
for the data item i is then composed of the union of all the data linking
subspaces obtained thanks to the application of all the classification
rules involving i."

The paper's headline motivation is the reduction against the naive
``|S_E| × |S_L|`` space; :class:`SubspaceReduction` quantifies it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Sequence, Tuple

from repro.core.classifier import ClassPrediction
from repro.ontology.model import Ontology
from repro.rdf.terms import IRI, Term


@dataclass(frozen=True, slots=True)
class SubspaceReduction:
    """Reduction statistics of a classified batch of external items.

    * ``naive_pairs`` — ``|S_E| × |S_L|`` for the batch;
    * ``reduced_pairs`` — pairs remaining inside predicted classes, with
      *undecided* items kept at full width ``|S_L|`` (they still must be
      compared to everything);
    * ``decided_items`` / ``undecided_items`` — batch composition.
    """

    naive_pairs: int
    reduced_pairs: int
    decided_items: int
    undecided_items: int

    @property
    def reduction_ratio(self) -> float:
        """``1 - reduced/naive`` (1.0 = everything pruned)."""
        if self.naive_pairs == 0:
            return 0.0
        return 1.0 - self.reduced_pairs / self.naive_pairs

    @property
    def reduction_factor(self) -> float:
        """``naive / reduced`` — "the linkage space can be divided by"."""
        if self.reduced_pairs == 0:
            return float("inf") if self.naive_pairs else 1.0
        return self.naive_pairs / self.reduced_pairs

    def __str__(self) -> str:
        return (
            f"naive={self.naive_pairs} reduced={self.reduced_pairs} "
            f"(x{self.reduction_factor:.1f} smaller, "
            f"{self.decided_items} decided / {self.undecided_items} undecided)"
        )


class LinkingSubspace:
    """The set of candidate pairs induced by class predictions.

    >>> subspace = LinkingSubspace.from_predictions(preds, ontology)
    >>> subspace.candidates_for(item)      # local items to compare with
    >>> subspace.reduction(total_local=catalog_size)
    """

    def __init__(self, candidates: Dict[Term, FrozenSet[Term]]) -> None:
        self._candidates = dict(candidates)

    @classmethod
    def from_predictions(
        cls,
        predictions: Dict[Term, List[ClassPrediction]],
        ontology: Ontology,
        include_subclasses: bool = True,
    ) -> "LinkingSubspace":
        """Union the per-rule subspaces of every item's predictions.

        ``include_subclasses`` widens ``c(j)`` to instances of subclasses
        of ``c`` — harmless for leaf conclusions and required for the
        generalization extension whose conclusions are inner classes.
        """
        candidates: Dict[Term, FrozenSet[Term]] = {}
        for item, preds in predictions.items():
            pool: set[Term] = set()
            for pred in preds:
                pool.update(
                    ontology.instances_of(
                        pred.predicted_class, include_subclasses=include_subclasses
                    )
                )
            candidates[item] = frozenset(pool)
        return cls(candidates)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def items(self) -> Iterator[Term]:
        """External items covered by this subspace (decided or not)."""
        yield from self._candidates

    def candidates_for(self, item: Term) -> FrozenSet[Term]:
        """Local items the external *item* must be compared with."""
        return self._candidates.get(item, frozenset())

    def pairs(self) -> Iterator[Tuple[Term, Term]]:
        """All (external, local) candidate pairs."""
        for item, pool in self._candidates.items():
            for local in pool:
                yield item, local

    def pair_count(self) -> int:
        """Number of candidate pairs for decided items."""
        return sum(len(pool) for pool in self._candidates.values())

    def __len__(self) -> int:
        return len(self._candidates)

    def __contains__(self, item: Term) -> bool:
        return item in self._candidates

    # ------------------------------------------------------------------
    # reduction statistics
    # ------------------------------------------------------------------
    def reduction(self, total_local: int) -> SubspaceReduction:
        """Reduction stats against a catalog of *total_local* items.

        Items with an empty candidate set count as *undecided*: no rule
        fired, so a fair comparison keeps them at the naive width.
        """
        decided = sum(1 for pool in self._candidates.values() if pool)
        undecided = len(self._candidates) - decided
        reduced = self.pair_count() + undecided * total_local
        return SubspaceReduction(
            naive_pairs=len(self._candidates) * total_local,
            reduced_pairs=reduced,
            decided_items=decided,
            undecided_items=undecided,
        )

    def __repr__(self) -> str:
        return f"<LinkingSubspace items={len(self)} pairs={self.pair_count()}>"
