"""Rule-ordering strategies.

The paper ranks rules by confidence, breaking ties by lift ("in order to
consider first the smaller subspaces"). The classification-rule-mining
literature it cites (Liu, Hsu & Ma 1998 — CBA) orders by confidence,
then support, then generation order; and for space-reduction-first
applications, lift-major ordering minimizes the candidate set even at
some confidence cost. All three are provided as key functions usable
with :class:`~repro.core.rules.RuleSet` and
:class:`~repro.core.classifier.RuleClassifier`.
"""

from __future__ import annotations

from typing import Callable, Tuple

from repro.core.rules import ClassificationRule, rule_order_key

#: A total-order key over rules: smaller sorts first (= better).
OrderingKey = Callable[[ClassificationRule], Tuple]


def paper_ordering(rule: ClassificationRule) -> Tuple:
    """The paper's §4.4 order: confidence desc, then lift desc."""
    return rule_order_key(rule)


def cba_ordering(rule: ClassificationRule) -> Tuple:
    """CBA (Liu et al. 1998): confidence desc, support desc, then a
    deterministic textual tail standing in for generation order."""
    return (
        -rule.confidence,
        -rule.support,
        rule.property.value,
        rule.segment,
        rule.conclusion.value,
    )


def subspace_first_ordering(rule: ClassificationRule) -> Tuple:
    """Smallest-subspace-first: lift desc (small conclusion classes),
    then confidence desc — maximal space reduction per decision."""
    return (
        -rule.lift,
        -rule.confidence,
        rule.property.value,
        rule.segment,
        rule.conclusion.value,
    )


#: Registry for CLI/notebook use.
ORDERINGS: dict[str, OrderingKey] = {
    "paper": paper_ordering,
    "cba": cba_ordering,
    "subspace": subspace_first_ordering,
}


def get_ordering(name: str) -> OrderingKey:
    """Look up an ordering by name; raises :class:`KeyError` if unknown."""
    return ORDERINGS[name]
