"""Incremental rule learning: grow the rule set as experts validate links.

The Thales workflow is continuous — providers keep sending files and
experts keep validating reconciliations. Re-running Algorithm 1 from
scratch on every batch is wasteful: all its state is a handful of
counters. :class:`IncrementalRuleLearner` keeps those counters and
re-emits the rule set on demand; feeding it the same links in any batch
split yields exactly the batch learner's output.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, FrozenSet, Iterable, List, Tuple

from repro.core.learner import LearnerConfig, LearningStatistics
from repro.core.measures import ContingencyCounts, RuleQualityMeasures
from repro.core.rules import ClassificationRule, RuleSet
from repro.core.training import SameAsLink, TrainingSet
from repro.ontology.model import Ontology
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI


class IncrementalRuleLearner:
    """Counter-based online version of Algorithm 1.

    >>> learner = IncrementalRuleLearner(LearnerConfig(...), ontology)
    >>> learner.add_links(first_batch, external_graph)
    >>> learner.add_links(second_batch, external_graph)
    >>> rules = learner.rules()
    """

    def __init__(self, config: LearnerConfig, ontology: Ontology) -> None:
        self.config = config
        self._ontology = ontology
        self._total = 0
        self._pair_counts: Counter[Tuple[IRI, str]] = Counter()
        self._class_counts: Counter[IRI] = Counter()
        self._conjunction_counts: Counter[Tuple[IRI, str, IRI]] = Counter()
        self._occurrences: Counter[str] = Counter()
        self._seen: set[SameAsLink] = set()

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    @property
    def total_links(self) -> int:
        """Links ingested so far (|TS|)."""
        return self._total

    def add_links(self, links: Iterable[SameAsLink], external: Graph) -> int:
        """Ingest a batch of validated links; returns how many were new.

        Duplicate links (already ingested) are skipped, mirroring the
        set semantics of ``TS``.
        """
        if self.config.properties is None:
            raise ValueError(
                "IncrementalRuleLearner requires an explicit property "
                "selection (the 'all properties' default would drift as "
                "new predicates appear across batches)"
            )
        added = 0
        for link in links:
            if link in self._seen:
                continue
            self._seen.add(link)
            added += 1
            self._total += 1
            per_property: Dict[IRI, set[str]] = {}
            for prop in self.config.properties:
                segments: set[str] = set()
                for value in external.literal_values(link.external, prop):
                    pieces = self.config.segmenter(value)
                    self._occurrences.update(pieces)
                    segments.update(pieces)
                if segments:
                    per_property[prop] = segments
            classes = self._ontology.most_specific_classes_of(link.local)
            for cls in classes:
                self._class_counts[cls] += 1
            for prop, segments in per_property.items():
                for segment in segments:
                    self._pair_counts[(prop, segment)] += 1
                    for cls in classes:
                        self._conjunction_counts[(prop, segment, cls)] += 1
        return added

    def add_training_set(self, training_set: TrainingSet) -> int:
        """Ingest a whole :class:`TrainingSet`."""
        return self.add_links(training_set.links, training_set.external_graph)

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def _min_count(self) -> int:
        import math

        threshold = self.config.support_threshold * self._total
        if self.config.strict_threshold:
            return int(math.floor(threshold)) + 1
        return max(1, int(math.ceil(threshold)))

    def rules(self) -> RuleSet:
        """The current rule set under the configured threshold."""
        if self._total == 0:
            return RuleSet()
        min_count = self._min_count()
        frequent_pairs = {
            pair for pair, count in self._pair_counts.items() if count >= min_count
        }
        frequent_classes = {
            cls for cls, count in self._class_counts.items() if count >= min_count
        }
        rules: List[ClassificationRule] = []
        for (prop, segment, cls), both in self._conjunction_counts.items():
            if both < min_count:
                continue
            if (prop, segment) not in frequent_pairs or cls not in frequent_classes:
                continue
            counts = ContingencyCounts(
                both=both,
                premise=self._pair_counts[(prop, segment)],
                conclusion=self._class_counts[cls],
                total=self._total,
            )
            rules.append(
                ClassificationRule(
                    property=prop,
                    segment=segment,
                    conclusion=cls,
                    measures=RuleQualityMeasures.from_counts(counts),
                    counts=counts,
                )
            )
        return RuleSet(rules)

    def statistics(self) -> LearningStatistics:
        """Counter snapshot in the batch learner's statistics shape."""
        min_count = self._min_count() if self._total else 1
        frequent_pairs = {
            pair for pair, count in self._pair_counts.items() if count >= min_count
        }
        selected_segments = {segment for _, segment in frequent_pairs}
        return LearningStatistics(
            total_links=self._total,
            distinct_segments=len(self._occurrences),
            segment_occurrences=sum(self._occurrences.values()),
            selected_segment_occurrences=sum(
                self._occurrences[s] for s in selected_segments
            ),
            frequent_pairs=len(frequent_pairs),
            frequent_classes=sum(
                1 for count in self._class_counts.values() if count >= min_count
            ),
            rule_count=len(self.rules()),
        )
