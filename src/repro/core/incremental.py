"""Incremental rule learning: grow the rule set as experts validate links.

The Thales workflow is continuous — providers keep sending files and
experts keep validating reconciliations. Re-running Algorithm 1 from
scratch on every batch is wasteful: all its state is one shared
:class:`~repro.index.TrainingFeatureIndex`. :class:`IncrementalRuleLearner`
grows that index under :meth:`add_links` (each new link appends its row
to the relevant posting lists — O(1) per feature) and re-emits the rule
set on demand from posting probes; feeding it the same links in any
batch split yields exactly the batch learner's output.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.core.learner import LearnerConfig, LearningStatistics
from repro.core.measures import ContingencyCounts, RuleQualityMeasures
from repro.core.rules import ClassificationRule, RuleSet
from repro.core.training import SameAsLink, TrainingSet
from repro.index import TrainingFeatureIndex
from repro.ontology.model import Ontology
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI


class IncrementalRuleLearner:
    """Posting-list-backed online version of Algorithm 1.

    >>> learner = IncrementalRuleLearner(LearnerConfig(...), ontology)
    >>> learner.add_links(first_batch, external_graph)
    >>> learner.add_links(second_batch, external_graph)
    >>> rules = learner.rules()
    """

    def __init__(self, config: LearnerConfig, ontology: Ontology) -> None:
        self.config = config
        self._ontology = ontology
        self._index = TrainingFeatureIndex(config.segmenter)
        self._seen: set[SameAsLink] = set()

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    @property
    def total_links(self) -> int:
        """Links ingested so far (|TS|)."""
        return self._index.rows

    @property
    def index(self) -> TrainingFeatureIndex:
        """The shared feature index this learner maintains."""
        return self._index

    def add_links(self, links: Iterable[SameAsLink], external: Graph) -> int:
        """Ingest a batch of validated links; returns how many were new.

        Duplicate links (already ingested) are skipped, mirroring the
        set semantics of ``TS``. Each new link becomes one index row:
        its segments land on the (property, segment) postings, its
        most-specific classes on the class postings.
        """
        if self.config.properties is None:
            raise ValueError(
                "IncrementalRuleLearner requires an explicit property "
                "selection (the 'all properties' default would drift as "
                "new predicates appear across batches)"
            )
        added = 0
        for link in links:
            if link in self._seen:
                continue
            self._seen.add(link)
            added += 1
            property_values: Dict[IRI, tuple[str, ...]] = {}
            for prop in self.config.properties:
                values = tuple(external.literal_values(link.external, prop))
                if values:
                    property_values[prop] = values
            classes = self._ontology.most_specific_classes_of(link.local)
            self._index.ingest(property_values, classes)
        return added

    def add_training_set(self, training_set: TrainingSet) -> int:
        """Ingest a whole :class:`TrainingSet`."""
        return self.add_links(training_set.links, training_set.external_graph)

    # ------------------------------------------------------------------
    # warm-start persistence (artifact bundles)
    # ------------------------------------------------------------------
    def to_state(self):
        """This learner as a bundleable
        :class:`~repro.index.artifacts.TrainingState`.

        Seen links are exported in deterministic ``(external, local)``
        string order, so two learners that ingested the same links in
        different batch splits serialize byte-identically — the
        incremental-equals-batch invariant extended to the bundle file.
        """
        from repro.index.artifacts import TrainingState

        return TrainingState(
            index=self._index,
            properties=self.config.properties or (),
            support_threshold=self.config.support_threshold,
            strict_threshold=self.config.strict_threshold,
            seen=sorted(
                ((link.external, link.local) for link in self._seen),
                key=lambda pair: (str(pair[0]), str(pair[1])),
            ),
        )

    @classmethod
    def from_state(cls, state, ontology: Ontology) -> "IncrementalRuleLearner":
        """Resume a learner from a bundled state and a live ontology.

        The restored learner continues exactly where the serialized one
        stopped: same index rows, same dedupe set, same thresholds —
        ``add_links`` on new expert validations appends to the restored
        postings and :meth:`rules` re-emits from them.
        """
        config = LearnerConfig(
            properties=tuple(state.properties),
            support_threshold=state.support_threshold,
            segmenter=state.index.segmenter,
            strict_threshold=state.strict_threshold,
        )
        learner = cls(config, ontology)
        learner._index = state.index
        learner._seen = {
            SameAsLink(external=external, local=local)
            for external, local in state.seen
        }
        return learner

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def _min_count(self) -> int:
        import math

        threshold = self.config.support_threshold * self._index.rows
        if self.config.strict_threshold:
            return int(math.floor(threshold)) + 1
        return max(1, int(math.ceil(threshold)))

    def rules(self) -> RuleSet:
        """The current rule set under the configured threshold."""
        index = self._index
        if index.rows == 0:
            return RuleSet()
        min_count = self._min_count()
        pair_counts = index.frequent_pairs(min_count)
        class_counts = index.frequent_classes(min_count)
        conjunction_counts = index.conjunction_counts(
            pair_counts.keys(), set(class_counts.keys())
        )
        rules: List[ClassificationRule] = []
        for (prop, segment, cls), both in conjunction_counts.items():
            if both < min_count:
                continue
            counts = ContingencyCounts(
                both=both,
                premise=pair_counts[(prop, segment)],
                conclusion=class_counts[cls],
                total=index.rows,
            )
            rules.append(
                ClassificationRule(
                    property=prop,
                    segment=segment,
                    conclusion=cls,
                    measures=RuleQualityMeasures.from_counts(counts),
                    counts=counts,
                )
            )
        return RuleSet(rules)

    def statistics(self) -> LearningStatistics:
        """Index snapshot in the batch learner's statistics shape."""
        index = self._index
        min_count = self._min_count() if index.rows else 1
        pair_counts = index.frequent_pairs(min_count)
        selected_segments = {segment for _, segment in pair_counts}
        return LearningStatistics(
            total_links=index.rows,
            distinct_segments=index.distinct_segments(),
            segment_occurrences=index.segment_occurrences(),
            selected_segment_occurrences=index.selected_occurrences(selected_segments),
            frequent_pairs=len(pair_counts),
            frequent_classes=len(index.frequent_classes(min_count)),
            rule_count=len(self.rules()),
        )
