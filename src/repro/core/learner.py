"""Algorithm 1: learning value-based classification rules from ``TS``.

The algorithm (paper §4.3) "is based on the idea of finding frequent
subsegments in frequent property instances of the data source S_E
appearing in TS". Three frequency passes, all thresholded by the support
threshold ``th`` (a fraction of ``|TS|``):

1. for every selected property ``p`` and every segment ``a`` of its
   values, keep ``p(X,Y) ∧ subsegment(Y,a)`` with frequency > th;
2. keep every most-specific class ``c`` with frequency > th;
3. keep every conjunction ``p(X,Y) ∧ subsegment(Y,a) ∧ c(X)`` with
   frequency > th, and emit it as the rule ``p ∧ a ⇒ c`` with its
   support, confidence and lift.

Frequencies count *training links* (not value occurrences): a segment
appearing twice in one part-number still counts once for that link,
matching the set semantics of ``{X | p(X,Y) ∧ subsegment(Y,a)}``.

The passes run against a shared
:class:`~repro.index.TrainingFeatureIndex`: pass 1 and 2 read posting
lengths, pass 3 is the posting intersection
``freq(p ∧ a ∧ c) = |post(p, a) ∩ post(c)|``. :meth:`RuleLearner.learn`
builds the index when none is supplied; callers relearning under
several thresholds (sweeps, benchmarks) build it once via
:meth:`RuleLearner.build_index` and amortize pass 0 away.
:meth:`RuleLearner.learn_scan` keeps the original Counter-based passes
as the reference oracle — the equivalence tests assert both paths emit
byte-identical rule sets and statistics.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Sequence, Tuple

from repro.core.measures import ContingencyCounts, RuleQualityMeasures
from repro.core.rules import ClassificationRule, RuleSet
from repro.core.training import TrainingExample, TrainingSet
from repro.index import TrainingFeatureIndex
from repro.rdf.terms import IRI
from repro.text.segmentation import SegmentFunction, SeparatorSegmenter


class LearnerError(ValueError):
    """Raised on invalid learner configuration."""


@dataclass(frozen=True)
class LearnerConfig:
    """Configuration of :class:`RuleLearner`.

    * ``properties`` — the expert-selected ``P`` (``None`` = all
      data-type properties of linked external items, "all if no
      selection");
    * ``support_threshold`` — the paper's ``th`` as a fraction of
      ``|TS|`` (0.002 in the Thales experiment);
    * ``segmenter`` — how values split into segments (expert-specified;
      default = the paper's non-alphanumeric separator splitting);
    * ``strict_threshold`` — the paper requires frequency strictly
      greater than ``th``; set False for >= semantics in ablations.
    """

    properties: Tuple[IRI, ...] | None = None
    support_threshold: float = 0.002
    segmenter: SegmentFunction = field(default_factory=SeparatorSegmenter)
    strict_threshold: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.support_threshold < 1.0:
            raise LearnerError(
                f"support threshold must be in [0, 1), got {self.support_threshold}"
            )


@dataclass(frozen=True, slots=True)
class LearningStatistics:
    """What the learner saw and kept — the paper's in-text §5 numbers.

    * ``total_links`` — ``|TS|``;
    * ``distinct_segments`` / ``segment_occurrences`` — corpus counts
      before thresholding (Thales: 7842 / 26077);
    * ``selected_segment_occurrences`` — occurrences belonging to
      (property, segment) pairs that passed the threshold (Thales: 7058);
    * ``frequent_pairs`` — surviving (property, segment) pairs;
    * ``frequent_classes`` — surviving classes (Thales: 68);
    * ``rule_count`` — emitted rules (Thales: 144).
    """

    total_links: int
    distinct_segments: int
    segment_occurrences: int
    selected_segment_occurrences: int
    frequent_pairs: int
    frequent_classes: int
    rule_count: int


class RuleLearner:
    """Learns a :class:`RuleSet` from a :class:`TrainingSet`.

    >>> learner = RuleLearner(LearnerConfig(support_threshold=0.002))
    >>> rules = learner.learn(training_set)
    >>> learner.statistics.rule_count
    144
    """

    def __init__(self, config: LearnerConfig | None = None) -> None:
        self.config = config or LearnerConfig()
        self._statistics: LearningStatistics | None = None

    @property
    def statistics(self) -> LearningStatistics:
        """Statistics of the last :meth:`learn` call."""
        if self._statistics is None:
            raise LearnerError("learn() has not been called yet")
        return self._statistics

    # ------------------------------------------------------------------
    # Algorithm 1 — index-backed passes
    # ------------------------------------------------------------------
    def build_index(self, training_set: TrainingSet) -> TrainingFeatureIndex:
        """Pass 0 as a reusable artifact: segment, intern, index.

        The returned index can be handed to :meth:`learn` any number of
        times (e.g. across a support-threshold sweep); only the cheap
        posting probes rerun.
        """
        config = self.config
        examples = training_set.examples(
            list(config.properties) if config.properties is not None else None
        )
        return TrainingFeatureIndex.from_examples(examples, config.segmenter)

    def learn(
        self,
        training_set: TrainingSet,
        index: TrainingFeatureIndex | None = None,
    ) -> RuleSet:
        """Run Algorithm 1 over *training_set* and return the rules.

        With *index* given (from :meth:`build_index`), pass 0 is skipped
        and the three frequency passes run as posting-list probes.
        """
        if index is None:
            index = self.build_index(training_set)
        total = index.rows
        min_count = self._min_count(total)

        # Pass 1: frequent (property, segment) pairs = long-enough postings.
        pair_counts = index.frequent_pairs(min_count)

        # Pass 2: frequent most-specific classes.
        class_counts = index.frequent_classes(min_count)

        # Pass 3: conjunction frequencies |post(p,a) ∩ post(c)| -> rules.
        conjunction_counts = index.conjunction_counts(
            pair_counts.keys(), set(class_counts.keys())
        )
        rules: List[ClassificationRule] = []
        for (prop, segment, cls), both in conjunction_counts.items():
            if both < min_count:
                continue
            counts = ContingencyCounts(
                both=both,
                premise=pair_counts[(prop, segment)],
                conclusion=class_counts[cls],
                total=total,
            )
            rules.append(
                ClassificationRule(
                    property=prop,
                    segment=segment,
                    conclusion=cls,
                    measures=RuleQualityMeasures.from_counts(counts),
                    counts=counts,
                )
            )

        selected_segments = {segment for _, segment in pair_counts}
        self._statistics = LearningStatistics(
            total_links=total,
            distinct_segments=index.distinct_segments(),
            segment_occurrences=index.segment_occurrences(),
            selected_segment_occurrences=index.selected_occurrences(selected_segments),
            frequent_pairs=len(pair_counts),
            frequent_classes=len(class_counts),
            rule_count=len(rules),
        )
        return RuleSet(rules)

    # ------------------------------------------------------------------
    # Algorithm 1 — original scan passes (reference oracle)
    # ------------------------------------------------------------------
    def learn_scan(self, training_set: TrainingSet) -> RuleSet:
        """The original Counter-based passes, kept as the reference.

        The index tests assert :meth:`learn` reproduces this output
        byte-for-byte; everything else should call :meth:`learn`.
        """
        config = self.config
        examples = training_set.examples(
            list(config.properties) if config.properties is not None else None
        )
        total = len(examples)
        min_count = self._min_count(total)

        # Pass 0: segment every value once; remember per-example segment
        # sets (set semantics per link) and corpus occurrence counts.
        segmented: List[Dict[IRI, FrozenSet[str]]] = []
        occurrence_counter: Counter[str] = Counter()
        for example in examples:
            per_property: Dict[IRI, set[str]] = {}
            for prop, values in example.property_values.items():
                segments: set[str] = set()
                for value in values:
                    pieces = config.segmenter(value)
                    occurrence_counter.update(pieces)
                    segments.update(pieces)
                if segments:
                    per_property[prop] = segments
            segmented.append(
                {prop: frozenset(segs) for prop, segs in per_property.items()}
            )

        # Pass 1: frequent (property, segment) pairs.
        pair_counts: Counter[Tuple[IRI, str]] = Counter()
        for per_property in segmented:
            for prop, segments in per_property.items():
                for segment in segments:
                    pair_counts[(prop, segment)] += 1
        frequent_pairs = {
            pair for pair, count in pair_counts.items() if count >= min_count
        }

        # Pass 2: frequent most-specific classes.
        class_counts: Counter[IRI] = Counter()
        for example in examples:
            for cls in example.classes:
                class_counts[cls] += 1
        frequent_classes = {
            cls for cls, count in class_counts.items() if count >= min_count
        }

        # Pass 3: frequent conjunctions -> rules with measures.
        conjunction_counts: Counter[Tuple[IRI, str, IRI]] = Counter()
        for example, per_property in zip(examples, segmented):
            if not example.classes:
                continue
            for prop, segments in per_property.items():
                for segment in segments:
                    if (prop, segment) not in frequent_pairs:
                        continue
                    for cls in example.classes:
                        if cls in frequent_classes:
                            conjunction_counts[(prop, segment, cls)] += 1

        rules: List[ClassificationRule] = []
        for (prop, segment, cls), both in conjunction_counts.items():
            if both < min_count:
                continue
            counts = ContingencyCounts(
                both=both,
                premise=pair_counts[(prop, segment)],
                conclusion=class_counts[cls],
                total=total,
            )
            rules.append(
                ClassificationRule(
                    property=prop,
                    segment=segment,
                    conclusion=cls,
                    measures=RuleQualityMeasures.from_counts(counts),
                    counts=counts,
                )
            )

        selected_segments = {segment for _, segment in frequent_pairs}
        selected_occurrences = sum(
            occurrence_counter[segment] for segment in selected_segments
        )
        self._statistics = LearningStatistics(
            total_links=total,
            distinct_segments=len(occurrence_counter),
            segment_occurrences=sum(occurrence_counter.values()),
            selected_segment_occurrences=selected_occurrences,
            frequent_pairs=len(frequent_pairs),
            frequent_classes=len(frequent_classes),
            rule_count=len(rules),
        )
        return RuleSet(rules)

    def _min_count(self, total: int) -> int:
        """Translate the fractional ``th`` into a link-count threshold.

        Strict semantics: frequency > th, i.e. count/total > th, i.e.
        count >= floor(th * total) + 1. With the paper's numbers
        (th=0.002, |TS|=10265) this gives count >= 21 — matching "68
        selected classes have more than 20 instances".
        """
        import math

        threshold = self.config.support_threshold * total
        if self.config.strict_threshold:
            return int(math.floor(threshold)) + 1
        return max(1, int(math.ceil(threshold)))
