"""Conjunctive rules: premises with several subsegments.

Algorithm 1 mines single-segment premises. Its natural Apriori-style
extension joins frequent segments into two-segment premises::

    p(X,Y) ∧ subsegment(Y,a1) ∧ subsegment(Y,a2) ⇒ c(X)

A part-number segment like "100" is worthless alone but, together with
"ohm", pins the class down. The learner below:

1. reuses Algorithm 1's frequent (property, segment) pass;
2. Apriori-joins segment pairs that co-occur in enough linked values;
3. emits a conjunctive rule only when it *improves* on its best
   component rule (a CBA-style pruning: a conjunction that is no more
   confident than its parts only narrows coverage for nothing).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from itertools import combinations
from typing import Callable, Dict, FrozenSet, List, Tuple

from repro.core.learner import LearnerConfig
from repro.core.measures import ContingencyCounts, RuleQualityMeasures
from repro.core.training import TrainingSet
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Term
from repro.text.segmentation import SegmentFunction


@dataclass(frozen=True, slots=True)
class ConjunctiveRule:
    """A rule whose premise requires every segment in ``segments``."""

    property: IRI
    segments: FrozenSet[str]
    conclusion: IRI
    measures: RuleQualityMeasures
    counts: ContingencyCounts

    @property
    def confidence(self) -> float:
        """Confidence over TS."""
        return self.measures.confidence

    @property
    def lift(self) -> float:
        """Lift over TS."""
        return self.measures.lift

    @property
    def support(self) -> float:
        """Support over TS."""
        return self.measures.support

    def applies_to(
        self, item: Term, graph: Graph, segmenter: SegmentFunction
    ) -> bool:
        """All premise segments must occur in one value of the property."""
        for value in graph.literal_values(item, self.property):
            if self.segments <= set(segmenter(value)):
                return True
        return False

    def __str__(self) -> str:
        premise = " ∧ ".join(
            f"subsegment(Y,'{segment}')" for segment in sorted(self.segments)
        )
        return (
            f"{self.property.local_name}(X,Y) ∧ {premise} "
            f"⇒ {self.conclusion.local_name}(X)  [{self.measures}]"
        )


class ConjunctiveRuleLearner:
    """Mines two-segment conjunctive rules on top of Algorithm 1's passes.

    ``min_confidence_gain``: a conjunction must beat the best confidence
    of its single-segment component rules by at least this much.
    """

    def __init__(
        self,
        config: LearnerConfig | None = None,
        min_confidence_gain: float = 0.05,
    ) -> None:
        self.config = config or LearnerConfig()
        self.min_confidence_gain = min_confidence_gain

    def learn(self, training_set: TrainingSet) -> List[ConjunctiveRule]:
        """Return the improving two-segment rules, best first."""
        config = self.config
        examples = training_set.examples(
            list(config.properties) if config.properties is not None else None
        )
        total = len(examples)
        min_count = self._min_count(total)

        # per-link segment sets per property (set semantics, as in Alg. 1),
        # kept per *value* so conjunctions require co-occurrence in one value
        per_link: List[Dict[IRI, List[FrozenSet[str]]]] = []
        pair_counts: Counter[Tuple[IRI, str]] = Counter()
        class_counts: Counter[IRI] = Counter()
        for example in examples:
            row: Dict[IRI, List[FrozenSet[str]]] = {}
            for prop, values in example.property_values.items():
                value_sets = [frozenset(config.segmenter(v)) for v in values]
                value_sets = [s for s in value_sets if s]
                if value_sets:
                    row[prop] = value_sets
                    for segment in frozenset().union(*value_sets):
                        pair_counts[(prop, segment)] += 1
            per_link.append(row)
            for cls in example.classes:
                class_counts[cls] += 1

        frequent_single = {
            pair for pair, count in pair_counts.items() if count >= min_count
        }
        frequent_classes = {
            cls for cls, count in class_counts.items() if count >= min_count
        }

        # single-rule confidences, for the improvement check
        single_both: Counter[Tuple[IRI, str, IRI]] = Counter()
        duo_premise: Counter[Tuple[IRI, str, str]] = Counter()
        duo_both: Counter[Tuple[IRI, str, str, IRI]] = Counter()
        for example, row in zip(examples, per_link):
            classes = example.classes & frequent_classes
            for prop, value_sets in row.items():
                all_segments = frozenset().union(*value_sets)
                kept = [
                    s for s in all_segments if (prop, s) in frequent_single
                ]
                for segment in kept:
                    for cls in classes:
                        single_both[(prop, segment, cls)] += 1
                # pairs must co-occur within one value
                seen_duos: set[Tuple[str, str]] = set()
                for value_set in value_sets:
                    in_value = sorted(
                        s for s in value_set if (prop, s) in frequent_single
                    )
                    for a, b in combinations(in_value, 2):
                        seen_duos.add((a, b))
                for a, b in seen_duos:
                    duo_premise[(prop, a, b)] += 1
                    for cls in classes:
                        duo_both[(prop, a, b, cls)] += 1

        rules: List[ConjunctiveRule] = []
        for (prop, a, b, cls), both in duo_both.items():
            if both < min_count:
                continue
            premise = duo_premise[(prop, a, b)]
            single_conf = max(
                single_both[(prop, a, cls)] / pair_counts[(prop, a)],
                single_both[(prop, b, cls)] / pair_counts[(prop, b)],
            )
            confidence = both / premise
            if confidence < single_conf + self.min_confidence_gain:
                continue
            counts = ContingencyCounts(
                both=both,
                premise=premise,
                conclusion=class_counts[cls],
                total=total,
            )
            rules.append(
                ConjunctiveRule(
                    property=prop,
                    segments=frozenset((a, b)),
                    conclusion=cls,
                    measures=RuleQualityMeasures.from_counts(counts),
                    counts=counts,
                )
            )
        rules.sort(
            key=lambda r: (
                -r.confidence,
                -r.lift,
                r.property.value,
                tuple(sorted(r.segments)),
                r.conclusion.value,
            )
        )
        return rules

    def _min_count(self, total: int) -> int:
        import math

        threshold = self.config.support_threshold * total
        if self.config.strict_threshold:
            return int(math.floor(threshold)) + 1
        return max(1, int(math.ceil(threshold)))
