"""Rule quality measures: support, confidence, lift — and friends.

Paper §4.2 defines three measures over the training set ``TS`` for a rule
``R : p(X,Y) ∧ subsegment(Y,a) ⇒ c(X)``::

    support(R)    = |{X | premise(X) ∧ c(X)}| / |TS|
    confidence(R) = |{X | premise(X) ∧ c(X)}| / |{X | premise(X)}|
    lift(R)       = confidence(R) / (|{X | c(X)}| / |TS|)

(The paper's printed confidence numerator, ``|{X | c(X)}|``, is a typo —
the prose defines "the proportion of data that are instances of the class
... among the data that satisfies the premise", which is the standard
conditional form implemented here.)

The paper cites Guillet & Hamilton's measure catalogue, naming
``specificity`` and ``coverage`` as further options; those plus
``leverage`` and ``conviction`` are provided for the ablation benches.

All measures derive from one :class:`ContingencyCounts` 2x2 table, so a
single counting pass yields every measure consistently.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


class MeasureError(ValueError):
    """Raised for impossible contingency counts."""


@dataclass(frozen=True, slots=True)
class ContingencyCounts:
    """The 2x2 premise/conclusion contingency table over ``TS``.

    ``both`` counts examples satisfying premise *and* conclusion,
    ``premise`` all examples satisfying the premise, ``conclusion`` all
    examples in the class, ``total`` is ``|TS|``.
    """

    both: int
    premise: int
    conclusion: int
    total: int

    def __post_init__(self) -> None:
        if self.total <= 0:
            raise MeasureError("|TS| must be positive")
        if not 0 <= self.both <= min(self.premise, self.conclusion):
            raise MeasureError(
                f"impossible counts: both={self.both}, premise={self.premise}, "
                f"conclusion={self.conclusion}"
            )
        if self.premise > self.total or self.conclusion > self.total:
            raise MeasureError("premise/conclusion counts exceed |TS|")


@dataclass(frozen=True, slots=True)
class RuleQualityMeasures:
    """All quality measures of one classification rule.

    Use :meth:`from_counts` — the direct constructor exists only for
    tests and deserialization.
    """

    support: float
    confidence: float
    lift: float
    coverage: float
    specificity: float
    leverage: float
    conviction: float

    @classmethod
    def from_counts(cls, counts: ContingencyCounts) -> "RuleQualityMeasures":
        """Derive every measure from one contingency table."""
        n = counts.total
        p_premise = counts.premise / n
        p_class = counts.conclusion / n
        support = counts.both / n

        if counts.premise == 0:
            # a rule is never built for an empty premise, but the measures
            # must stay total functions for sweep code paths
            confidence = 0.0
        else:
            confidence = counts.both / counts.premise

        if p_class == 0.0:
            lift = 0.0
        else:
            lift = confidence / p_class

        coverage = p_premise

        negatives = n - counts.conclusion
        if negatives == 0:
            specificity = 1.0
        else:
            true_negatives = n - counts.premise - counts.conclusion + counts.both
            specificity = true_negatives / negatives

        leverage = support - p_premise * p_class

        if confidence >= 1.0:
            conviction = math.inf
        else:
            conviction = (1.0 - p_class) / (1.0 - confidence)

        return cls(
            support=support,
            confidence=confidence,
            lift=lift,
            coverage=coverage,
            specificity=specificity,
            leverage=leverage,
            conviction=conviction,
        )

    def as_dict(self) -> dict[str, float]:
        """All measures as a plain dict (for reports and JSON dumps)."""
        return {
            "support": self.support,
            "confidence": self.confidence,
            "lift": self.lift,
            "coverage": self.coverage,
            "specificity": self.specificity,
            "leverage": self.leverage,
            "conviction": self.conviction,
        }

    def __str__(self) -> str:
        return (
            f"supp={self.support:.4f} conf={self.confidence:.3f} "
            f"lift={self.lift:.1f}"
        )
