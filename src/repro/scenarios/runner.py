"""Run scenarios: batch leg, streaming leg, identity check, envelope.

:func:`run_scenario` executes one registered scenario twice —

1. **batch**: one :class:`~repro.engine.LinkingJob` over the whole
   external store;
2. **streaming**: a :class:`~repro.engine.StreamingLinkingJob` fed the
   same records in ``spec.deltas`` contiguous deltas; rule-driven
   scenarios additionally stream the training set in
   ``spec.link_batches`` batches through an
   :class:`~repro.core.incremental.IncrementalRuleLearner` before the
   record deltas arrive

— and then asserts the two produced **byte-identical** outcomes: the
same match decisions (vectors, scores, statuses) in the same order, the
same possible-band, the same candidate pairs. The report carries the
quality metrics, the envelope verdict and content digests stable enough
to pin in golden snapshot files.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.incremental import IncrementalRuleLearner
from repro.core.serialize import rules_to_json
from repro.engine import JobConfig, LinkingJob, StreamingLinkingJob
from repro.linking.matchers import MatchDecision
from repro.linking.pipeline import LinkingResult
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import BuiltScenario, ScenarioSpec

#: Engine configuration of scenario runs: serial keeps tiny workloads
#: fast (no pool bring-up) and the outcome is executor-independent
#: anyway — the engine's own tests pin that.
DEFAULT_SCENARIO_CONFIG = JobConfig(executor="serial", chunk_size=256)


def _split(items: Sequence, parts: int) -> List[List]:
    """Split *items* into *parts* contiguous chunks (last may be short)."""
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    size = max(1, -(-len(items) // parts))
    return [list(items[i:i + size]) for i in range(0, len(items), size)]


def _match_digest(matches: Sequence[MatchDecision]) -> str:
    """Content digest of a match list: ids, status and score, in order."""
    hasher = hashlib.sha256()
    for decision in matches:
        line = (
            f"{decision.vector.left.id.n3()}\t{decision.vector.right.id.n3()}\t"
            f"{decision.status.value}\t{decision.score:.12f}\n"
        )
        hasher.update(line.encode("utf-8"))
    return f"sha256:{hasher.hexdigest()}"


def _rules_digest(built: BuiltScenario) -> Optional[str]:
    if built.rules is None:
        return None
    digest = hashlib.sha256(rules_to_json(built.rules).encode("utf-8")).hexdigest()
    return f"sha256:{digest}"


@dataclass(frozen=True, slots=True)
class ScenarioReport:
    """One scenario run: workload shape, quality, identity, envelope."""

    name: str
    domain: str
    tags: Tuple[str, ...]
    external_records: int
    local_records: int
    truth_links: int
    rules: int
    compared: int
    naive_pairs: int
    matches: int
    possible: int
    precision: float
    recall: float
    f1: float
    pairs_completeness: float
    reduction_ratio: float
    match_digest: str
    rules_digest: Optional[str]
    streaming_deltas: int
    streaming_identical: bool
    envelope_violations: Tuple[str, ...]
    batch_seconds: float
    streaming_seconds: float

    @property
    def ok(self) -> bool:
        """Inside the envelope and streaming matched batch exactly."""
        return self.streaming_identical and not self.envelope_violations

    def snapshot(self) -> Dict[str, object]:
        """The golden-snapshot payload: everything deterministic.

        Timings are excluded; floats are rounded so the JSON is stable
        to re-serialization.
        """
        return {
            "scenario": self.name,
            "domain": self.domain,
            "tags": list(self.tags),
            "external_records": self.external_records,
            "local_records": self.local_records,
            "truth_links": self.truth_links,
            "rules": self.rules,
            "compared": self.compared,
            "naive_pairs": self.naive_pairs,
            "matches": self.matches,
            "possible": self.possible,
            "precision": round(self.precision, 6),
            "recall": round(self.recall, 6),
            "f1": round(self.f1, 6),
            "pairs_completeness": round(self.pairs_completeness, 6),
            "reduction_ratio": round(self.reduction_ratio, 6),
            "match_digest": self.match_digest,
            "rules_digest": self.rules_digest,
            "streaming_deltas": self.streaming_deltas,
            "streaming_identical": self.streaming_identical,
        }

    def snapshot_json(self) -> str:
        """The snapshot as canonical JSON text."""
        return json.dumps(self.snapshot(), indent=2, sort_keys=True) + "\n"

    def format(self) -> str:
        """One report line for CLI / bench tables."""
        status = "ok" if self.ok else "FAIL"
        line = (
            f"{self.name:<28} {status:<5} "
            f"P={self.precision:.3f} R={self.recall:.3f} F1={self.f1:.3f} "
            f"PC={self.pairs_completeness:.3f} RR={self.reduction_ratio:.3f} "
            f"pairs={self.compared:<7} matches={self.matches:<5} "
            f"stream={'=' if self.streaming_identical else 'DIVERGED'}"
        )
        if self.envelope_violations:
            line += "  [" + "; ".join(self.envelope_violations) + "]"
        return line


def _identical(batch: LinkingResult, stream: LinkingResult) -> bool:
    """Byte-identity of the two legs' complete outcomes."""
    return (
        batch.matches == stream.matches
        and batch.possible == stream.possible
        and batch.candidate_pairs == stream.candidate_pairs
        and batch.compared == stream.compared
    )


def _run_streaming(
    spec: ScenarioSpec, built: BuiltScenario, config: JobConfig
) -> Tuple[LinkingResult, int]:
    """The streaming leg: link deltas (and, when rule-driven, train first).

    Returns the result plus the number of record deltas actually
    ingested (``_split`` can produce fewer chunks than ``spec.deltas``
    when the sizes don't divide evenly)."""
    if built.incremental:
        assert built.learner_config and built.training_set and built.ontology
        job = StreamingLinkingJob(
            built.local,
            built.comparator,
            built.matcher,
            config,
            blocking_factory=built.blocking_factory,
            learner=IncrementalRuleLearner(built.learner_config, built.ontology),
        )
        for batch in _split(built.training_set.links, spec.link_batches):
            job.ingest_links(batch, built.training_set.external_graph)
    else:
        job = StreamingLinkingJob(
            built.local,
            built.comparator,
            built.matcher,
            config,
            blocking=built.make_blocking(),
        )
    for delta in _split(list(built.external), spec.deltas):
        job.ingest(delta)
    return job.result(), len(job.deltas)


def run_scenario(
    scenario: Union[str, ScenarioSpec],
    job_config: JobConfig | None = None,
    streaming: bool = True,
) -> ScenarioReport:
    """Build and execute one scenario; return its report.

    ``streaming=False`` skips the streaming leg (``streaming_identical``
    then reports True vacuously with 0 deltas) — useful for quick metric
    checks; snapshots and CI always run both legs.
    """
    spec = scenario if isinstance(scenario, ScenarioSpec) else get_scenario(scenario)
    config = job_config or DEFAULT_SCENARIO_CONFIG
    built = spec.build()

    started = time.perf_counter()
    batch_job = LinkingJob(
        built.make_blocking(), built.comparator, built.matcher, config
    )
    batch = batch_job.run(built.external, built.local)
    batch_seconds = time.perf_counter() - started

    streaming_seconds = 0.0
    identical = True
    deltas = 0
    if streaming:
        started = time.perf_counter()
        stream, deltas = _run_streaming(spec, built, config)
        streaming_seconds = time.perf_counter() - started
        identical = _identical(batch, stream)

    matching = batch.matching_quality(built.truth)
    blocking = batch.blocking_quality(built.truth)
    rule_count = len(built.rules) if built.rules is not None else 0
    violations = spec.envelope.violations(
        precision=matching.precision,
        recall=matching.recall,
        pairs_completeness=blocking.pairs_completeness,
        reduction_ratio=blocking.reduction_ratio,
        rules=rule_count,
    )
    return ScenarioReport(
        name=spec.name,
        domain=spec.domain,
        tags=spec.tags,
        external_records=len(built.external),
        local_records=len(built.local),
        truth_links=len(built.truth),
        rules=rule_count,
        compared=batch.compared,
        naive_pairs=batch.naive_pairs,
        matches=len(batch.matches),
        possible=len(batch.possible),
        precision=matching.precision,
        recall=matching.recall,
        f1=matching.f1,
        pairs_completeness=blocking.pairs_completeness,
        reduction_ratio=blocking.reduction_ratio,
        match_digest=_match_digest(batch.matches),
        rules_digest=_rules_digest(built),
        streaming_deltas=deltas,
        streaming_identical=identical,
        envelope_violations=tuple(violations),
        batch_seconds=batch_seconds,
        streaming_seconds=streaming_seconds,
    )


def run_all(
    names: Sequence[str] | None = None,
    job_config: JobConfig | None = None,
    streaming: bool = True,
) -> List[ScenarioReport]:
    """Run every (or the named) registered scenarios, in matrix order."""
    from repro.scenarios.registry import scenario_names

    selected = list(names) if names else scenario_names()
    return [
        run_scenario(name, job_config=job_config, streaming=streaming)
        for name in selected
    ]
