"""The registered scenario matrix.

Ten seeded workloads spanning the axes the north-star asks for:

========================  =============================================
axis                      scenarios
========================  =============================================
size tier                 ``size:tiny`` vs ``size:small``
corruption profile        ``corruption:none`` / ``:default`` / ``:harsh``
schema heterogeneity      single field, multi-field with missing values
multi-valued properties   local items with alias part numbers
class-hierarchy depth     ``hierarchy:deep`` vs ``hierarchy:flat``
blocking family           prefix, q-gram, learned classification rules
second domain             toponyms (token segments over ``rdfs:label``)
========================  =============================================

Every scenario is deterministic per seed: generation, learning, blocking
and matching all produce byte-identical outputs across processes (hash
randomization is kept out of every emission order), which is what lets
the golden snapshots under ``tests/scenarios/snapshots/`` pin exact
metrics and match digests.

Envelope values are measured on the pinned seeds and set a few points
below the measurement — see ``docs/testing.md`` for the regeneration
workflow when a deliberate behavior change moves the numbers.
"""

from __future__ import annotations

import random
from typing import Callable, List, Tuple

from repro.core.classifier import RuleClassifier
from repro.core.learner import LearnerConfig, RuleLearner
from repro.core.rules import RuleSet
from repro.datagen.catalog import (
    MANUFACTURER,
    PART_NUMBER,
    ElectronicCatalogGenerator,
    GeneratedCatalog,
)
from repro.datagen.config import CatalogConfig
from repro.datagen.corruption import CorruptionConfig, Corruptor
from repro.datagen.toponyms import ToponymConfig, generate_gazetteer
from repro.experiments.throughput import provider_batch
from repro.linking.blocking import QGramBlocking, RuleBasedBlocking, StandardBlocking
from repro.linking.comparators import FieldComparator, RecordComparator
from repro.linking.matchers import ThresholdMatcher
from repro.linking.records import RecordStore
from repro.rdf.graph import Graph
from repro.rdf.namespace import RDFS
from repro.rdf.terms import Literal, Term
from repro.rdf.triples import Triple
from repro.scenarios.registry import register
from repro.scenarios.spec import BuiltScenario, MetricsEnvelope, ScenarioSpec

Pair = Tuple[Term, Term]

#: Zero-noise corruption profile: the provider copies part numbers verbatim.
CLEAN = CorruptionConfig(
    p_separator_swap=0.0,
    p_case_change=0.0,
    p_typo=0.0,
    p_drop_segment=0.0,
    p_suffix=0.0,
)

#: Aggressive corruption profile: heavy reformatting, typos and noise.
HARSH = CorruptionConfig(
    p_separator_swap=0.6,
    p_case_change=0.5,
    p_typo=0.25,
    p_drop_segment=0.15,
    p_suffix=0.35,
)


def _electronics_batch(
    config: CatalogConfig,
    corruption: CorruptionConfig | None,
    test_items: int,
    batch_seed: int,
) -> Tuple[GeneratedCatalog, Graph, List[Pair]]:
    """Generate a catalog plus an out-of-sample provider batch."""
    catalog = ElectronicCatalogGenerator(config, corruption).generate()
    corruptor = Corruptor(corruption) if corruption is not None else None
    graph, truth = provider_batch(
        catalog, test_items, seed=batch_seed, corruptor=corruptor
    )
    return catalog, graph, truth


def _pn_scenario(
    config: CatalogConfig,
    corruption: CorruptionConfig | None = None,
    test_items: int = 120,
    batch_seed: int = 911,
    match_threshold: float = 0.9,
    make_blocking: Callable[[], object] | None = None,
) -> BuiltScenario:
    """A part-number-only linking workload over a generated catalog."""
    catalog, graph, truth = _electronics_batch(
        config, corruption, test_items, batch_seed
    )
    external = RecordStore.from_graph(graph, {"pn": PART_NUMBER})
    local = RecordStore.from_graph(catalog.local_graph, {"pn": PART_NUMBER})
    return BuiltScenario(
        external=external,
        local=local,
        external_graph=graph,
        truth=truth,
        comparator=RecordComparator([FieldComparator("pn")]),
        matcher=ThresholdMatcher(match_threshold=match_threshold),
        make_blocking=make_blocking
        or (lambda: StandardBlocking.on_field_prefix("pn", length=4)),
    )


# ----------------------------------------------------------------------
# size tiers
# ----------------------------------------------------------------------
def _build_tiny_prefix() -> BuiltScenario:
    return _pn_scenario(CatalogConfig.tiny(seed=7))


def _build_small_prefix() -> BuiltScenario:
    return _pn_scenario(CatalogConfig.small(seed=7), test_items=250)


# ----------------------------------------------------------------------
# corruption profiles
# ----------------------------------------------------------------------
def _build_clean_feed() -> BuiltScenario:
    return _pn_scenario(
        CatalogConfig.tiny(seed=11), corruption=CLEAN, match_threshold=0.95
    )


def _build_harsh_feed() -> BuiltScenario:
    return _pn_scenario(
        CatalogConfig.tiny(seed=13),
        corruption=HARSH,
        match_threshold=0.8,
        make_blocking=lambda: QGramBlocking("pn", q=2, threshold=0.8),
    )


# ----------------------------------------------------------------------
# schema heterogeneity and multi-valued properties
# ----------------------------------------------------------------------
def _build_multivalue_pn() -> BuiltScenario:
    """Local items carry alias part numbers (legacy separator style)."""
    config = CatalogConfig.tiny(seed=17)
    catalog, graph, truth = _electronics_batch(config, None, 120, 911)
    rng = random.Random(config.seed + 9000)
    for item in catalog.items:
        if rng.random() < 0.4:
            alias = item.part_number.replace("-", ".").replace("_", ".")
            if alias != item.part_number:
                catalog.local_graph.add(
                    Triple(item.iri, PART_NUMBER, Literal(alias))
                )
    external = RecordStore.from_graph(graph, {"pn": PART_NUMBER})
    local = RecordStore.from_graph(catalog.local_graph, {"pn": PART_NUMBER})
    return BuiltScenario(
        external=external,
        local=local,
        external_graph=graph,
        truth=truth,
        comparator=RecordComparator([FieldComparator("pn")]),
        matcher=ThresholdMatcher(match_threshold=0.9),
        make_blocking=lambda: StandardBlocking.on_field_prefix("pn", length=4),
    )


def _build_mixed_schema() -> BuiltScenario:
    """Two-field schema where 45% of provider records lack the maker."""
    config = CatalogConfig.tiny(seed=19)
    catalog, graph, truth = _electronics_batch(config, None, 120, 911)
    rng = random.Random(config.seed + 5000)
    # sorted: subjects(p=...) iterates a hash-ordered set, and the rng
    # must consume victims in the same order in every process
    for subject in sorted(graph.subjects(p=MANUFACTURER), key=str):
        if rng.random() < 0.45:
            graph.remove_matching(subject, MANUFACTURER, None)
    field_map = {"pn": PART_NUMBER, "maker": MANUFACTURER}
    external = RecordStore.from_graph(graph, field_map)
    local = RecordStore.from_graph(catalog.local_graph, field_map)
    comparator = RecordComparator(
        [
            FieldComparator("pn", weight=2.0),
            # absent maker = "no information", the linkage-survey 0.5
            FieldComparator("maker", weight=1.0, missing_value=0.5),
        ]
    )
    return BuiltScenario(
        external=external,
        local=local,
        external_graph=graph,
        truth=truth,
        comparator=comparator,
        # 0.8 keeps perfect-pn/missing-maker pairs ((2·1.0 + 0.5)/3 ≈ 0.83)
        # above the bar while two-field disagreements stay below it
        matcher=ThresholdMatcher(match_threshold=0.8),
        make_blocking=lambda: StandardBlocking.on_field_prefix("pn", length=4),
    )


# ----------------------------------------------------------------------
# class-hierarchy depth, rule-based blocking, incremental streaming
# ----------------------------------------------------------------------
def _rules_scenario(
    config: CatalogConfig,
    support_threshold: float,
    fallback_full: bool,
    test_items: int = 100,
    min_confidence: float = 0.4,
) -> BuiltScenario:
    """Rule-based blocking learned from TS; streaming leg re-learns
    incrementally from link deltas."""
    catalog, graph, truth = _electronics_batch(config, None, test_items, 911)
    training_set = catalog.to_training_set()
    learner_config = LearnerConfig(
        properties=(PART_NUMBER,), support_threshold=support_threshold
    )

    def blocking_factory(rules: RuleSet) -> RuleBasedBlocking:
        return RuleBasedBlocking(
            RuleClassifier(rules.with_min_confidence(min_confidence)),
            catalog.ontology,
            graph,
            fallback_full=fallback_full,
        )

    rules = RuleLearner(learner_config).learn(training_set)
    external = RecordStore.from_graph(graph, {"pn": PART_NUMBER})
    local = RecordStore.from_graph(catalog.local_graph, {"pn": PART_NUMBER})
    return BuiltScenario(
        external=external,
        local=local,
        external_graph=graph,
        truth=truth,
        comparator=RecordComparator([FieldComparator("pn")]),
        matcher=ThresholdMatcher(match_threshold=0.9),
        make_blocking=lambda: blocking_factory(rules),
        rules=rules,
        learner_config=learner_config,
        training_set=training_set,
        ontology=catalog.ontology,
        blocking_factory=blocking_factory,
    )


def _build_deep_rules() -> BuiltScenario:
    """Deep taxonomy: three times more internal classes than leaves."""
    config = CatalogConfig(
        n_classes=48,
        n_leaves=12,
        n_links=300,
        catalog_size=700,
        n_indicative_leaves=6,
        codes_per_class=(2, 5),
        n_unit_families=6,
        n_unitless_top=2,
        value_pool=60,
        serial_pool=250,
        seed=31,
    )
    return _rules_scenario(config, support_threshold=0.01, fallback_full=True)


def _build_flat_rules() -> BuiltScenario:
    """Flat taxonomy: every class but the root is a leaf."""
    config = CatalogConfig(
        n_classes=25,
        n_leaves=24,
        n_links=250,
        catalog_size=500,
        n_indicative_leaves=8,
        n_unit_families=8,
        n_unitless_top=2,
        value_pool=50,
        serial_pool=200,
        seed=33,
    )
    return _rules_scenario(config, support_threshold=0.004, fallback_full=False)


# ----------------------------------------------------------------------
# second domain: toponyms
# ----------------------------------------------------------------------
def _toponym_scenario(
    config: ToponymConfig,
    match_threshold: float,
    make_blocking: Callable[[], object],
) -> BuiltScenario:
    gazetteer = generate_gazetteer(config)
    external = RecordStore.from_graph(gazetteer.external_graph, {"label": RDFS.label})
    local = RecordStore.from_graph(gazetteer.local_graph, {"label": RDFS.label})
    truth = list(gazetteer.truth.items())
    return BuiltScenario(
        external=external,
        local=local,
        external_graph=gazetteer.external_graph,
        truth=truth,
        comparator=RecordComparator([FieldComparator("label")]),
        matcher=ThresholdMatcher(match_threshold=match_threshold),
        make_blocking=make_blocking,
    )


def _build_toponyms_standard() -> BuiltScenario:
    return _toponym_scenario(
        ToponymConfig(n_links=250, catalog_size=700, seed=7),
        match_threshold=0.85,
        make_blocking=lambda: StandardBlocking.on_field_prefix("label", length=4),
    )


def _build_toponyms_ambiguous() -> BuiltScenario:
    return _toponym_scenario(
        ToponymConfig(
            n_links=250,
            catalog_size=700,
            p_type_word=0.45,
            p_shared_word=0.6,
            class_zipf_s=1.2,
            seed=11,
        ),
        match_threshold=0.82,
        make_blocking=lambda: QGramBlocking("label", q=2, threshold=0.85),
    )


# ----------------------------------------------------------------------
# registration (order = matrix order, mirrored by snapshots and bench)
# ----------------------------------------------------------------------
SCENARIOS: Tuple[ScenarioSpec, ...] = (
    ScenarioSpec(
        name="electronics-tiny-prefix",
        description="tiny catalog, default corruption, prefix blocking",
        domain="electronics",
        tags=("size:tiny", "corruption:default", "blocking:prefix"),
        build=_build_tiny_prefix,
        envelope=MetricsEnvelope(min_precision=0.95, min_recall=0.87, min_pairs_completeness=0.92, min_reduction_ratio=0.97),
    ),
    ScenarioSpec(
        name="electronics-small-prefix",
        description="small catalog (2.5k items), default corruption, prefix blocking",
        domain="electronics",
        tags=("size:small", "corruption:default", "blocking:prefix"),
        build=_build_small_prefix,
        envelope=MetricsEnvelope(min_precision=0.92, min_recall=0.86, min_pairs_completeness=0.94, min_reduction_ratio=0.98),
        deltas=5,
    ),
    ScenarioSpec(
        name="electronics-clean-feed",
        description="zero-corruption provider feed: part numbers copied verbatim",
        domain="electronics",
        tags=("size:tiny", "corruption:none", "blocking:prefix"),
        build=_build_clean_feed,
        envelope=MetricsEnvelope(min_precision=0.90, min_recall=0.90, min_pairs_completeness=0.99, min_reduction_ratio=0.97),
    ),
    ScenarioSpec(
        name="electronics-harsh-feed",
        description="harsh corruption (typos, drops, suffixes), q-gram blocking",
        domain="electronics",
        tags=("size:tiny", "corruption:harsh", "blocking:qgram"),
        build=_build_harsh_feed,
        envelope=MetricsEnvelope(min_precision=0.92, min_recall=0.30, min_pairs_completeness=0.30, min_reduction_ratio=0.99),
    ),
    ScenarioSpec(
        name="electronics-multivalue-pn",
        description="40% of catalog items carry alias part numbers (multi-valued field)",
        domain="electronics",
        tags=("size:tiny", "schema:multi-valued", "blocking:prefix"),
        build=_build_multivalue_pn,
        envelope=MetricsEnvelope(min_precision=0.93, min_recall=0.82, min_pairs_completeness=0.90, min_reduction_ratio=0.97),
    ),
    ScenarioSpec(
        name="electronics-mixed-schema",
        description="two-field schema, 45% of provider records lack the maker field",
        domain="electronics",
        tags=("size:tiny", "schema:heterogeneous", "blocking:prefix"),
        build=_build_mixed_schema,
        envelope=MetricsEnvelope(min_precision=0.94, min_recall=0.75, min_pairs_completeness=0.93, min_reduction_ratio=0.97),
    ),
    ScenarioSpec(
        name="electronics-deep-rules",
        description="deep class hierarchy (36 internal / 12 leaves), "
        "rule-based blocking, incremental-learner streaming",
        domain="electronics",
        tags=(
            "size:tiny",
            "hierarchy:deep",
            "blocking:rules",
            "streaming:incremental-learner",
        ),
        build=_build_deep_rules,
        envelope=MetricsEnvelope(min_precision=0.93, min_recall=0.86, min_pairs_completeness=0.94, min_reduction_ratio=0.30, min_rules=20),
        deltas=3,
    ),
    ScenarioSpec(
        name="electronics-flat-rules",
        description="flat class hierarchy (1 internal / 24 leaves), "
        "rule-based blocking without fallback, incremental-learner streaming",
        domain="electronics",
        tags=(
            "size:tiny",
            "hierarchy:flat",
            "blocking:rules",
            "streaming:incremental-learner",
        ),
        build=_build_flat_rules,
        envelope=MetricsEnvelope(min_precision=0.95, min_recall=0.25, min_pairs_completeness=0.28, min_reduction_ratio=0.80, min_rules=70),
        deltas=3,
    ),
    ScenarioSpec(
        name="toponyms-standard",
        description="toponym gazetteer, label-prefix blocking (second domain)",
        domain="toponyms",
        tags=("size:tiny", "domain:toponyms", "blocking:prefix"),
        build=_build_toponyms_standard,
        envelope=MetricsEnvelope(min_precision=0.86, min_recall=0.82, min_pairs_completeness=0.88, min_reduction_ratio=0.96),
    ),
    ScenarioSpec(
        name="toponyms-ambiguous",
        description="toponyms with weak type words and heavy shared vocabulary",
        domain="toponyms",
        tags=("size:tiny", "domain:toponyms", "corruption:harsh", "blocking:qgram"),
        build=_build_toponyms_ambiguous,
        envelope=MetricsEnvelope(min_precision=0.80, min_recall=0.62, min_pairs_completeness=0.72, min_reduction_ratio=0.99),
    ),
)

for _spec in SCENARIOS:
    register(_spec)
