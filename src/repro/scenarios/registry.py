"""The scenario registry: named workloads, listable and runnable.

Scenarios register at import of :mod:`repro.scenarios.library` (the
package ``__init__`` does this), so ``scenario_names()`` is complete as
soon as ``repro.scenarios`` is imported. The registry is append-only
within a process; re-registering a name is an error — two workloads
answering to one name would make golden snapshots ambiguous.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.scenarios.spec import ScenarioSpec

_REGISTRY: Dict[str, ScenarioSpec] = {}


class UnknownScenarioError(KeyError):
    """Raised when a scenario name is not registered."""

    def __init__(self, name: str) -> None:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        super().__init__(f"unknown scenario {name!r}; registered: {known}")
        self.name = name


def register(spec: ScenarioSpec) -> ScenarioSpec:
    """Add *spec* to the registry; returns it (decorator-friendly)."""
    if spec.name in _REGISTRY:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """The registered spec for *name*."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownScenarioError(name) from None


def scenario_names() -> List[str]:
    """Registered names, in registration order (the matrix order)."""
    return list(_REGISTRY)


def all_scenarios() -> Iterator[ScenarioSpec]:
    """Iterate over registered specs in registration order."""
    yield from _REGISTRY.values()
