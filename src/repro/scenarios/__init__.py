"""``repro.scenarios`` — the scenario workload matrix.

A registry of named, seeded, end-to-end linking scenarios generated
from :mod:`repro.datagen`: size tiers × corruption profiles × schema
heterogeneity × class-hierarchy depth × multi-valued properties, plus
the toponym second domain. Each scenario yields source/target record
stores, ground-truth links and an expected-metrics envelope; the runner
executes it through both engine modes — one batch
:class:`~repro.engine.LinkingJob` and a delta-fed
:class:`~repro.engine.StreamingLinkingJob` — and asserts the outcomes
are byte-identical.

Consumers:

* ``tests/scenarios/`` — golden-snapshot regression layer
  (``--snapshot-update`` regenerates);
* ``benchmarks/bench_scenarios.py`` — batch-vs-streaming throughput
  with JSON-twin results;
* ``repro scenarios list|run`` — the CLI surface.

Importing this package populates the registry (the library module
registers its matrix at import time).
"""

from repro.scenarios.registry import (
    UnknownScenarioError,
    all_scenarios,
    get_scenario,
    register,
    scenario_names,
)
from repro.scenarios.spec import BuiltScenario, MetricsEnvelope, ScenarioSpec
from repro.scenarios.runner import (
    DEFAULT_SCENARIO_CONFIG,
    ScenarioReport,
    run_all,
    run_scenario,
)
from repro.scenarios import library as _library  # noqa: F401  (registers the matrix)

__all__ = [
    "BuiltScenario",
    "DEFAULT_SCENARIO_CONFIG",
    "MetricsEnvelope",
    "ScenarioReport",
    "ScenarioSpec",
    "UnknownScenarioError",
    "all_scenarios",
    "get_scenario",
    "register",
    "run_all",
    "run_scenario",
    "scenario_names",
]
