"""Scenario specifications: what a named workload is made of.

A *scenario* is a fully seeded, end-to-end linking workload: generated
source/target stores, ground truth, a linking configuration (blocking,
comparison, matching) and an **expected-metrics envelope** the run must
land inside. Scenarios are the unit of regression testing (golden
snapshots), benchmarking (``bench_scenarios``) and CLI exploration
(``repro scenarios run``).

The spec layer is deliberately thin: a :class:`ScenarioSpec` names and
describes the workload and knows how to :meth:`~ScenarioSpec.build` it;
the built artifacts live in :class:`BuiltScenario`; the envelope is a
:class:`MetricsEnvelope` of lower bounds. The library of concrete
scenarios lives in :mod:`repro.scenarios.library`, the execution logic
in :mod:`repro.scenarios.runner`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

from repro.core.learner import LearnerConfig
from repro.core.rules import RuleSet
from repro.core.training import TrainingSet
from repro.linking.blocking import BlockingMethod
from repro.linking.comparators import RecordComparator
from repro.linking.records import RecordStore
from repro.ontology.model import Ontology
from repro.rdf.graph import Graph
from repro.rdf.terms import Term

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.job import Decider

Pair = Tuple[Term, Term]


@dataclass(frozen=True, slots=True)
class MetricsEnvelope:
    """Lower bounds a scenario run must satisfy.

    Bounds are inclusive and default to 0 (no constraint). They are set
    a safety margin *below* the measured values of the pinned seeds, so
    they catch regressions — a rule change that tanks recall, a blocking
    change that stops covering true matches — without flaking on the
    honest noise of a reseeded generator.
    """

    min_precision: float = 0.0
    min_recall: float = 0.0
    min_pairs_completeness: float = 0.0
    min_reduction_ratio: float = 0.0
    min_rules: int = 0

    def violations(
        self,
        precision: float,
        recall: float,
        pairs_completeness: float,
        reduction_ratio: float,
        rules: int,
    ) -> List[str]:
        """Human-readable list of violated bounds (empty = inside)."""
        out: List[str] = []
        checks = (
            ("precision", precision, self.min_precision),
            ("recall", recall, self.min_recall),
            ("pairs_completeness", pairs_completeness, self.min_pairs_completeness),
            ("reduction_ratio", reduction_ratio, self.min_reduction_ratio),
            ("rules", float(rules), float(self.min_rules)),
        )
        for name, actual, bound in checks:
            if actual < bound:
                out.append(f"{name} {actual:.4f} < required {bound:.4f}")
        return out


@dataclass
class BuiltScenario:
    """Everything a scenario run needs, fully materialized.

    ``make_blocking`` returns a **fresh** blocking method per call —
    blocking objects carry per-run stats, and the batch and streaming
    legs of a run must not share one.

    Rule-driven scenarios additionally carry the training material for
    the streaming leg: ``learner_config`` + ``training_set`` feed an
    :class:`~repro.core.incremental.IncrementalRuleLearner` and
    ``blocking_factory`` re-materializes blocking from re-emitted rules.
    """

    external: RecordStore
    local: RecordStore
    external_graph: Graph
    truth: List[Pair]
    comparator: RecordComparator
    matcher: "Decider"
    make_blocking: Callable[[], BlockingMethod]
    rules: Optional[RuleSet] = None
    learner_config: Optional[LearnerConfig] = None
    training_set: Optional[TrainingSet] = None
    ontology: Optional[Ontology] = None
    blocking_factory: Optional[Callable[[RuleSet], BlockingMethod]] = None

    @property
    def incremental(self) -> bool:
        """Whether the streaming leg drives an incremental learner."""
        return (
            self.learner_config is not None
            and self.training_set is not None
            and self.blocking_factory is not None
            and self.ontology is not None
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """A named, seeded, reproducible linking workload.

    * ``name`` — registry key (kebab-case);
    * ``domain`` — ``electronics`` or ``toponyms``;
    * ``tags`` — the matrix axes the scenario exercises
      (``size:tiny``, ``corruption:harsh``, ``hierarchy:deep``, ...);
    * ``build`` — materializes the workload (seeded, deterministic);
    * ``envelope`` — expected-metrics lower bounds;
    * ``deltas`` — how many record deltas the streaming leg splits the
      external store into;
    * ``link_batches`` — how many training deltas feed the incremental
      learner (rule-driven scenarios).
    """

    name: str
    description: str
    domain: str
    tags: Tuple[str, ...]
    build: Callable[[], BuiltScenario]
    envelope: MetricsEnvelope = field(default_factory=MetricsEnvelope)
    deltas: int = 4
    link_batches: int = 3

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if self.deltas < 1:
            raise ValueError(f"deltas must be >= 1, got {self.deltas}")
        if self.link_batches < 1:
            raise ValueError(
                f"link_batches must be >= 1, got {self.link_batches}"
            )
