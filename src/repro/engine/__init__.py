"""The batch linking engine: the execution substrate for linking runs.

The paper's contribution makes the *candidate set* small; this package
makes *executing* a candidate set fast. A :class:`LinkingJob` takes the
same ingredients as :class:`~repro.linking.pipeline.LinkingPipeline`
(blocking method, record comparator, match decider) and executes them as
a streaming, chunked, optionally parallel batch job:

* candidate pairs are drained in configurable chunks;
* per-attribute similarity calls are memoized in an LRU cache keyed on
  normalized value pairs and shared across pairs
  (:class:`CachedRecordComparator`) — blocking makes value repetition
  common, so the cache pays for itself quickly;
* chunks fan out over a registered execution strategy (see
  :mod:`repro.engine.executors`) with a serial fallback, and every
  executor produces identical matches in identical order;
* the ``shard`` executor goes one level deeper: a :class:`ShardPlan`
  partitions the blocking method's key space and each process worker
  generates its own shards' candidates in-worker (fork-inherited
  stores, zero pair pickling), byte-identical to serial via the
  shard-ordered fold and ordinal merge;
* the ``worker`` executor replaces the fork pool with the serialized
  work-unit protocol (:mod:`repro.engine.executors.protocol`): every
  shard crosses a JSON serialize→subprocess→deserialize boundary — the
  on-one-machine proof that shards can run on separate hosts;
* each run reports :class:`EngineStats` (pairs/sec, cache hit rate,
  chunk/shard counts, transport counters) on ``LinkingResult.stats``.

``LinkingPipeline`` is now a thin facade over this engine; the executor
registry (:func:`register_executor`) is where future scaling work
(async backends, multi-node dispatch) plugs in.

:class:`StreamingLinkingJob` is the second execution mode: record
deltas ingested as they arrive (each delta one chunked batch job over
the shared, version-invalidated local key index), expert-link deltas
grown through an incremental learner — with final matches guaranteed
byte-identical to a from-scratch batch run.
"""

from repro.engine.batch import BatchScorer
from repro.engine.cache import (
    DEFAULT_CACHE_SIZE,
    CachedRecordComparator,
    LRUCache,
)
from repro.engine.executors import (
    Executor,
    executor_names,
    get_executor,
    register_executor,
)
from repro.engine.job import (
    EXECUTORS,
    SCORING,
    JobConfig,
    LinkingJob,
    available_cpu_count,
)
from repro.engine.shard import ShardOutcome, ShardPlan, stable_key_hash
from repro.engine.stats import EngineProgress, EngineStats
from repro.engine.streaming import StreamingDelta, StreamingLinkingJob

__all__ = [
    "DEFAULT_CACHE_SIZE",
    "BatchScorer",
    "CachedRecordComparator",
    "LRUCache",
    "EXECUTORS",
    "Executor",
    "SCORING",
    "JobConfig",
    "LinkingJob",
    "EngineProgress",
    "EngineStats",
    "executor_names",
    "get_executor",
    "register_executor",
    "ShardOutcome",
    "ShardPlan",
    "StreamingDelta",
    "StreamingLinkingJob",
    "available_cpu_count",
    "stable_key_hash",
]
