"""Execution statistics and progress reporting for the linking engine.

:class:`EngineStats` is the per-run report surfaced on
:class:`~repro.linking.pipeline.LinkingResult`; :class:`EngineProgress`
is the snapshot handed to a job's ``on_progress`` callback after every
folded chunk.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class EngineProgress:
    """A live snapshot during a running job.

    The total chunk count is unknown while the candidate stream is
    still being drained, so progress reports only what has completed.
    """

    chunks_done: int
    pairs_compared: int
    matches: int
    elapsed_seconds: float

    @property
    def pairs_per_second(self) -> float:
        """Throughput so far."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.pairs_compared / self.elapsed_seconds

    def format(self) -> str:
        return (
            f"chunk {self.chunks_done}: "
            f"{self.pairs_compared} pairs, {self.matches} matches, "
            f"{self.pairs_per_second:,.0f} pairs/s"
        )


@dataclass(frozen=True, slots=True)
class EngineStats:
    """How a finished :class:`~repro.engine.job.LinkingJob` ran.

    ``executor`` is the strategy that actually executed the job — after
    a parallel failure it reads ``serial`` and ``fallback_reason`` says
    why (a ``shard`` request on a blocking method without a per-key
    block decomposition reads ``process`` with the degradation noted
    there; a ``batched`` request on a comparator the columnar scorer
    cannot replicate reads ``pairwise`` the same way). Cache counters
    are summed across workers for the process and shard executors.
    ``shard_count`` is the number of key-space shards a ``shard`` run
    planned — the worker count unless
    :attr:`~repro.engine.job.JobConfig.shards` overrode it (0 outside
    shard runs); for shard runs ``chunk_count`` counts completed shards.

    ``scoring`` is the scoring path that actually ran. For batched runs
    the ``batch_*`` fields report the columnar scorer's work: distinct
    record profiles interned, profile pairs scored from scratch
    (``batch_pair_misses``) and pairs served whole from the profile-pair
    memo (``batch_pair_hits``) — summed across workers like the cache
    counters. The similarity-cache counters stay untouched by batched
    runs (the scorer never consults the pairwise cache), so a zero hit
    rate there is honest, not a regression.

    The ``index_*`` fields report the blocking method's shared inverted
    index (see :mod:`repro.index`) when one was used: build/probe wall
    time and posting-list sizes. They stay zero for scan-based blocking.

    The transport counters prove serialization actually happened:
    ``work_units`` counts shard work units that crossed a
    serialize→deserialize boundary (the ``worker`` executor — zero for
    in-process strategies) and ``work_unit_bytes`` the JSON bytes they
    cost in both directions. A ``worker`` run with ``work_units == 0``
    silently stayed in-process — the differential tests gate on this.
    """

    executor: str
    workers: int
    chunk_size: int
    chunk_count: int
    pairs_compared: int
    elapsed_seconds: float
    cache_hits: int = 0
    cache_misses: int = 0
    shard_count: int = 0
    fallback_reason: str | None = None
    index_build_seconds: float = 0.0
    index_probe_seconds: float = 0.0
    index_features: int = 0
    index_postings: int = 0
    scoring: str = "pairwise"
    batch_profiles: int = 0
    batch_pair_hits: int = 0
    batch_pair_misses: int = 0
    work_units: int = 0
    work_unit_bytes: int = 0

    @property
    def pairs_per_second(self) -> float:
        """Candidate pairs compared per wall-clock second."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.pairs_compared / self.elapsed_seconds

    @property
    def cache_hit_rate(self) -> float:
        """Similarity-cache hits over lookups (0.0 when cache disabled)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def batch_reuse_rate(self) -> float:
        """Pairs served whole from the profile-pair memo, over all pairs
        scored (0.0 outside batched runs)."""
        total = self.batch_pair_hits + self.batch_pair_misses
        return self.batch_pair_hits / total if total else 0.0

    def format(self) -> str:
        """One-paragraph human-readable report."""
        shards = f" shards={self.shard_count}" if self.shard_count else ""
        scoring = f" scoring={self.scoring}" if self.scoring != "pairwise" else ""
        lines = [
            f"executor={self.executor} workers={self.workers}{shards}{scoring} "
            f"chunks={self.chunk_count} (size {self.chunk_size})",
            f"compared {self.pairs_compared} pairs in "
            f"{self.elapsed_seconds:.2f}s -> "
            f"{self.pairs_per_second:,.0f} pairs/s",
            f"similarity cache: {self.cache_hits} hits / "
            f"{self.cache_misses} misses "
            f"(hit rate {self.cache_hit_rate:.1%})",
        ]
        if self.scoring == "batched":
            lines.append(
                f"batched scoring: {self.batch_profiles} profiles, "
                f"{self.batch_pair_misses} pairs scored / "
                f"{self.batch_pair_hits} memoized "
                f"(reuse {self.batch_reuse_rate:.1%})"
            )
        if self.index_features or self.index_postings:
            mean_posting = (
                self.index_postings / self.index_features if self.index_features else 0.0
            )
            lines.append(
                f"blocking index: {self.index_features} features / "
                f"{self.index_postings} postings "
                f"(mean {mean_posting:.1f}), "
                f"build {self.index_build_seconds * 1000:.1f}ms, "
                f"probe {self.index_probe_seconds * 1000:.1f}ms"
            )
        if self.work_units:
            lines.append(
                f"transport: {self.work_units} work units serialized "
                f"({self.work_unit_bytes:,} bytes round-tripped)"
            )
        if self.fallback_reason:
            lines.append(f"fallback: {self.fallback_reason}")
        return "\n".join(lines)
