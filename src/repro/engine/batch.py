"""Batched columnar pair scoring: the engine's second scoring path.

The pairwise path (``JobConfig.scoring="pairwise"``) walks every
candidate pair through :meth:`RecordComparator.compare` — per-field
cross-products, normalization, similarity calls — in interpreted Python,
one pair at a time. Blocking makes that wasteful twice over: records
inside a block share key material, so the *same field values* (and very
often the same whole records, field-for-field) are compared over and
over.

:class:`BatchScorer` turns the comparator + decider into columns over
interned ids (the same :class:`~repro.index.FeatureVocabulary`
machinery the learner and classifier batch paths ride):

* every raw field value is interned once and normalized once
  (``value -> dense value id``);
* every per-field value tuple is interned into a **field signature**
  (``tuple of value ids -> signature id``);
* every record collapses to a **profile** — its tuple of field
  signatures (``tuple of signature ids -> profile id``). Records that
  are equal on every compared field share one profile, whatever block
  they sit in.

Scoring then memoizes at three levels: per value pair (one similarity
call per distinct ``(similarity fn, value, value)``), per field-signature
pair (one cross-product max per distinct field column pair) and per
profile pair (one full vector + decision per distinct record shape).
Within a block every pair shares its block's sub-results by
construction; across blocks the sharing is wider still, because the
memo is keyed on content, not on block membership.

**Byte-identity.** The batched path replicates the pairwise arithmetic
exactly, not approximately:

* normalization is :func:`~repro.text.normalize.normalize_value`, the
  same pure function, applied once per interned value;
* a field's similarity is the same ``max`` over the same value
  cross-product in the same iteration order
  (:meth:`FieldComparator.compare_values` semantics, including the
  ``missing_value`` branch);
* the aggregate accumulates ``weight * sim`` in comparator declaration
  order and divides by the same ``sum(weights)``, so float rounding is
  reproduced bit-for-bit;
* deciders that offer ``compile_batched()`` (threshold and
  Fellegi-Sunter matchers) are compiled into closures whose arithmetic
  mirrors their ``decide``/``weight`` loops term for term; any other
  decider is simply called per pair on the memoized vector, so even
  stateful deciders observe the exact pairwise call sequence.

The differential harness in ``tests/engine`` and the hypothesis fuzz
suite pin this identity across every executor, every scenario and
streaming delta splits.
"""

from __future__ import annotations

import threading
import weakref
from typing import Callable, Dict, List, Optional, Tuple

from repro.engine.cache import CachedRecordComparator
from repro.index import FeatureVocabulary
from repro.linking.comparators import ComparisonVector, RecordComparator
from repro.linking.matchers import MatchStatus
from repro.linking.records import Record, RecordStore
from repro.rdf.terms import Term
from repro.text.normalize import normalize_value

#: A memoized profile-pair entry: (similarities in declaration order,
#: aggregate, decided status, decided score). Status/score are ``None``
#: when the decider has no batch compilation — the decision then runs
#: per pair on the memoized vector.
ScoredProfilePair = Tuple[Dict[str, float], float, Optional[MatchStatus], Optional[float]]

#: What a compiled decider returns for one scored vector.
CompiledDecider = Callable[[Dict[str, float], float], Tuple[MatchStatus, float]]


class BatchScorer:
    """Columnar, memoizing scorer for one (comparator, decider) pair.

    One scorer may outlive one job: the streaming engine owns a single
    scorer for a whole delta stream (mirroring the stream-owned
    similarity cache of the pairwise path), so profiles interned and
    pairs scored in delta 0 are never recomputed by delta N. Store
    columns are cached weakly per store and invalidated by the store's
    mutation ``version``, exactly like
    :func:`~repro.index.shared_record_index`.

    ``thread_safe=True`` guards the interning tables and memos with an
    ``RLock`` so the thread executor can share one scorer across its
    pool; the serial, process and shard paths pass ``False`` and pay
    nothing.
    """

    __slots__ = (
        "_fields",
        "_total_weight",
        "_decider",
        "_decide_scored",
        "_values",
        "_normalized",
        "_field_sigs",
        "_profiles",
        "_value_memo",
        "_field_memo",
        "_pair_memo",
        "_columns",
        "_lock",
        "pair_hits",
        "pair_misses",
    )

    def __init__(
        self,
        comparator: RecordComparator,
        decider,
        thread_safe: bool = False,
    ) -> None:
        if isinstance(comparator, CachedRecordComparator):
            comparator = comparator.inner
        if not self.supports(comparator):
            raise ValueError(
                f"{type(comparator).__name__} customizes per-pair "
                "comparison; the batched scorer can only replicate the "
                "base RecordComparator arithmetic"
            )
        self._fields = comparator.comparators
        # same expression over the same tuple as RecordComparator's
        # constructor: the division below reproduces its float exactly
        self._total_weight = sum(c.weight for c in self._fields)
        self._decider = decider
        compile_hook = getattr(decider, "compile_batched", None)
        self._decide_scored: Optional[CompiledDecider] = (
            compile_hook() if callable(compile_hook) else None
        )
        self._values = FeatureVocabulary()  # raw value -> dense id
        self._normalized: List[str] = []  # value id -> normalized form
        self._field_sigs = FeatureVocabulary()  # value-id tuple -> signature id
        self._profiles = FeatureVocabulary()  # signature tuple -> profile id
        # (similarity fn, value id, value id) -> similarity
        self._value_memo: Dict[tuple, float] = {}
        # (field index, left signature, right signature) -> similarity
        self._field_memo: Dict[tuple, float] = {}
        # (left profile, right profile) -> scored entry
        self._pair_memo: Dict[Tuple[int, int], ScoredProfilePair] = {}
        # store -> (store version at build, record id -> profile id)
        self._columns: "weakref.WeakKeyDictionary[RecordStore, tuple]" = (
            weakref.WeakKeyDictionary()
        )
        self._lock = threading.RLock() if thread_safe else None
        self.pair_hits = 0
        self.pair_misses = 0

    # ------------------------------------------------------------------
    # capabilities
    # ------------------------------------------------------------------
    @staticmethod
    def supports(comparator) -> bool:
        """Whether batched scoring can replicate *comparator* exactly.

        A subclass that overrides the comparison hooks computes
        something the columnar arithmetic cannot see, so the job
        degrades to pairwise scoring (with the reason recorded in
        :class:`~repro.engine.stats.EngineStats`) rather than silently
        diverge. The engine's own :class:`CachedRecordComparator`
        wrapper is transparent — its inner comparator is what counts.
        """
        if isinstance(comparator, CachedRecordComparator):
            comparator = comparator.inner
        cls = type(comparator)
        return (
            isinstance(comparator, RecordComparator)
            and cls.compare is RecordComparator.compare
            and cls._field_similarity is RecordComparator._field_similarity
        )

    @property
    def compiled(self) -> bool:
        """Whether the decider was compiled (decisions memoize too)."""
        return self._decide_scored is not None

    @property
    def thread_safe(self) -> bool:
        """Whether interning tables and memos are lock-guarded."""
        return self._lock is not None

    @property
    def profile_count(self) -> int:
        """Distinct record profiles interned so far."""
        return len(self._profiles)

    @property
    def unique_pairs(self) -> int:
        """Distinct profile pairs actually scored (memo entries)."""
        return len(self._pair_memo)

    # ------------------------------------------------------------------
    # columns
    # ------------------------------------------------------------------
    def columns_for(self, store: RecordStore) -> Dict[Term, int]:
        """The store's profile column (record id -> profile id).

        Built once per (store, version); a store mutation between runs
        or deltas invalidates the cached column, and re-interning after
        a rebuild is idempotent — previously handed-out profile ids
        stay valid because every vocabulary is append-only.
        """
        if self._lock is not None:
            with self._lock:
                return self._columns_for(store)
        return self._columns_for(store)

    def _columns_for(self, store: RecordStore) -> Dict[Term, int]:
        version = getattr(store, "version", None)
        cached = self._columns.get(store)
        if cached is not None and cached[0] == version:
            return cached[1]
        profiles = {record.id: self._profile_of(record) for record in store}
        self._columns[store] = (version, profiles)
        return profiles

    def _profile_of(self, record: Record) -> int:
        signatures = []
        for comparator in self._fields:
            ids = tuple(
                self._value_id(value)
                for value in record.values(comparator.field_name)
            )
            signatures.append(self._field_sigs.intern(ids))
        return self._profiles.intern(tuple(signatures))

    def _value_id(self, value: str) -> int:
        vid = self._values.intern(value)
        if vid == len(self._normalized):  # newly interned: normalize once
            self._normalized.append(normalize_value(value))
        return vid

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------
    def decision_for(
        self,
        left_profile: int,
        right_profile: int,
        left: Optional[Record] = None,
        right: Optional[Record] = None,
    ) -> Tuple[MatchStatus, float, Dict[str, float], float]:
        """Score and decide one pair by its profiles.

        With a compiled decider the whole entry — vector and decision —
        comes from the profile-pair memo. Without one, the vector is
        memoized but the decider runs per pair on the actual records
        (callers must pass them), preserving exact pairwise behavior
        for stateful or record-inspecting deciders.
        """
        if self._lock is not None:
            with self._lock:
                return self._decision_for(left_profile, right_profile, left, right)
        return self._decision_for(left_profile, right_profile, left, right)

    def _decision_for(
        self,
        left_profile: int,
        right_profile: int,
        left: Optional[Record],
        right: Optional[Record],
    ) -> Tuple[MatchStatus, float, Dict[str, float], float]:
        key = (left_profile, right_profile)
        entry = self._pair_memo.get(key)
        if entry is None:
            self.pair_misses += 1
            entry = self._score_profiles(left_profile, right_profile)
            self._pair_memo[key] = entry
        else:
            self.pair_hits += 1
        similarities, aggregate, status, score = entry
        if status is None:
            vector = ComparisonVector(
                left=left, right=right, similarities=similarities, aggregate=aggregate
            )
            decision = self._decider.decide(vector)
            return decision.status, decision.score, similarities, aggregate
        return status, score, similarities, aggregate

    def _score_profiles(self, left_profile: int, right_profile: int) -> ScoredProfilePair:
        left_sigs = self._profiles.feature_of(left_profile)
        right_sigs = self._profiles.feature_of(right_profile)
        similarities: Dict[str, float] = {}
        weighted = 0.0
        field_memo = self._field_memo
        for index, comparator in enumerate(self._fields):
            key = (index, left_sigs[index], right_sigs[index])
            sim = field_memo.get(key)
            if sim is None:
                sim = self._field_similarity(comparator, key[1], key[2])
                field_memo[key] = sim
            similarities[comparator.field_name] = sim
            weighted += comparator.weight * sim
        aggregate = weighted / self._total_weight
        if self._decide_scored is None:
            return similarities, aggregate, None, None
        status, score = self._decide_scored(similarities, aggregate)
        return similarities, aggregate, status, score

    def _field_similarity(self, comparator, left_sig: int, right_sig: int) -> float:
        left_ids = self._field_sigs.feature_of(left_sig)
        right_ids = self._field_sigs.feature_of(right_sig)
        if not left_ids or not right_ids:
            return comparator.missing_value
        similarity = comparator.similarity
        normalized = self._normalized
        memo = self._value_memo
        # replicate max(sim(a, b) for a in left for b in right): same
        # iteration order, first-of-equals semantics (NaN included)
        best: Optional[float] = None
        for a in left_ids:
            norm_a = normalized[a]
            for b in right_ids:
                key = (similarity, a, b)
                sim = memo.get(key)
                if sim is None:
                    sim = similarity(norm_a, normalized[b])
                    memo[key] = sim
                if best is None or sim > best:
                    best = sim
        return best

    # ------------------------------------------------------------------
    # chunk-level entry point
    # ------------------------------------------------------------------
    def score_chunk(
        self,
        pairs,
        external: RecordStore,
        local: RecordStore,
    ) -> Tuple[list, list]:
        """Score one chunk of candidate pairs against two stores.

        Returns ``(compared pairs, decision wires)`` with exactly the
        pairwise chunk semantics: pairs whose records are missing from
        either store are skipped, NON_MATCH decisions are dropped, and
        each wire carries a fresh similarities dict.
        """
        if self._lock is not None:
            with self._lock:
                return self._score_chunk(pairs, external, local)
        return self._score_chunk(pairs, external, local)

    def _score_chunk(self, pairs, external, local) -> Tuple[list, list]:
        left_profiles = self._columns_for(external)
        right_profiles = self._columns_for(local)
        compared: list = []
        decisions: list = []
        # the memo hit is the hot path — a few dict probes and an append
        # per pair — so everything it touches is bound to locals and the
        # counters are folded in once per chunk
        left_get = left_profiles.get
        right_get = right_profiles.get
        memo_get = self._pair_memo.get
        pair_memo = self._pair_memo
        score_profiles = self._score_profiles
        compared_append = compared.append
        decisions_append = decisions.append
        non_match = MatchStatus.NON_MATCH
        compiled = self._decide_scored is not None
        decide = None if compiled else self._decider.decide
        scored = 0
        misses = 0
        for ext_id, local_id in pairs:
            left_profile = left_get(ext_id)
            right_profile = right_get(local_id)
            if left_profile is None or right_profile is None:
                continue
            key = (left_profile, right_profile)
            entry = memo_get(key)
            if entry is None:
                misses += 1
                entry = score_profiles(left_profile, right_profile)
                pair_memo[key] = entry
            scored += 1
            similarities, aggregate, status, score = entry
            if not compiled:
                vector = ComparisonVector(
                    left=external.get(ext_id),
                    right=local.get(local_id),
                    similarities=similarities,
                    aggregate=aggregate,
                )
                decision = decide(vector)
                status, score = decision.status, decision.score
            compared_append((ext_id, local_id))
            if status is not non_match:
                decisions_append(
                    (
                        ext_id,
                        local_id,
                        dict(similarities),
                        aggregate,
                        status.value,
                        score,
                    )
                )
        self.pair_misses += misses
        self.pair_hits += scored - misses
        return compared, decisions

    def __repr__(self) -> str:
        return (
            f"<BatchScorer fields={len(self._fields)} "
            f"profiles={len(self._profiles)} pairs={len(self._pair_memo)}>"
        )
