"""Streaming incremental linking: the engine's second execution mode.

:class:`~repro.engine.job.LinkingJob` executes one finished batch. Real
provider feeds do not arrive finished — files land one delta at a time
and experts keep validating links between deltas. :class:`StreamingLinkingJob`
runs that workload on top of the batch substrate:

* **record deltas** (:meth:`StreamingLinkingJob.ingest`) are linked
  against the local store as they arrive, each delta executed as one
  chunked batch job, so every executor strategy, the similarity cache
  and the engine stats work unchanged — and on the serial and thread
  paths the stream owns **one** :class:`CachedRecordComparator` shared
  by every delta, so a value pair memoized in delta 0 is never
  recomputed by delta N (the process executor keeps per-worker caches
  instead: a warm parent cache cannot be shared with forked workers
  cheaply);
* **training deltas** (:meth:`StreamingLinkingJob.ingest_links`) grow an
  :class:`~repro.core.incremental.IncrementalRuleLearner`; the next
  record delta is blocked with rules re-emitted from the learner's
  posting lists — no from-scratch relearn;
* the local catalog's :class:`~repro.index.RecordKeyIndex` is shared
  through :func:`~repro.index.shared_record_index`, so it is built once
  for the whole stream and **version-invalidated**: mutating the local
  store between deltas bumps its version and the next delta rebuilds
  the postings automatically.

The contract that makes streaming trustworthy: for a fixed rule state,
ingesting the external records in any delta split and then calling
:meth:`result` yields **byte-identical** matches — same decisions, same
order, same scores — as one from-scratch batch run over the union.
Per-delta jobs run with ``best_match_only`` off and :meth:`result`
replays the batch fold's best-match selection (top score wins, ties
broken by smallest local id, first-occurrence order) over the
concatenated decision stream, which is exactly what the batch fold
sees. The scenario harness (:mod:`repro.scenarios`) asserts this
identity for every registered scenario. Every executor — including
``shard``, which runs each delta as a block-parallel job — upholds the
same contract because per-delta jobs are plain
:class:`~repro.engine.job.LinkingJob` runs.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.incremental import IncrementalRuleLearner
from repro.core.rules import RuleSet
from repro.core.training import SameAsLink
from repro.engine.batch import BatchScorer
from repro.engine.cache import CachedRecordComparator
from repro.engine.job import Decider, JobConfig, LinkingJob, Pair, update_best_match
from repro.engine.stats import EngineStats
from repro.linking.blocking import BlockingMethod, CanopyBlocking, SortedNeighbourhood
from repro.linking.comparators import RecordComparator
from repro.linking.matchers import MatchDecision, MatchStatus
from repro.linking.pipeline import LinkingResult
from repro.linking.records import Record, RecordStore
from repro.rdf.graph import Graph
from repro.rdf.terms import Term

#: Builds a blocking method from the current rule set (learner mode).
BlockingFactory = Callable[[RuleSet], BlockingMethod]

#: Blocking families whose candidate set is a function of the *whole*
#: external source (merged sort windows, canopy claiming), so per-delta
#: execution cannot reproduce a batch run. Rejected at construction.
_STREAM_UNSAFE = (SortedNeighbourhood, CanopyBlocking)


@dataclass(frozen=True, slots=True)
class StreamingDelta:
    """What one ingested record delta did."""

    index: int
    records: int
    compared: int
    matches: int
    possible: int
    rules: int
    elapsed_seconds: float

    def format(self) -> str:
        return (
            f"delta {self.index}: {self.records} records, "
            f"{self.compared} pairs, {self.matches} matches "
            f"({self.elapsed_seconds * 1000:.1f}ms"
            + (f", {self.rules} rules)" if self.rules else ")")
        )


class StreamingLinkingJob:
    """Link an unbounded stream of record deltas against a local store.

    Two configurations:

    * **fixed blocking** — pass ``blocking``; every delta reuses it (and
      through it the shared, version-invalidated local key index);

    ``shared_cache=False`` opts out of the stream-owned similarity
    cache, reverting to cold per-delta caches — the reference leg the
    ``smoke-streaming-cache`` benchmark measures against;
    * **learner-driven blocking** — pass ``learner`` and
      ``blocking_factory``; training deltas grow the learner and the
      factory re-materializes the blocking from the re-emitted rules
      before the next record delta.

    >>> job = StreamingLinkingJob(local, comparator, matcher,
    ...                           blocking=StandardBlocking.on_field_prefix("pn", 4))
    >>> for delta in provider_deltas:
    ...     job.ingest(delta)
    >>> result = job.result()     # byte-identical to one batch run
    """

    def __init__(
        self,
        local: RecordStore,
        comparator: RecordComparator,
        decider: Decider,
        config: JobConfig | None = None,
        blocking: BlockingMethod | None = None,
        blocking_factory: BlockingFactory | None = None,
        learner: IncrementalRuleLearner | None = None,
        shared_cache: bool = True,
    ) -> None:
        if blocking is None and (blocking_factory is None or learner is None):
            raise ValueError(
                "need either a fixed 'blocking' or both 'blocking_factory' "
                "and 'learner'"
            )
        if blocking is not None and (blocking_factory is not None or learner is not None):
            raise ValueError(
                "pass a fixed 'blocking' or the 'blocking_factory' + "
                "'learner' pair, not both"
            )
        if blocking is not None and isinstance(blocking, _STREAM_UNSAFE):
            raise ValueError(
                f"{type(blocking).__name__} cannot stream: its candidate "
                "set depends on the whole external source at once, so "
                "delta ingestion would diverge from a batch run"
            )
        self._local = local
        self._config = config or JobConfig()
        resolved = self._config.resolved_executor()
        batched = self._config.scoring == "batched"
        if (
            shared_cache
            and not batched
            and not isinstance(comparator, CachedRecordComparator)
            and resolved in ("serial", "thread")
            and self._config.cache_size > 0
        ):
            # one warm similarity cache for the whole stream: per-delta
            # jobs reuse it (LinkingJob keeps caller-provided cached
            # comparators), so repeated value pairs across deltas are
            # memoized once. Memoization never changes a similarity, so
            # the batch byte-identity contract is unaffected. Batched
            # streams skip the wrapper — the columnar scorer below plays
            # the warm-cache role and the pairwise cache would only
            # report misleading zeros.
            comparator = CachedRecordComparator(
                comparator,
                self._config.cache_size,
                thread_safe=resolved == "thread",
            )
        self._batch_scorer = None
        if (
            batched
            and shared_cache
            and resolved in ("serial", "thread")
            and BatchScorer.supports(comparator)
        ):
            # the batched analogue of the stream-owned cache: one scorer
            # for the whole stream, so profiles interned and profile
            # pairs scored in delta 0 are reused by every later delta
            # (the local store's column survives across deltas, version
            # guarded). Process/shard deltas build per-worker scorers.
            self._batch_scorer = BatchScorer(
                comparator, decider, thread_safe=resolved == "thread"
            )
        self._comparator = comparator
        self._decider = decider
        self._blocking = blocking
        self._blocking_factory = blocking_factory
        self._learner = learner
        self._rules_dirty = learner is not None
        # accumulated stream state
        self._blocking_fresh = True
        self._index_build_seconds = 0.0
        self._last_build_seconds: Optional[float] = None
        self._emitted_rules: Optional[RuleSet] = None
        self._external_count = 0
        self._matches: List[MatchDecision] = []
        self._possible: List[MatchDecision] = []
        self._candidate_pairs: List[Pair] = []
        self._compared = 0
        self._delta_stats: List[EngineStats] = []
        self.deltas: List[StreamingDelta] = []

    # ------------------------------------------------------------------
    # stream state
    # ------------------------------------------------------------------
    @property
    def local(self) -> RecordStore:
        """The local store deltas are linked against (mutable between
        deltas; the shared key index re-builds on version change)."""
        return self._local

    @property
    def config(self) -> JobConfig:
        """The per-delta execution configuration."""
        return self._config

    @property
    def records_ingested(self) -> int:
        """External records linked so far."""
        return self._external_count

    def rules(self) -> RuleSet:
        """The learner's current rule set (learner mode only)."""
        if self._learner is None:
            raise RuntimeError("this streaming job has no incremental learner")
        return self._learner.rules()

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def ingest_links(self, links: Iterable[SameAsLink], external: Graph) -> int:
        """Feed a batch of expert-validated links to the learner.

        Returns how many links were new. The rule set is re-emitted
        lazily — on the next record delta — so several training deltas
        in a row cost one re-emission.
        """
        if self._learner is None:
            raise RuntimeError(
                "ingest_links requires a StreamingLinkingJob built with an "
                "IncrementalRuleLearner"
            )
        added = self._learner.add_links(links, external)
        if added:
            self._rules_dirty = True
        return added

    def _current_blocking(self) -> BlockingMethod:
        if self._rules_dirty:
            assert self._blocking_factory is not None and self._learner is not None
            # one re-emission per rebuild; delta reports reuse the cached
            # set rather than re-deriving rules per ingest
            self._emitted_rules = self._learner.rules()
            blocking = self._blocking_factory(self._emitted_rules)
            if isinstance(blocking, _STREAM_UNSAFE):
                raise ValueError(
                    f"blocking_factory produced {type(blocking).__name__}, "
                    "which cannot stream: its candidate set depends on the "
                    "whole external source at once"
                )
            self._blocking = blocking
            self._rules_dirty = False
            self._blocking_fresh = True
        assert self._blocking is not None
        return self._blocking

    def ingest(self, records: Iterable[Record]) -> StreamingDelta:
        """Link one delta of external records against the local store.

        The delta is executed as a complete chunked batch job (same
        executor, cache and chunking semantics as :class:`LinkingJob`);
        its decisions are folded into the stream result.
        """
        started = time.perf_counter()
        delta_store = RecordStore(records)
        blocking = self._current_blocking()
        matches = possible = compared = 0
        if len(delta_store):
            # best-match selection must span the whole stream, so the
            # per-delta job keeps every MATCH and result() replays the
            # batch fold's selection over the concatenated stream
            job = LinkingJob(
                blocking,
                self._comparator,
                self._decider,
                dataclasses.replace(self._config, best_match_only=False),
                batch_scorer=self._batch_scorer,
            )
            outcome = job.run(delta_store, self._local)
            self._matches.extend(outcome.matches)
            self._possible.extend(outcome.possible)
            self._candidate_pairs.extend(outcome.candidate_pairs)
            self._compared += outcome.compared
            if outcome.stats is not None:
                self._delta_stats.append(outcome.stats)
                # shared indexes re-report their one-time build on every
                # delta: count a build on the first use of each blocking
                # instance and whenever the reported build time moves (a
                # local-store mutation rebuilt the shared postings)
                build = outcome.stats.index_build_seconds
                if self._blocking_fresh or build != self._last_build_seconds:
                    self._index_build_seconds += build
                self._last_build_seconds = build
            self._blocking_fresh = False
            matches = len(outcome.matches)
            possible = len(outcome.possible)
            compared = outcome.compared
        self._external_count += len(delta_store)
        delta = StreamingDelta(
            index=len(self.deltas),
            records=len(delta_store),
            compared=compared,
            matches=matches,
            possible=possible,
            rules=len(self._emitted_rules) if self._emitted_rules is not None else 0,
            elapsed_seconds=time.perf_counter() - started,
        )
        self.deltas.append(delta)
        return delta

    # ------------------------------------------------------------------
    # result
    # ------------------------------------------------------------------
    def _final_matches(self) -> List[MatchDecision]:
        """Replay the batch fold's best-match selection over the stream."""
        if not self._config.best_match_only:
            return list(self._matches)
        best: Dict[Term, MatchDecision] = {}
        for decision in self._matches:
            update_best_match(best, decision)
        return list(best.values())

    def _merged_stats(self) -> EngineStats:
        """One engine report for the whole stream (sums and maxima)."""
        per_delta = self._delta_stats
        if not per_delta:
            resolved = self._config.resolved_executor()
            return EngineStats(
                executor=resolved,
                workers=1 if resolved == "serial" else self._config.resolved_workers(),
                chunk_size=self._config.chunk_size,
                chunk_count=0,
                pairs_compared=0,
                elapsed_seconds=0.0,
                scoring=self._config.scoring,
            )
        first = per_delta[0]
        fallback = next(
            (s.fallback_reason for s in per_delta if s.fallback_reason), None
        )
        return EngineStats(
            executor=first.executor,
            workers=first.workers,
            chunk_size=first.chunk_size,
            chunk_count=sum(s.chunk_count for s in per_delta),
            pairs_compared=sum(s.pairs_compared for s in per_delta),
            elapsed_seconds=sum(s.elapsed_seconds for s in per_delta),
            cache_hits=sum(s.cache_hits for s in per_delta),
            cache_misses=sum(s.cache_misses for s in per_delta),
            shard_count=first.shard_count,
            fallback_reason=fallback,
            # accumulated at ingest time: one build per blocking
            # instance, not one per delta (deltas re-report the shared
            # index's one-time build)
            index_build_seconds=self._index_build_seconds,
            index_probe_seconds=sum(s.index_probe_seconds for s in per_delta),
            index_features=per_delta[-1].index_features,
            index_postings=per_delta[-1].index_postings,
            scoring=first.scoring,
            # with a stream-owned scorer the per-delta deltas sum to the
            # stream totals; per-worker scorers (process/shard) sum the
            # same way the cache counters do
            batch_profiles=sum(s.batch_profiles for s in per_delta),
            batch_pair_hits=sum(s.batch_pair_hits for s in per_delta),
            batch_pair_misses=sum(s.batch_pair_misses for s in per_delta),
            work_units=sum(s.work_units for s in per_delta),
            work_unit_bytes=sum(s.work_unit_bytes for s in per_delta),
        )

    def result(self) -> LinkingResult:
        """The stream's cumulative result, batch-fold equivalent.

        Callable at any point; matches are selected (best-match-only,
        when configured) over everything ingested so far.
        """
        result = LinkingResult(
            matches=self._final_matches(),
            possible=list(self._possible),
            compared=self._compared,
            naive_pairs=self._external_count * len(self._local),
            stats=self._merged_stats(),
        )
        result._candidate_pairs = list(self._candidate_pairs)
        return result
