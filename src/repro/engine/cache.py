"""Similarity memoization for the batch linking engine.

Blocking deliberately groups records with shared key material, so the
same (normalized) value pair is compared over and over — across
candidate pairs, not just within one. :class:`CachedRecordComparator`
wraps a :class:`~repro.linking.comparators.RecordComparator` and
memoizes every per-field similarity call in an LRU cache keyed on the
normalized value pair, sharing the work across all pairs of a job.

The cached comparator is a drop-in replacement: for any record pair it
produces a :class:`~repro.linking.comparators.ComparisonVector` equal to
what the uncached comparator would produce (same similarities, same
aggregate — memoization only skips recomputation, never changes it).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable, Optional

from repro.linking.comparators import FieldComparator, RecordComparator
from repro.linking.records import Record
from repro.text.normalize import normalize_value

#: Default LRU capacity: generous for catalog-scale value vocabularies.
DEFAULT_CACHE_SIZE = 100_000

_MISS = object()


class LRUCache:
    """A counting LRU cache over hashable keys.

    ``max_size <= 0`` disables storage entirely (every lookup misses and
    nothing is retained) so callers can switch memoization off without
    branching. An optional lock makes ``get``/``put`` safe under the
    thread executor; the serial and process paths pass ``lock=None`` and
    pay nothing.
    """

    def __init__(self, max_size: int, lock: Optional[threading.Lock] = None) -> None:
        self._max_size = max_size
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = lock
        self.hits = 0
        self.misses = 0

    @property
    def max_size(self) -> int:
        """Capacity; ``<= 0`` means caching is disabled."""
        return self._max_size

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Hits over total lookups (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def get(self, key: Hashable) -> object:
        """The cached value, or the module-private miss sentinel."""
        if self._lock is not None:
            with self._lock:
                return self._get(key)
        return self._get(key)

    def _get(self, key: Hashable) -> object:
        if self._max_size <= 0:
            return _MISS  # disabled: no storage, no counters
        value = self._entries.get(key, _MISS)
        if value is _MISS:
            self.misses += 1
            return _MISS
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: object) -> None:
        """Insert, evicting the least recently used entry when full."""
        if self._max_size <= 0:
            return
        if self._lock is not None:
            with self._lock:
                self._put(key, value)
        else:
            self._put(key, value)

    def _put(self, key: Hashable, value: object) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        if len(self._entries) > self._max_size:
            self._entries.popitem(last=False)

    @staticmethod
    def is_miss(value: object) -> bool:
        """Whether a :meth:`get` result was a miss."""
        return value is _MISS


class CachedRecordComparator(RecordComparator):
    """A ``RecordComparator`` with per-field similarity memoization.

    Similarities are keyed on ``(field index, normalized left value,
    normalized right value)`` — the field index keeps two fields with
    different similarity functions from polluting each other, while the
    normalized values make the cache insensitive to surface noise the
    comparator would strip anyway. Value normalization itself is
    memoized in a second LRU since raw values repeat just as often.

    Only the per-value-pair similarity lookup is intercepted; the
    missing-value, cross-product and aggregation semantics all come
    from the base classes, so cached and uncached comparison cannot
    drift apart.
    """

    def __init__(
        self,
        inner: RecordComparator,
        cache_size: int = DEFAULT_CACHE_SIZE,
        thread_safe: bool = False,
    ) -> None:
        super().__init__(inner.comparators)
        lock = threading.Lock() if thread_safe else None
        self._inner = inner
        self._thread_safe = thread_safe
        self._similarities = LRUCache(cache_size, lock=lock)
        self._normalized = LRUCache(cache_size, lock=lock)

    @property
    def inner(self) -> RecordComparator:
        """The wrapped, uncached comparator."""
        return self._inner

    @property
    def thread_safe(self) -> bool:
        """Whether the caches synchronize ``get``/``put`` with a lock.

        A long-lived comparator shared across jobs and deltas (see
        :class:`~repro.engine.job.LinkingJob` and
        :class:`~repro.engine.streaming.StreamingLinkingJob`) may only
        serve a thread pool when this is true; unsynchronized instances
        are reused on the serial path and replaced with a fresh
        thread-safe cache by the thread executor.
        """
        return self._thread_safe

    @property
    def cache_capacity(self) -> int:
        """Configured LRU capacity (0 = memoization disabled)."""
        return self._similarities.max_size

    @property
    def cache_hits(self) -> int:
        """Similarity-cache hits so far."""
        return self._similarities.hits

    @property
    def cache_misses(self) -> int:
        """Similarity-cache misses so far."""
        return self._similarities.misses

    @property
    def cache_hit_rate(self) -> float:
        """Similarity-cache hit rate so far."""
        return self._similarities.hit_rate

    def _normalize(self, value: str) -> str:
        cached = self._normalized.get(value)
        if not LRUCache.is_miss(cached):
            return cached  # type: ignore[return-value]
        normalized = normalize_value(value)
        self._normalized.put(value, normalized)
        return normalized

    def _pair_similarity(
        self, index: int, comparator: FieldComparator, a: str, b: str
    ) -> float:
        key = (index, self._normalize(a), self._normalize(b))
        cached = self._similarities.get(key)
        if not LRUCache.is_miss(cached):
            return cached  # type: ignore[return-value]
        similarity = comparator.similarity(key[1], key[2])
        self._similarities.put(key, similarity)
        return similarity

    def _field_similarity(
        self, index: int, comparator: FieldComparator, left: Record, right: Record
    ) -> float:
        return comparator.compare_values(
            left.values(comparator.field_name),
            right.values(comparator.field_name),
            pair_similarity=lambda a, b: self._pair_similarity(index, comparator, a, b),
        )
