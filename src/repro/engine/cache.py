"""Similarity memoization for the batch linking engine.

Blocking deliberately groups records with shared key material, so the
same (normalized) value pair is compared over and over — across
candidate pairs, not just within one. :class:`CachedRecordComparator`
wraps a :class:`~repro.linking.comparators.RecordComparator` and
memoizes every per-field similarity call in an LRU cache keyed on the
normalized value pair, sharing the work across all pairs of a job.

The cached comparator is a drop-in replacement: for any record pair it
produces a :class:`~repro.linking.comparators.ComparisonVector` equal to
what the uncached comparator would produce (same similarities, same
aggregate — memoization only skips recomputation, never changes it).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Iterable, List, Optional, Tuple

from repro.linking.comparators import FieldComparator, RecordComparator
from repro.linking.records import Record
from repro.text.normalize import normalize_value

#: Default LRU capacity: generous for catalog-scale value vocabularies.
DEFAULT_CACHE_SIZE = 100_000

_MISS = object()


class LRUCache:
    """A counting LRU cache over hashable keys.

    ``max_size <= 0`` disables storage entirely (every lookup misses and
    nothing is retained) so callers can switch memoization off without
    branching. An optional lock makes ``get``/``put`` safe under the
    thread executor; the serial and process paths pass ``lock=None`` and
    pay nothing.
    """

    def __init__(self, max_size: int, lock: Optional[threading.Lock] = None) -> None:
        self._max_size = max_size
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = lock
        self.hits = 0
        self.misses = 0

    @property
    def max_size(self) -> int:
        """Capacity; ``<= 0`` means caching is disabled."""
        return self._max_size

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Hits over total lookups (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def get(self, key: Hashable) -> object:
        """The cached value, or the module-private miss sentinel."""
        if self._lock is not None:
            with self._lock:
                return self._get(key)
        return self._get(key)

    def _get(self, key: Hashable) -> object:
        if self._max_size <= 0:
            # disabled: no storage, but the lookup still happened — the
            # stats must show every consultation as a miss, not report
            # zero traffic for a cache consulted on every pair
            self.misses += 1
            return _MISS
        value = self._entries.get(key, _MISS)
        if value is _MISS:
            self.misses += 1
            return _MISS
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: object) -> None:
        """Insert, evicting the least recently used entry when full."""
        if self._max_size <= 0:
            return
        if self._lock is not None:
            with self._lock:
                self._put(key, value)
        else:
            self._put(key, value)

    def _put(self, key: Hashable, value: object) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        if len(self._entries) > self._max_size:
            self._entries.popitem(last=False)

    def export_entries(self) -> List[Tuple[Hashable, object]]:
        """The cached entries, least recently used first.

        The order is the reload order: :meth:`load_entries` replays it
        through :meth:`put`, so an exported-then-reloaded cache evicts
        in the same sequence the original would have.
        """
        if self._lock is not None:
            with self._lock:
                return list(self._entries.items())
        return list(self._entries.items())

    def load_entries(self, entries: Iterable[Tuple[Hashable, object]]) -> None:
        """Insert *entries* in order (oldest first), respecting capacity."""
        for key, value in entries:
            self.put(key, value)

    @staticmethod
    def is_miss(value: object) -> bool:
        """Whether a :meth:`get` result was a miss."""
        return value is _MISS


class CachedRecordComparator(RecordComparator):
    """A ``RecordComparator`` with per-field similarity memoization.

    Similarities are keyed on ``(field index, normalized left value,
    normalized right value)`` — the field index keeps two fields with
    different similarity functions from polluting each other, while the
    normalized values make the cache insensitive to surface noise the
    comparator would strip anyway. Value normalization itself is
    memoized in a second LRU since raw values repeat just as often.

    Only the per-value-pair similarity lookup is intercepted; the
    missing-value, cross-product and aggregation semantics all come
    from the base classes, so cached and uncached comparison cannot
    drift apart.
    """

    def __init__(
        self,
        inner: RecordComparator,
        cache_size: int = DEFAULT_CACHE_SIZE,
        thread_safe: bool = False,
    ) -> None:
        super().__init__(inner.comparators)
        lock = threading.Lock() if thread_safe else None
        self._inner = inner
        self._thread_safe = thread_safe
        self._similarities = LRUCache(cache_size, lock=lock)
        self._normalized = LRUCache(cache_size, lock=lock)

    @property
    def inner(self) -> RecordComparator:
        """The wrapped, uncached comparator."""
        return self._inner

    @property
    def thread_safe(self) -> bool:
        """Whether the caches synchronize ``get``/``put`` with a lock.

        A long-lived comparator shared across jobs and deltas (see
        :class:`~repro.engine.job.LinkingJob` and
        :class:`~repro.engine.streaming.StreamingLinkingJob`) may only
        serve a thread pool when this is true; unsynchronized instances
        are reused on the serial path and replaced with a fresh
        thread-safe cache by the thread executor.
        """
        return self._thread_safe

    @property
    def cache_capacity(self) -> int:
        """Configured LRU capacity (0 = memoization disabled)."""
        return self._similarities.max_size

    @property
    def cache_hits(self) -> int:
        """Similarity-cache hits so far."""
        return self._similarities.hits

    @property
    def cache_misses(self) -> int:
        """Similarity-cache misses so far."""
        return self._similarities.misses

    @property
    def cache_hit_rate(self) -> float:
        """Similarity-cache hit rate so far."""
        return self._similarities.hit_rate

    def cache_export(self) -> Dict[str, Any]:
        """Cache contents as a JSON-ready payload (for artifact bundles).

        Entries are exported least recently used first so
        :meth:`cache_load` reconstructs the same LRU order; hit/miss
        counters are *not* exported — a reloaded cache starts its stats
        fresh, only the memoized work is carried over.
        """
        return {
            "capacity": self.cache_capacity,
            "similarities": [
                [index, a, b, similarity]
                for (index, a, b), similarity in self._similarities.export_entries()
            ],
            "normalized": [
                [raw, normalized]
                for raw, normalized in self._normalized.export_entries()
            ],
        }

    def cache_load(self, payload: Dict[str, Any]) -> None:
        """Warm the caches from a :meth:`cache_export` payload.

        Keys are rebuilt exactly as the live path builds them, so a
        warm-started comparator answers the same lookups without
        recomputing — memoization only skips work, never changes it.
        """
        for entry in payload.get("similarities", ()):
            index, a, b, similarity = entry
            self._similarities.put((index, a, b), similarity)
        for raw, normalized in payload.get("normalized", ()):
            self._normalized.put(raw, normalized)

    def _normalize(self, value: str) -> str:
        cached = self._normalized.get(value)
        if not LRUCache.is_miss(cached):
            return cached  # type: ignore[return-value]
        normalized = normalize_value(value)
        self._normalized.put(value, normalized)
        return normalized

    def _pair_similarity(
        self, index: int, comparator: FieldComparator, a: str, b: str
    ) -> float:
        key = (index, self._normalize(a), self._normalize(b))
        cached = self._similarities.get(key)
        if not LRUCache.is_miss(cached):
            return cached  # type: ignore[return-value]
        similarity = comparator.similarity(key[1], key[2])
        self._similarities.put(key, similarity)
        return similarity

    def _field_similarity(
        self, index: int, comparator: FieldComparator, left: Record, right: Record
    ) -> float:
        return comparator.compare_values(
            left.values(comparator.field_name),
            right.values(comparator.field_name),
            pair_similarity=lambda a, b: self._pair_similarity(index, comparator, a, b),
        )
