"""``repro.engine.executors`` — pluggable execution strategies.

The package splits what used to be a single ~850-line ``engine/job.py``
monolith into the pieces a distributed engine needs to name separately:

* :mod:`~repro.engine.executors.base` — the :class:`Executor` protocol,
  the registry ``JobConfig`` validates against, and the shared fold
  machinery every strategy feeds;
* :mod:`~repro.engine.executors.chunked` — the serial, thread-pool and
  process-pool chunk strategies;
* :mod:`~repro.engine.executors.sharded` — the fork-pool shard strategy
  and :func:`run_shard_scan`, the one per-shard scan every transport
  shares;
* :mod:`~repro.engine.executors.protocol` — the versioned, checksummed
  :class:`ShardWorkUnit` / WorkerResult JSON envelopes;
* :mod:`~repro.engine.executors.worker` — the subprocess transport that
  proves the protocol end-to-end on one machine.

Importing the package registers the built-in strategies. Third-party
strategies register the same way::

    from repro.engine.executors import Executor, register_executor

    class GPUExecutor(Executor):
        name = "gpu"
        def execute(self, request): ...

    register_executor(GPUExecutor())
    JobConfig(executor="gpu")   # now valid
"""

from repro.engine.executors.base import (
    AUTO,
    ChunkOutcome,
    Decider,
    DecisionWire,
    ExecutionRequest,
    Executor,
    FoldState,
    Pair,
    executor_names,
    get_executor,
    register_executor,
    update_best_match,
)
from repro.engine.executors.chunked import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
)
from repro.engine.executors.sharded import ShardExecutor, run_shard_scan
from repro.engine.executors.worker import WorkerExecutor, WorkerTransportError

register_executor(SerialExecutor())
register_executor(ThreadExecutor())
register_executor(ProcessExecutor())
register_executor(ShardExecutor())
register_executor(WorkerExecutor())

__all__ = [
    "AUTO",
    "ChunkOutcome",
    "Decider",
    "DecisionWire",
    "ExecutionRequest",
    "Executor",
    "FoldState",
    "Pair",
    "ProcessExecutor",
    "SerialExecutor",
    "ShardExecutor",
    "ThreadExecutor",
    "WorkerExecutor",
    "WorkerTransportError",
    "executor_names",
    "get_executor",
    "register_executor",
    "run_shard_scan",
    "update_best_match",
]
