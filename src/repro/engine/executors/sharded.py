"""The shard executor: block-parallel execution over a key-space plan.

Instead of the parent generating every candidate pair and pickling
chunks to workers, a :class:`~repro.engine.shard.ShardPlan` partitions
the blocking method's *key space* and each process worker generates the
candidates of its own shards in-worker (stores inherited via fork —
zero pair pickling; only compact decision wires cross the process
boundary). The parent folds shard outcomes in deterministic shard order
and merges the sort-key-tagged groups back into serial emission order,
so the result is byte-identical to the serial path.

:func:`run_shard_scan` is the single per-shard scan both transports
share: the fork-pool worker here, and the serialized work-unit protocol
(:mod:`repro.engine.executors.protocol`) that carries the same scan
across a process or network boundary.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, List, Optional, Tuple

from repro.engine.batch import BatchScorer
from repro.engine.cache import CachedRecordComparator
from repro.engine.executors.base import (
    Decider,
    DecisionWire,
    ExecutionRequest,
    Executor,
    Pair,
)
from repro.engine.shard import ShardOutcome, ShardPlan, merge_shard_groups
from repro.engine.stats import EngineProgress
from repro.linking.blocking import BlockingMethod
from repro.linking.comparators import RecordComparator
from repro.linking.matchers import MatchStatus
from repro.linking.records import RecordStore
from repro.rdf.terms import Term

#: Group sentinel: distinct from every sort key a blocking method can
#: emit (keys are ints or int tuples), so the first pair always opens a
#: fresh group.
_NO_GROUP = object()


def run_shard_scan(
    blocking: BlockingMethod,
    external: RecordStore,
    local: RecordStore,
    cache: CachedRecordComparator,
    decider: Decider,
    plan: ShardPlan,
    shard: int,
    scorer: Optional[BatchScorer] = None,
) -> ShardOutcome:
    """Generate, compare and decide one shard's candidates.

    Pairs are drawn lazily from the blocking method's per-key block
    iteration — the candidate stream never exists in the parent — and
    runs of consecutive equal sort keys become one group, so the caller
    can merge shard outcomes back into serial comparison order.
    """
    hits_before, misses_before = cache.cache_hits, cache.cache_misses
    if scorer is not None:
        batch_hits_before = scorer.pair_hits
        batch_misses_before = scorer.pair_misses
        batch_profiles_before = scorer.profile_count
        left_profiles = scorer.columns_for(external)
        right_profiles = scorer.columns_for(local)
        compiled = scorer.compiled

        def score(ext_id: Term, local_id: Term):
            left_profile = left_profiles.get(ext_id)
            right_profile = right_profiles.get(local_id)
            if left_profile is None or right_profile is None:
                return None
            if compiled:
                return scorer.decision_for(left_profile, right_profile)
            return scorer.decision_for(
                left_profile, right_profile, external.get(ext_id), local.get(local_id)
            )
    else:

        def score(ext_id: Term, local_id: Term):
            left = external.get(ext_id)
            right = local.get(local_id)
            if left is None or right is None:
                return None
            vector = cache.compare(left, right)
            decision = decider.decide(vector)
            return decision.status, decision.score, vector.similarities, vector.aggregate

    groups: List[tuple] = []
    match_ext_ids: List[Term] = []
    compared = 0
    current: object = _NO_GROUP
    pairs: List[Pair] = []
    wires: List[DecisionWire] = []
    for sort_key, ext_id, local_id in blocking.shard_candidate_pairs(
        external, local, plan, shard
    ):
        scored = score(ext_id, local_id)
        if scored is None:
            continue
        if sort_key != current:
            if pairs:
                groups.append((current, pairs, wires))
            current, pairs, wires = sort_key, [], []
        status, decision_score, similarities, aggregate = scored
        pairs.append((ext_id, local_id))
        compared += 1
        if status is not MatchStatus.NON_MATCH:
            wires.append(
                (
                    ext_id,
                    local_id,
                    dict(similarities),
                    aggregate,
                    status.value,
                    decision_score,
                )
            )
            if status is MatchStatus.MATCH:
                match_ext_ids.append(ext_id)
    if pairs:
        groups.append((current, pairs, wires))
    return ShardOutcome(
        shard=shard,
        groups=groups,
        compared=compared,
        match_ext_ids=match_ext_ids,
        cache_hits=cache.cache_hits - hits_before,
        cache_misses=cache.cache_misses - misses_before,
        batch_hits=scorer.pair_hits - batch_hits_before if scorer else 0,
        batch_misses=scorer.pair_misses - batch_misses_before if scorer else 0,
        batch_profiles=scorer.profile_count - batch_profiles_before if scorer else 0,
    )


# Per-process shard-executor state, set once by the pool initializer:
# (blocking, external, local, cached comparator, decider, plan, scorer).
# As with chunk workers, fork inheritance makes this free on Linux.
_SHARD_STATE: Optional[tuple] = None


def _init_shard_worker(
    blocking: BlockingMethod,
    external: RecordStore,
    local: RecordStore,
    comparator: RecordComparator,
    decider: Decider,
    cache_size: int,
    plan: ShardPlan,
    scoring: str = "pairwise",
) -> None:
    global _SHARD_STATE
    cache = CachedRecordComparator(comparator, cache_size)
    scorer = BatchScorer(comparator, decider) if scoring == "batched" else None
    _SHARD_STATE = (blocking, external, local, cache, decider, plan, scorer)


def _run_shard_worker(shard: int) -> ShardOutcome:
    if _SHARD_STATE is None:
        raise RuntimeError("shard worker used before initialization")
    blocking, external, local, cache, decider, plan, scorer = _SHARD_STATE
    return run_shard_scan(
        blocking, external, local, cache, decider, plan, shard, scorer
    )


class ShardProgress:
    """Parent-side per-outcome counter fold shared by the shard-plan
    executors (fork-pool ``shard`` and subprocess ``worker``)."""

    def __init__(self, request: ExecutionRequest) -> None:
        self._request = request
        self._compared = 0
        self._matched_ext: set = set()
        self._match_wires = 0

    def note(self, outcome: ShardOutcome) -> None:
        """Fold one shard outcome's counters; emit progress if asked."""
        request = self._request
        fold = request.fold
        fold.chunks_done += 1  # one "chunk" per shard
        fold.cache_hits += outcome.cache_hits
        fold.cache_misses += outcome.cache_misses
        fold.batch_hits += outcome.batch_hits
        fold.batch_misses += outcome.batch_misses
        fold.batch_profiles += outcome.batch_profiles
        self._compared += outcome.compared
        on_progress = request.config.on_progress
        if on_progress is not None:
            if request.config.best_match_only:
                self._matched_ext.update(outcome.match_ext_ids)
                matches = len(self._matched_ext)
            else:
                self._match_wires += len(outcome.match_ext_ids)
                matches = self._match_wires
            on_progress(
                EngineProgress(
                    chunks_done=fold.chunks_done,
                    pairs_compared=self._compared,
                    matches=matches,
                    elapsed_seconds=time.perf_counter() - request.started,
                )
            )


def merge_outcomes_into_fold(
    request: ExecutionRequest, outcomes: Iterable[ShardOutcome]
) -> Tuple[int, int]:
    """Merge shard groups back into serial emission order and fold them;
    returns the folded similarity-cache ``(hits, misses)``."""
    fold = request.fold
    for _sort_key, pairs, wires in merge_shard_groups(outcomes):
        fold.compared += len(pairs)
        fold.candidate_pairs.extend(pairs)
        fold.fold_decisions(wires)
    return fold.cache_hits, fold.cache_misses


class ShardExecutor(Executor):
    """Block-parallel execution: one shard of the key space per worker.

    The plan is built in the parent (which also warms any shared block
    index — and canopy's center pass — *before* the fork, so workers
    inherit it); workers generate, compare and decide their own shards'
    candidates; the parent consumes outcomes in deterministic shard
    order and then folds the key-merged groups, reconstructing the
    serial comparison order exactly.
    """

    name = "shard"
    uses_shard_plan = True
    fallback = "process"

    def unsupported_reason(
        self,
        blocking: BlockingMethod,
        comparator: RecordComparator,
        decider: Decider,
    ) -> Optional[str]:
        supports = getattr(blocking, "supports_sharding", None)
        if callable(supports) and supports():
            return None
        # no per-key block decomposition: the chunked process executor
        # is the closest strategy that still parallelizes
        return f"{type(blocking).__name__} has no per-key block decomposition"

    def execute(self, request: ExecutionRequest) -> Tuple[int, int]:
        config = request.config
        plan = ShardPlan.build(
            config.resolved_shards(),
            request.blocking.shard_block_sizes(request.external, request.local),
        )
        progress = ShardProgress(request)
        outcomes: List[ShardOutcome] = []
        with ProcessPoolExecutor(
            max_workers=min(request.workers, plan.shards),
            initializer=_init_shard_worker,
            initargs=(
                request.blocking,
                request.external,
                request.local,
                request.comparator,
                request.decider,
                request.cache_size,
                plan,
                request.scoring,
            ),
        ) as pool:
            futures = [pool.submit(_run_shard_worker, s) for s in range(plan.shards)]
            for future in futures:  # deterministic shard order
                outcome = future.result()
                outcomes.append(outcome)
                progress.note(outcome)
        return merge_outcomes_into_fold(request, outcomes)
