"""The ``worker`` executor: every shard crosses a serialization boundary.

Functionally it is the shard executor with the fork pool replaced by a
subprocess transport: each :class:`ShardWorkUnit` is serialized to its
JSON envelope, piped to a fresh ``repro worker run-unit`` process, and
the WorkerResult envelope that comes back is deserialized into the same
:class:`~repro.engine.shard.ShardOutcome` fold the fork pool feeds.
Nothing is inherited, nothing is pickled — if it folds byte-identically
here, the protocol carries everything a remote host needs, which is the
point: this executor is the on-one-machine proof of the multi-node
protocol.

It deliberately does **not** collapse to serial at one worker: its
value is the boundary, not the parallelism, so a 1-CPU CI runner still
exercises the full serialize→subprocess→deserialize round trip (the
``work_units`` transport counter in
:class:`~repro.engine.stats.EngineStats` asserts it actually happened).
"""

from __future__ import annotations

import os
import subprocess
import sys
from concurrent.futures import BrokenExecutor, ThreadPoolExecutor
from pathlib import Path
from typing import List, Optional, Tuple

from repro.engine.executors.base import Decider, ExecutionRequest, Executor
from repro.engine.executors.sharded import ShardProgress, merge_outcomes_into_fold
from repro.engine.shard import ShardOutcome, ShardPlan
from repro.linking.blocking import BlockingMethod
from repro.linking.comparators import RecordComparator


class WorkerTransportError(BrokenExecutor):
    """A worker subprocess failed to transport a unit (spawn failure,
    nonzero exit, unparseable reply). Subclassing
    :class:`~concurrent.futures.BrokenExecutor` routes it into the
    engine's serial-fallback path, like any other pool-bringup failure."""


def _worker_command() -> List[str]:
    return [sys.executable, "-m", "repro", "worker", "run-unit"]


def _worker_env() -> dict:
    """The subprocess environment, with this ``repro`` importable.

    ``python -m repro`` must resolve to the package actually running
    this code — not whatever happens to be installed — so the package's
    parent directory is prepended to ``PYTHONPATH``.
    """
    import repro

    env = os.environ.copy()
    package_root = str(Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root if not existing else package_root + os.pathsep + existing
    )
    return env


def run_unit_subprocess(unit_text: str) -> str:
    """Round-trip one serialized unit through a worker subprocess."""
    try:
        proc = subprocess.run(
            _worker_command(),
            input=unit_text,
            capture_output=True,
            text=True,
            env=_worker_env(),
        )
    except OSError as exc:
        raise WorkerTransportError(f"could not spawn worker subprocess: {exc}") from exc
    if proc.returncode != 0:
        detail = proc.stderr.strip().splitlines()
        raise WorkerTransportError(
            f"worker subprocess exited {proc.returncode}"
            + (f": {detail[-1]}" if detail else "")
        )
    return proc.stdout


class WorkerExecutor(Executor):
    """Shard-plan execution over serialized work units in subprocesses."""

    name = "worker"
    uses_shard_plan = True
    collapses_single_worker = False
    fallback = "shard"

    def unsupported_reason(
        self,
        blocking: BlockingMethod,
        comparator: RecordComparator,
        decider: Decider,
    ) -> Optional[str]:
        from repro.engine.executors.protocol import work_unit_unsupported_reason

        supports = getattr(blocking, "supports_sharding", None)
        if not (callable(supports) and supports()):
            return f"{type(blocking).__name__} has no per-key block decomposition"
        return work_unit_unsupported_reason(blocking, comparator, decider)

    def execute(self, request: ExecutionRequest) -> Tuple[int, int]:
        from repro.engine.executors.protocol import (
            WorkUnitError,
            build_work_units,
            decode_worker_result,
            encode_work_unit,
        )

        config = request.config
        plan = ShardPlan.build(
            config.resolved_shards(),
            request.blocking.shard_block_sizes(request.external, request.local),
        )
        units = build_work_units(
            request.blocking,
            request.comparator,
            request.decider,
            request.external,
            request.local,
            plan,
            request.scoring,
            request.cache_size,
        )
        texts = [encode_work_unit(unit) for unit in units]
        progress = ShardProgress(request)
        fold = request.fold
        outcomes: List[ShardOutcome] = []
        with ThreadPoolExecutor(
            max_workers=min(request.workers, plan.shards)
        ) as pool:
            futures = [pool.submit(run_unit_subprocess, text) for text in texts]
            for shard, future in enumerate(futures):  # deterministic shard order
                reply = future.result()
                try:
                    outcome = decode_worker_result(reply)
                except WorkUnitError as exc:
                    raise WorkerTransportError(
                        f"shard {shard} returned an invalid result: {exc}"
                    ) from exc
                if outcome.shard != shard:
                    raise WorkerTransportError(
                        f"shard {shard} returned outcome for shard {outcome.shard}"
                    )
                fold.work_units += 1
                fold.work_unit_bytes += len(texts[shard]) + len(reply)
                outcomes.append(outcome)
                progress.note(outcome)
        return merge_outcomes_into_fold(request, outcomes)
