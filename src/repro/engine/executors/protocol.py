"""The serializable shard work-unit protocol.

A :class:`ShardWorkUnit` is one shard of a linking run as a value: the
shard plan slice, the record stores (external inline; local inline or
pinned by fingerprint for workers that already hold the store), and the
blocking/comparator/decider configuration as declarative *specs* — not
pickles — so a unit is transport-agnostic: a subprocess, an HTTP body
and a message queue all carry the same JSON envelope.

A :class:`~repro.engine.shard.ShardOutcome` travels back as a
``WorkerResult`` envelope carrying the ordinal-merge sort keys
unchanged, which is what keeps the PR-5/7 byte-identity argument alive
across the boundary: the parent k-way-merges remote outcomes exactly as
it merges fork-pool outcomes, so fold order — and therefore the result
bytes — cannot depend on where a shard ran.

Envelopes follow the artifact-bundle integrity idiom
(:mod:`repro.index.artifacts`): a ``format`` tag, a schema version, an
environment fingerprint and a sha256 checksum over the canonical body.
Stale, foreign or corrupted envelopes fail loudly with
:class:`WorkUnitError` before any partial state can leak into a fold.

JSON is deliberate: ``json.dumps``/``loads`` round-trip floats exactly
(repr-based shortest representation), so similarity scores survive the
wire bit-for-bit — a pickle-free guarantee the differential tests pin.
"""

from __future__ import annotations

import functools
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.engine.batch import BatchScorer
from repro.engine.cache import CachedRecordComparator
from repro.engine.executors.base import Decider, DecisionWire
from repro.engine.executors.sharded import run_shard_scan
from repro.engine.shard import GroupKey, ShardOutcome, ShardPlan
from repro.index.artifacts import (
    environment_fingerprint,
    record_store_from_payload,
    record_store_to_payload,
    term_from_payload,
    term_to_payload,
)
from repro.linking.blocking import (
    BlockingMethod,
    CanopyBlocking,
    FullIndex,
    QGramBlocking,
    RuleBasedBlocking,
    SortedNeighbourhood,
    StandardBlocking,
    _normalized_field_key,
    _prefix_key,
)
from repro.linking.comparators import FieldComparator, RecordComparator
from repro.linking.matchers import ThresholdMatcher
from repro.linking.records import RecordStore
from repro.text.similarity import jaro_winkler_similarity

#: Envelope ``format`` tags — reject non-protocol payloads early.
WORK_UNIT_FORMAT = "repro-shard-work-unit"
WORKER_RESULT_FORMAT = "repro-worker-result"

#: Bumped on any incompatible change to the envelope bodies.
PROTOCOL_SCHEMA_VERSION = 1


class WorkUnitError(ValueError):
    """Raised on stale, foreign, corrupt or unserializable work units."""


def _canonical(payload: Any) -> str:
    """Canonical JSON: sorted keys, no whitespace — digest-stable."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def store_fingerprint(store: RecordStore) -> str:
    """A content fingerprint of a record store (canonical-payload sha256).

    Remote workers pin their resident local store with this: a unit
    built against one catalog can never silently fold against another.
    """
    return _digest(_canonical(record_store_to_payload(store)))


# ---------------------------------------------------------------------------
# configuration specs: declarative, JSON-only descriptions of the
# blocking / comparator / decider triple. Only canonically-constructed
# instances serialize; anything carrying user callables or trained
# state the spec language cannot express is rejected with a reason the
# worker executor surfaces in ``fallback_reason``.
# ---------------------------------------------------------------------------


def blocking_unsupported_reason(blocking: BlockingMethod) -> Optional[str]:
    """Why *blocking* cannot cross the wire (``None`` = it can)."""
    if type(blocking) is FullIndex:
        return None
    if type(blocking) is StandardBlocking:
        key = blocking._key
        if isinstance(key, functools.partial) and key.func is _prefix_key:
            return None
        return "StandardBlocking with a non-prefix key has no declarative spec"
    if type(blocking) is SortedNeighbourhood:
        key = blocking._key
        if isinstance(key, functools.partial) and key.func is _normalized_field_key:
            return None
        return "SortedNeighbourhood with a custom sort key has no declarative spec"
    if type(blocking) is QGramBlocking or type(blocking) is CanopyBlocking:
        return None
    if type(blocking) is RuleBasedBlocking:
        from repro.core.classifier import RuleClassifier
        from repro.core.rules import rule_order_key
        from repro.text.segmentation import SeparatorSegmenter

        classifier = blocking._classifier
        if type(classifier) is not RuleClassifier:
            return f"{type(classifier).__name__} has no declarative spec"
        if classifier._ordering is not rule_order_key:
            return "RuleClassifier with a custom rule ordering has no declarative spec"
        if classifier._segmenter != SeparatorSegmenter():
            return "RuleClassifier with a custom segmenter has no declarative spec"
        return None
    return f"{type(blocking).__name__} has no declarative spec"


def blocking_to_spec(blocking: BlockingMethod) -> Dict[str, Any]:
    """The declarative spec of a canonically-constructed blocking method."""
    reason = blocking_unsupported_reason(blocking)
    if reason is not None:
        raise WorkUnitError(f"blocking cannot cross the wire: {reason}")
    if type(blocking) is FullIndex:
        return {"kind": "full"}
    if type(blocking) is StandardBlocking:
        field_name, length = blocking._key.args
        return {
            "kind": "prefix",
            "field": field_name,
            "length": length,
            "use_index": blocking._use_index,
        }
    if type(blocking) is SortedNeighbourhood:
        (field_name,) = blocking._key.args
        return {"kind": "sorted", "field": field_name, "window": blocking._window}
    if type(blocking) is QGramBlocking:
        return {
            "kind": "qgram",
            "field": blocking._field,
            "q": blocking._q,
            "threshold": blocking._threshold,
            "max_grams": blocking._max_grams,
            "use_index": blocking._use_index,
        }
    if type(blocking) is CanopyBlocking:
        return {
            "kind": "canopy",
            "field": blocking._field,
            "loose": blocking._loose,
            "tight": blocking._tight,
            "q": blocking._q,
        }
    # RuleBasedBlocking — rules, ontology and the external description
    # graph all have existing lossless text serializations
    from repro.core.serialize import rules_to_json
    from repro.ontology.loader import ontology_to_graph
    from repro.rdf.ntriples import serialize_ntriples

    return {
        "kind": "rules",
        "rules": json.loads(rules_to_json(blocking._classifier.rules)),
        "ontology": serialize_ntriples(ontology_to_graph(blocking._ontology)),
        "graph": serialize_ntriples(blocking._graph),
        "fallback_full": blocking._fallback_full,
        "use_index": blocking._use_index,
    }


def blocking_from_spec(spec: Mapping[str, Any]) -> BlockingMethod:
    """Rebuild a blocking method from its declarative spec."""
    kind = spec.get("kind")
    if kind == "full":
        return FullIndex()
    if kind == "prefix":
        return StandardBlocking.on_field_prefix(
            spec["field"], length=spec["length"], use_index=spec["use_index"]
        )
    if kind == "sorted":
        return SortedNeighbourhood.on_field(spec["field"], window_size=spec["window"])
    if kind == "qgram":
        return QGramBlocking(
            spec["field"],
            q=spec["q"],
            threshold=spec["threshold"],
            max_grams=spec["max_grams"],
            use_index=spec["use_index"],
        )
    if kind == "canopy":
        return CanopyBlocking(
            spec["field"], loose=spec["loose"], tight=spec["tight"], q=spec["q"]
        )
    if kind == "rules":
        from repro.core.classifier import RuleClassifier
        from repro.core.serialize import rules_from_json
        from repro.ontology.loader import ontology_from_graph
        from repro.rdf.ntriples import parse_ntriples

        return RuleBasedBlocking(
            RuleClassifier(rules_from_json(json.dumps(spec["rules"]))),
            ontology_from_graph(parse_ntriples(spec["ontology"])),
            parse_ntriples(spec["graph"]),
            fallback_full=spec["fallback_full"],
            use_index=spec["use_index"],
        )
    raise WorkUnitError(f"unknown blocking spec kind {kind!r}")


def comparator_unsupported_reason(comparator: RecordComparator) -> Optional[str]:
    """Why *comparator* cannot cross the wire (``None`` = it can)."""
    if type(comparator) is not RecordComparator:
        return f"{type(comparator).__name__} has no declarative spec"
    for fc in comparator.comparators:
        if type(fc) is not FieldComparator:
            return f"{type(fc).__name__} has no declarative spec"
        if fc.similarity is not jaro_winkler_similarity:
            return (
                f"field {fc.field_name!r} uses a custom similarity "
                "the spec language cannot name"
            )
    return None


def comparator_to_spec(comparator: RecordComparator) -> List[Dict[str, Any]]:
    reason = comparator_unsupported_reason(comparator)
    if reason is not None:
        raise WorkUnitError(f"comparator cannot cross the wire: {reason}")
    return [
        {
            "field": fc.field_name,
            "weight": fc.weight,
            "missing_value": fc.missing_value,
        }
        for fc in comparator.comparators
    ]


def comparator_from_spec(spec: List[Mapping[str, Any]]) -> RecordComparator:
    return RecordComparator(
        [
            FieldComparator(
                entry["field"],
                weight=entry["weight"],
                missing_value=entry["missing_value"],
            )
            for entry in spec
        ]
    )


def decider_unsupported_reason(decider: Decider) -> Optional[str]:
    """Why *decider* cannot cross the wire (``None`` = it can)."""
    if type(decider) is ThresholdMatcher:
        return None
    return f"{type(decider).__name__} has no declarative spec"


def decider_to_spec(decider: Decider) -> Dict[str, Any]:
    reason = decider_unsupported_reason(decider)
    if reason is not None:
        raise WorkUnitError(f"decider cannot cross the wire: {reason}")
    return {
        "kind": "threshold",
        "match_threshold": decider.match_threshold,
        "possible_threshold": decider.possible_threshold,
    }


def decider_from_spec(spec: Mapping[str, Any]) -> Decider:
    if spec.get("kind") != "threshold":
        raise WorkUnitError(f"unknown decider spec kind {spec.get('kind')!r}")
    return ThresholdMatcher(
        match_threshold=spec["match_threshold"],
        possible_threshold=spec["possible_threshold"],
    )


def work_unit_unsupported_reason(
    blocking: BlockingMethod, comparator: RecordComparator, decider: Decider
) -> Optional[str]:
    """Why this job configuration cannot become work units (``None`` = it can)."""
    return (
        blocking_unsupported_reason(blocking)
        or comparator_unsupported_reason(comparator)
        or decider_unsupported_reason(decider)
    )


# ---------------------------------------------------------------------------
# the envelopes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardWorkUnit:
    """One shard of a linking run, as a transport-agnostic value.

    ``local_payload`` is optional: a unit shipped to a worker that
    already holds the local store (a warm-started daemon) carries only
    ``local_fingerprint``, and the worker must refuse to fold against a
    store with a different fingerprint. ``fields`` pins the comparator's
    field vocabulary so a unit and its executing store agree on the
    similarity columns by construction.
    """

    shard: int
    plan: ShardPlan
    blocking: Dict[str, Any]
    comparator: List[Dict[str, Any]]
    decider: Dict[str, Any]
    scoring: str
    cache_size: int
    external_payload: Dict[str, Any]
    local_fingerprint: str
    local_payload: Optional[Dict[str, Any]] = None
    fields: Tuple[str, ...] = ()


def _envelope(fmt: str, body: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "format": fmt,
        "schema_version": PROTOCOL_SCHEMA_VERSION,
        "fingerprint": environment_fingerprint(),
        "checksum": _digest(_canonical(body)),
        "body": body,
    }


def _open_envelope(payload: Mapping[str, Any], fmt: str) -> Dict[str, Any]:
    """Verify an envelope's format/version/fingerprint/checksum; return
    its body. Every rejection names the drift so operators can act."""
    if not isinstance(payload, Mapping):
        raise WorkUnitError(f"envelope must be a JSON object, got {type(payload).__name__}")
    got_fmt = payload.get("format")
    if got_fmt != fmt:
        raise WorkUnitError(f"not a {fmt} envelope (format={got_fmt!r})")
    version = payload.get("schema_version")
    if version != PROTOCOL_SCHEMA_VERSION:
        raise WorkUnitError(
            f"stale envelope: schema version {version!r}, "
            f"this build speaks {PROTOCOL_SCHEMA_VERSION}"
        )
    expected = environment_fingerprint()
    found = payload.get("fingerprint") or {}
    drift = sorted(
        key
        for key in set(expected) | set(found)
        if expected.get(key) != found.get(key)
    )
    if drift:
        detail = ", ".join(
            f"{key}: envelope={found.get(key)!r} here={expected.get(key)!r}"
            for key in drift
        )
        raise WorkUnitError(f"environment fingerprint mismatch ({detail})")
    body = payload.get("body")
    if not isinstance(body, Mapping):
        raise WorkUnitError("envelope has no body")
    if _digest(_canonical(body)) != payload.get("checksum"):
        raise WorkUnitError("envelope checksum mismatch: body corrupted in transit")
    return dict(body)


def work_unit_to_payload(unit: ShardWorkUnit) -> Dict[str, Any]:
    body = {
        "shard": unit.shard,
        "plan": {"shards": unit.plan.shards, "pinned": dict(unit.plan.pinned)},
        "blocking": unit.blocking,
        "comparator": unit.comparator,
        "decider": unit.decider,
        "scoring": unit.scoring,
        "cache_size": unit.cache_size,
        "external": unit.external_payload,
        "local_fingerprint": unit.local_fingerprint,
        "local": unit.local_payload,
        "fields": list(unit.fields),
    }
    return _envelope(WORK_UNIT_FORMAT, body)


def work_unit_from_payload(payload: Mapping[str, Any]) -> ShardWorkUnit:
    body = _open_envelope(payload, WORK_UNIT_FORMAT)
    try:
        plan = ShardPlan(
            shards=body["plan"]["shards"], pinned=dict(body["plan"]["pinned"])
        )
        unit = ShardWorkUnit(
            shard=body["shard"],
            plan=plan,
            blocking=dict(body["blocking"]),
            comparator=[dict(entry) for entry in body["comparator"]],
            decider=dict(body["decider"]),
            scoring=body["scoring"],
            cache_size=body["cache_size"],
            external_payload=body["external"],
            local_fingerprint=body["local_fingerprint"],
            local_payload=body["local"],
            fields=tuple(body["fields"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WorkUnitError(f"malformed work-unit body: {exc}") from exc
    expected_fields = tuple(sorted(entry["field"] for entry in unit.comparator))
    if unit.fields != expected_fields:
        raise WorkUnitError(
            f"vocabulary pin mismatch: unit pins {unit.fields}, "
            f"comparator spec names {expected_fields}"
        )
    return unit


def encode_work_unit(unit: ShardWorkUnit) -> str:
    return json.dumps(work_unit_to_payload(unit))


def decode_work_unit(text: str) -> ShardWorkUnit:
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise WorkUnitError(f"work unit is not valid JSON: {exc}") from exc
    return work_unit_from_payload(payload)


def _group_key_to_wire(key: GroupKey) -> Any:
    return list(key) if isinstance(key, tuple) else key


def _group_key_from_wire(wire: Any) -> GroupKey:
    return tuple(wire) if isinstance(wire, list) else wire


def _wire_to_payload(wire: DecisionWire) -> List[Any]:
    ext_id, local_id, similarities, aggregate, status, score = wire
    return [
        term_to_payload(ext_id),
        term_to_payload(local_id),
        dict(similarities),
        aggregate,
        status,
        score,
    ]


def _wire_from_payload(payload: List[Any]) -> DecisionWire:
    ext_id, local_id, similarities, aggregate, status, score = payload
    return (
        term_from_payload(ext_id),
        term_from_payload(local_id),
        dict(similarities),
        aggregate,
        status,
        score,
    )


def worker_result_to_payload(outcome: ShardOutcome) -> Dict[str, Any]:
    """A :class:`ShardOutcome` as a WorkerResult envelope payload.

    Group sort keys cross unchanged (ints stay ints, tuples become
    JSON arrays and are restored) — they are the merge coordinates the
    parent's k-way merge folds by, and the whole byte-identity argument
    rests on them surviving the wire exactly.
    """
    body = {
        "shard": outcome.shard,
        "groups": [
            [
                _group_key_to_wire(key),
                [[term_to_payload(a), term_to_payload(b)] for a, b in pairs],
                [_wire_to_payload(wire) for wire in wires],
            ]
            for key, pairs, wires in outcome.groups
        ],
        "compared": outcome.compared,
        "match_ext_ids": [term_to_payload(term) for term in outcome.match_ext_ids],
        "cache_hits": outcome.cache_hits,
        "cache_misses": outcome.cache_misses,
        "batch_hits": outcome.batch_hits,
        "batch_misses": outcome.batch_misses,
        "batch_profiles": outcome.batch_profiles,
    }
    return _envelope(WORKER_RESULT_FORMAT, body)


def worker_result_from_payload(payload: Mapping[str, Any]) -> ShardOutcome:
    body = _open_envelope(payload, WORKER_RESULT_FORMAT)
    try:
        groups = [
            (
                _group_key_from_wire(key),
                [(term_from_payload(a), term_from_payload(b)) for a, b in pairs],
                [_wire_from_payload(wire) for wire in wires],
            )
            for key, pairs, wires in body["groups"]
        ]
        return ShardOutcome(
            shard=body["shard"],
            groups=groups,
            compared=body["compared"],
            match_ext_ids=[term_from_payload(t) for t in body["match_ext_ids"]],
            cache_hits=body["cache_hits"],
            cache_misses=body["cache_misses"],
            batch_hits=body["batch_hits"],
            batch_misses=body["batch_misses"],
            batch_profiles=body["batch_profiles"],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WorkUnitError(f"malformed worker-result body: {exc}") from exc


def encode_worker_result(outcome: ShardOutcome) -> str:
    return json.dumps(worker_result_to_payload(outcome))


def decode_worker_result(text: str) -> ShardOutcome:
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise WorkUnitError(f"worker result is not valid JSON: {exc}") from exc
    return worker_result_from_payload(payload)


# ---------------------------------------------------------------------------
# building and executing units
# ---------------------------------------------------------------------------


def build_work_units(
    blocking: BlockingMethod,
    comparator: RecordComparator,
    decider: Decider,
    external: RecordStore,
    local: RecordStore,
    plan: ShardPlan,
    scoring: str,
    cache_size: int,
    inline_local: bool = True,
) -> List[ShardWorkUnit]:
    """One unit per plan shard; shared payloads are built exactly once."""
    blocking_spec = blocking_to_spec(blocking)
    comparator_spec = comparator_to_spec(comparator)
    decider_spec = decider_to_spec(decider)
    external_payload = record_store_to_payload(external)
    local_payload = record_store_to_payload(local)
    fingerprint = _digest(_canonical(local_payload))
    fields = tuple(sorted(entry["field"] for entry in comparator_spec))
    return [
        ShardWorkUnit(
            shard=shard,
            plan=plan,
            blocking=blocking_spec,
            comparator=comparator_spec,
            decider=decider_spec,
            scoring=scoring,
            cache_size=cache_size,
            external_payload=external_payload,
            local_fingerprint=fingerprint,
            local_payload=local_payload if inline_local else None,
            fields=fields,
        )
        for shard in range(plan.shards)
    ]


def execute_work_unit(
    unit: ShardWorkUnit, local: Optional[RecordStore] = None
) -> ShardOutcome:
    """Run one deserialized unit and return its shard outcome.

    With *local* the worker folds against its resident store — after
    verifying the unit's fingerprint pins exactly that store. Without
    one the unit must carry the store inline.
    """
    if local is not None:
        found = store_fingerprint(local)
        if found != unit.local_fingerprint:
            raise WorkUnitError(
                "local store fingerprint mismatch: unit was built against "
                f"{unit.local_fingerprint[:12]}…, this worker holds {found[:12]}…"
            )
    elif unit.local_payload is not None:
        local = record_store_from_payload(unit.local_payload)
    else:
        raise WorkUnitError(
            "work unit carries no inline local store and no resident store "
            "was provided"
        )
    external = record_store_from_payload(unit.external_payload)
    blocking = blocking_from_spec(unit.blocking)
    comparator = comparator_from_spec(unit.comparator)
    decider = decider_from_spec(unit.decider)
    cache = CachedRecordComparator(comparator, unit.cache_size)
    scorer = (
        BatchScorer(comparator, decider) if unit.scoring == "batched" else None
    )
    return run_shard_scan(
        blocking, external, local, cache, decider, unit.plan, unit.shard, scorer
    )
