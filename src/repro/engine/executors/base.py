"""Executor protocol, registry, and the shared fold machinery.

An :class:`Executor` is one strategy for draining a blocking method's
candidate stream through compare-and-decide workers and folding the
outcomes back into a result. The registry makes the strategy set open:
``JobConfig`` validates against whatever is registered, so third-party
executors (a GPU scorer, a remote fan-out) plug in without touching the
engine — ``register_executor`` is the only coupling point.

The contract every executor must honor is the byte-identity invariant:
for the same inputs, its fold must produce the same matches, the same
possible decisions, the same candidate-pair log, in the same order as
the serial path. Chunk executors get this by folding chunk outcomes in
submission order; shard-plan executors by merging sort-key-tagged
groups back into serial emission order (see
:func:`repro.engine.shard.merge_shard_groups`).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Protocol, Tuple, TYPE_CHECKING

from repro.linking.blocking import BlockingMethod
from repro.linking.comparators import ComparisonVector, RecordComparator
from repro.linking.matchers import MatchDecision, MatchStatus
from repro.linking.records import RecordStore
from repro.rdf.terms import Term

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from repro.engine.batch import BatchScorer
    from repro.engine.cache import CachedRecordComparator
    from repro.engine.job import JobConfig

Pair = Tuple[Term, Term]

#: Wire format of one non-NON_MATCH decision: (external id, local id,
#: per-field similarities, aggregate, status value, score). Plain tuples
#: keep process pickles and work-unit JSON small.
DecisionWire = Tuple[Term, Term, Dict[str, float], float, str, float]


class Decider(Protocol):
    """Anything with ``decide(vector) -> MatchDecision``."""

    def decide(self, vector: ComparisonVector) -> MatchDecision: ...


@dataclass
class ChunkOutcome:
    """What one worker produced for one chunk."""

    pairs: List[Pair]
    decisions: List[DecisionWire]
    cache_hits: int
    cache_misses: int
    batch_hits: int = 0
    batch_misses: int = 0
    batch_profiles: int = 0


def update_best_match(best: Dict[Term, MatchDecision], decision: MatchDecision) -> None:
    """One step of the Unique Name Assumption fold: keep the top-scoring
    match per external record, score ties broken by the lexicographically
    smallest local id.

    The tie-break is deliberately a function of the decision *set*, not
    of arrival order — "first seen wins" was only executor-invariant
    because every fold happened to be chunk-ordered, and the shard
    executor's block-ordered generation would have broken it. With the
    explicit ``(score desc, local id asc)`` ordering, any fold order
    over the same decisions selects the same winner.

    Shared by the batch fold and the streaming replay
    (:meth:`~repro.engine.streaming.StreamingLinkingJob.result`) — the
    byte-identity guarantee between the two modes rests on both
    executing exactly this selection.
    """
    ext_id = decision.vector.left.id
    incumbent = best.get(ext_id)
    if incumbent is None or decision.score > incumbent.score:
        best[ext_id] = decision
    elif decision.score == incumbent.score and str(decision.vector.right.id) < str(
        incumbent.vector.right.id
    ):
        best[ext_id] = decision


class FoldState:
    """Folds chunk (or merged shard) outcomes — in order — into results.

    Replicates the serial pipeline's matching semantics exactly: under
    ``best_match_only`` score ties break on the smallest local id (see
    :func:`update_best_match`), and the final match order is
    first-occurrence order of the external ids.
    """

    def __init__(
        self, external: RecordStore, local: RecordStore, best_only: bool
    ) -> None:
        self._external = external
        self._local = local
        self._best_only = best_only
        self._best: Dict[Term, MatchDecision] = {}
        self.matches: List[MatchDecision] = []
        self.possible: List[MatchDecision] = []
        self.candidate_pairs: List[Pair] = []
        self.compared = 0
        self.chunks_done = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.batch_hits = 0
        self.batch_misses = 0
        self.batch_profiles = 0
        # transport counters: work units that crossed a serialization
        # boundary (the ``worker`` executor), and the bytes they cost
        self.work_units = 0
        self.work_unit_bytes = 0

    def fold(self, outcome: ChunkOutcome) -> None:
        self.compared += len(outcome.pairs)
        self.candidate_pairs.extend(outcome.pairs)
        self.cache_hits += outcome.cache_hits
        self.cache_misses += outcome.cache_misses
        self.batch_hits += outcome.batch_hits
        self.batch_misses += outcome.batch_misses
        self.batch_profiles += outcome.batch_profiles
        self.fold_decisions(outcome.decisions)
        self.chunks_done += 1

    def fold_decisions(self, decisions: List[DecisionWire]) -> None:
        for ext_id, local_id, similarities, aggregate, status, score in decisions:
            vector = ComparisonVector(
                left=self._external.get(ext_id),
                right=self._local.get(local_id),
                similarities=similarities,
                aggregate=aggregate,
            )
            decision = MatchDecision(
                vector=vector, status=MatchStatus(status), score=score
            )
            if decision.status is MatchStatus.MATCH:
                if self._best_only:
                    update_best_match(self._best, decision)
                else:
                    self.matches.append(decision)
            else:
                self.possible.append(decision)

    def match_count(self) -> int:
        return len(self._best) if self._best_only else len(self.matches)

    def final_matches(self) -> List[MatchDecision]:
        return list(self._best.values()) if self._best_only else self.matches


@dataclass
class ExecutionRequest:
    """Everything an executor needs for one linking run.

    ``handle`` is the parent-side fold-and-progress callback chunk
    executors must call — in submission order — with every
    :class:`ChunkOutcome`; shard-plan executors fold through
    ``fold`` directly (see :mod:`repro.engine.executors.sharded`).
    """

    blocking: BlockingMethod
    comparator: RecordComparator
    decider: Decider
    external: RecordStore
    local: RecordStore
    fold: FoldState
    config: "JobConfig"
    scoring: str
    workers: int
    cache_size: int
    handle: Callable[[ChunkOutcome], None]
    started: float
    shared_cache: Optional["CachedRecordComparator"] = None
    batch_scorer: Optional["BatchScorer"] = None


class Executor(abc.ABC):
    """One execution strategy, registered by ``name``.

    Subclasses override:

    * ``collapses_single_worker`` — whether a resolved worker count
      below 2 should collapse the strategy to ``serial`` (the pool
      executors: parallelism is their only value). The ``worker``
      executor keeps running at 1 worker — its value is the
      serialization boundary, not the parallelism;
    * ``uses_shard_plan`` — whether the strategy partitions the
      blocking key space (drives ``shard_count`` reporting and the
      skip of the parent-side index-stats probe, which would be stale
      for in-worker candidate generation);
    * ``fallback`` — the strategy to degrade to when
      :meth:`unsupported_reason` vetoes this one for a given job.
    """

    name: str = ""
    collapses_single_worker: bool = True
    uses_shard_plan: bool = False
    fallback: Optional[str] = None

    def unsupported_reason(
        self,
        blocking: BlockingMethod,
        comparator: RecordComparator,
        decider: Decider,
    ) -> Optional[str]:
        """Why this executor cannot run the job (``None`` = it can)."""
        return None

    @abc.abstractmethod
    def execute(self, request: ExecutionRequest) -> Tuple[int, int]:
        """Run the job, folding through the request; return the run's
        similarity-cache ``(hits, misses)``."""


_REGISTRY: Dict[str, Executor] = {}

#: ``auto`` is a resolution mode, not a strategy: it picks a registered
#: executor from the machine shape (see ``JobConfig.resolved_executor``).
AUTO = "auto"


def register_executor(executor: Executor, replace: bool = False) -> Executor:
    """Register *executor* under its ``name``; returns it (decorator-friendly)."""
    name = executor.name
    if not name or name == AUTO:
        raise ValueError(f"executor needs a non-reserved name, got {name!r}")
    if name in _REGISTRY and not replace:
        raise ValueError(f"executor {name!r} is already registered")
    _REGISTRY[name] = executor
    return executor


def get_executor(name: str) -> Executor:
    """The registered executor for *name*."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown executor {name!r}; registered: {executor_names()}"
        ) from None


def executor_names() -> Tuple[str, ...]:
    """Live registry contents (registration order) plus ``auto``."""
    return tuple(_REGISTRY) + (AUTO,)
