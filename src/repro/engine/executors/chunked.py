"""Chunk executors: serial, thread-pool and process-pool strategies.

The parent drains the blocking method's candidate stream into fixed-size
chunks, workers compare-and-decide each chunk, and the parent folds the
outcomes back in submission order. The candidate stream is never
materialized: chunks are submitted with a bounded in-flight window, so
memory stays proportional to ``workers * chunk_size``.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import Executor as PoolExecutor
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterator, List, Optional, Tuple

from repro.engine.batch import BatchScorer
from repro.engine.cache import CachedRecordComparator
from repro.engine.executors.base import (
    ChunkOutcome,
    Decider,
    ExecutionRequest,
    Executor,
    Pair,
)
from repro.linking.comparators import RecordComparator
from repro.linking.matchers import MatchStatus
from repro.linking.records import RecordStore


class ChunkRunner:
    """Compares and decides the pairs of a chunk against two stores."""

    def __init__(
        self,
        external: RecordStore,
        local: RecordStore,
        comparator: RecordComparator,
        decider: Decider,
        cache_size: int,
        thread_safe: bool = False,
        shared_cache: Optional[CachedRecordComparator] = None,
        scoring: str = "pairwise",
        scorer: Optional[BatchScorer] = None,
    ) -> None:
        self._external = external
        self._local = local
        # a caller-provided warm cache survives across runs and deltas;
        # without one the runner builds its own, cold. Batched runs
        # keep the instance for the counter API but never consult it —
        # its hit/miss counters stay at this run's starting values.
        self.comparator = shared_cache or CachedRecordComparator(
            comparator, cache_size, thread_safe=thread_safe
        )
        self.scorer = scorer
        if scoring == "batched" and self.scorer is None:
            self.scorer = BatchScorer(comparator, decider, thread_safe=thread_safe)
        self._decider = decider

    def run_chunk(self, pairs: List[Pair]) -> ChunkOutcome:
        if self.scorer is not None:
            return self._run_chunk_batched(pairs)
        compared: List[Pair] = []
        decisions: List = []
        cache = self.comparator
        hits_before, misses_before = cache.cache_hits, cache.cache_misses
        for ext_id, local_id in pairs:
            left = self._external.get(ext_id)
            right = self._local.get(local_id)
            if left is None or right is None:
                continue
            vector = cache.compare(left, right)
            decision = self._decider.decide(vector)
            compared.append((ext_id, local_id))
            if decision.status is not MatchStatus.NON_MATCH:
                decisions.append(
                    (
                        ext_id,
                        local_id,
                        dict(vector.similarities),
                        vector.aggregate,
                        decision.status.value,
                        decision.score,
                    )
                )
        return ChunkOutcome(
            pairs=compared,
            decisions=decisions,
            cache_hits=cache.cache_hits - hits_before,
            cache_misses=cache.cache_misses - misses_before,
        )

    def _run_chunk_batched(self, pairs: List[Pair]) -> ChunkOutcome:
        scorer = self.scorer
        hits_before, misses_before = scorer.pair_hits, scorer.pair_misses
        profiles_before = scorer.profile_count
        compared, decisions = scorer.score_chunk(pairs, self._external, self._local)
        # per-chunk deltas, exact for serial and per-process workers
        # (the thread executor overwrites fold totals with the shared
        # scorer's run-lifetime deltas — see _LocalExecutor.execute)
        return ChunkOutcome(
            pairs=compared,
            decisions=decisions,
            cache_hits=0,
            cache_misses=0,
            batch_hits=scorer.pair_hits - hits_before,
            batch_misses=scorer.pair_misses - misses_before,
            batch_profiles=scorer.profile_count - profiles_before,
        )


# Per-process worker state, set once by the pool initializer. With the
# default fork start method on Linux the stores are inherited, not
# pickled, so initialization is cheap even for large catalogs.
_WORKER_RUNNER: Optional[ChunkRunner] = None


def _init_process_worker(
    external: RecordStore,
    local: RecordStore,
    comparator: RecordComparator,
    decider: Decider,
    cache_size: int,
    scoring: str = "pairwise",
) -> None:
    global _WORKER_RUNNER
    _WORKER_RUNNER = ChunkRunner(
        external, local, comparator, decider, cache_size, scoring=scoring
    )


def _run_process_chunk(pairs: List[Pair]) -> ChunkOutcome:
    if _WORKER_RUNNER is None:
        raise RuntimeError("process worker used before initialization")
    return _WORKER_RUNNER.run_chunk(pairs)


def chunk_pairs(pairs: Iterator[Pair], size: int) -> Iterator[List[Pair]]:
    """Drain an iterator of pairs into lists of at most *size*."""
    chunk: List[Pair] = []
    for pair in pairs:
        chunk.append(pair)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def pump(
    pool: PoolExecutor,
    fn: Callable[[List[Pair]], ChunkOutcome],
    chunks: Iterator[List[Pair]],
    handle: Callable[[ChunkOutcome], None],
    workers: int,
) -> None:
    """Submit chunks with a bounded in-flight window; fold in order.

    The window keeps all workers busy without materializing the whole
    candidate stream as pending futures (``Executor.map`` would submit
    everything up front).
    """
    window = max(2, workers * 4)
    pending: "deque" = deque()
    for chunk in chunks:
        pending.append(pool.submit(fn, chunk))
        if len(pending) >= window:
            handle(pending.popleft().result())
    while pending:
        handle(pending.popleft().result())


class _LocalExecutor(Executor):
    """Shared serial/thread strategy: one in-process :class:`ChunkRunner`."""

    threaded = False

    def execute(self, request: ExecutionRequest) -> Tuple[int, int]:
        chunks = chunk_pairs(
            request.blocking.candidate_pairs(request.external, request.local),
            request.config.chunk_size,
        )
        shared = request.shared_cache
        if shared is not None and self.threaded and not shared.thread_safe:
            # an unsynchronized warm cache cannot serve a thread pool;
            # fall back to a fresh per-job thread-safe cache
            shared = None
        scorer = None
        if request.scoring == "batched":
            scorer = request.batch_scorer
            if scorer is not None and self.threaded and not scorer.thread_safe:
                # same rule as the warm cache: an unguarded shared scorer
                # cannot serve a thread pool
                scorer = None
        runner = ChunkRunner(
            request.external,
            request.local,
            request.comparator,
            request.decider,
            request.cache_size,
            thread_safe=self.threaded,
            shared_cache=shared,
            scoring=request.scoring,
            scorer=scorer,
        )
        # the comparator (and scorer) may be warm from earlier runs:
        # report this run's lookups, not lifetime totals
        hits_before = runner.comparator.cache_hits
        misses_before = runner.comparator.cache_misses
        if runner.scorer is not None:
            batch_hits_before = runner.scorer.pair_hits
            batch_misses_before = runner.scorer.pair_misses
            batch_profiles_before = runner.scorer.profile_count
        if self.threaded:
            with ThreadPoolExecutor(max_workers=request.workers) as pool:
                pump(pool, runner.run_chunk, chunks, request.handle, request.workers)
        else:
            for chunk in chunks:
                request.handle(runner.run_chunk(chunk))
        fold = request.fold
        if runner.scorer is not None:
            # the scorer is shared across the pool, so per-chunk delta
            # snapshots may interleave under threads: overwrite the fold
            # totals with the exact run-lifetime deltas
            fold.batch_hits = runner.scorer.pair_hits - batch_hits_before
            fold.batch_misses = runner.scorer.pair_misses - batch_misses_before
            fold.batch_profiles = runner.scorer.profile_count - batch_profiles_before
        # shared cache: exact per-run deltas live on the runner's comparator
        return (
            runner.comparator.cache_hits - hits_before,
            runner.comparator.cache_misses - misses_before,
        )


class SerialExecutor(_LocalExecutor):
    name = "serial"
    threaded = False


class ThreadExecutor(_LocalExecutor):
    name = "thread"
    threaded = True


class ProcessExecutor(Executor):
    """Chunks fanned over a :class:`ProcessPoolExecutor` (fork-friendly)."""

    name = "process"

    def execute(self, request: ExecutionRequest) -> Tuple[int, int]:
        chunks = chunk_pairs(
            request.blocking.candidate_pairs(request.external, request.local),
            request.config.chunk_size,
        )
        with ProcessPoolExecutor(
            max_workers=request.workers,
            initializer=_init_process_worker,
            initargs=(
                request.external,
                request.local,
                request.comparator,
                request.decider,
                request.cache_size,
                request.scoring,
            ),
        ) as pool:
            pump(pool, _run_process_chunk, chunks, request.handle, request.workers)
        # per-worker caches: totals are the summed per-chunk deltas
        fold = request.fold
        return fold.cache_hits, fold.cache_misses
