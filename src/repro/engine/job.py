"""The batch linking engine: streaming, chunked, parallel execution.

:class:`LinkingJob` is the execution substrate under every linking run:
candidate pairs from a blocking method are drained into fixed-size
chunks, each chunk is compared and decided by a worker (per-attribute
similarities memoized through :class:`CachedRecordComparator`), and the
chunk outcomes are folded back — in chunk order — into one
:class:`~repro.linking.pipeline.LinkingResult`. The candidate stream is
never materialized: chunks are submitted with a bounded in-flight
window, so memory stays proportional to ``workers * chunk_size`` plus
the compared-pair log the result keeps anyway.

Because workers only *compare and decide* while the fold happens in the
parent, the result is independent of the executor: serial, thread and
process execution produce identical matches, in identical order. Pool
bringup and transport failures (an unpicklable payload, a sandbox that
forbids subprocesses) fall back to serial execution and record why in
:class:`~repro.engine.stats.EngineStats`; errors raised by comparator or
matcher code propagate unchanged.

The ``shard`` executor inverts the decomposition: instead of the parent
generating every candidate pair and pickling chunks to workers, a
:class:`~repro.engine.shard.ShardPlan` partitions the blocking method's
*key space* and each process worker generates the candidates of its own
shards in-worker (stores inherited via fork — zero pair pickling; only
compact :data:`DecisionWire` results cross the process boundary). The
parent folds shard outcomes in deterministic shard order and merges the
sort-key-tagged groups back into serial emission order, so the result
is byte-identical to the serial path. Every registered blocking method
implements the per-key block decomposition (see
:meth:`~repro.linking.blocking.BlockingMethod.supports_sharding`);
duck-typed blocking doubles that do not degrade to the ``process``
executor with the reason recorded.
"""

from __future__ import annotations

import os
import pickle
import time
from collections import deque
from concurrent.futures import BrokenExecutor, Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Protocol, Tuple

from repro.engine.batch import BatchScorer
from repro.engine.cache import DEFAULT_CACHE_SIZE, CachedRecordComparator
from repro.engine.shard import ShardOutcome, ShardPlan, merge_shard_groups
from repro.engine.stats import EngineProgress, EngineStats
from repro.linking.blocking import BlockingMethod
from repro.linking.comparators import ComparisonVector, RecordComparator
from repro.linking.matchers import MatchDecision, MatchStatus
from repro.linking.pipeline import LinkingResult
from repro.linking.records import RecordStore
from repro.rdf.terms import Term

Pair = Tuple[Term, Term]

#: Wire format of one non-NON_MATCH decision: (external id, local id,
#: per-field similarities, aggregate, status value, score). Plain tuples
#: keep the process executor's result pickles small.
DecisionWire = Tuple[Term, Term, Dict[str, float], float, str, float]

EXECUTORS = ("serial", "thread", "process", "shard", "auto")

#: Scoring paths: per-pair comparator dispatch, or the columnar
#: batched scorer (see :mod:`repro.engine.batch`) — byte-identical
#: output, memoized per record profile pair.
SCORING = ("pairwise", "batched")


def available_cpu_count() -> int:
    """CPUs actually available to this process.

    ``os.cpu_count()`` reports the machine, not the process: in
    cgroup- or affinity-limited environments (CI containers, ``taskset``
    launches) it overcounts, and a worker pool sized from it thrashes.
    Prefer the scheduler affinity mask where the platform exposes it.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            affinity = getaffinity(0)
        except OSError:  # pragma: no cover - platform quirk
            affinity = None
        if affinity:
            return len(affinity)
    return os.cpu_count() or 1

#: Pool-bringup and transport failures that trigger the serial fallback.
#: Deliberately narrow: errors raised by comparator/matcher/progress code
#: are bugs and must propagate, not silently rerun the job serially. An
#: OSError is ambiguous (fork failure vs. user I/O), so the fallback
#: additionally requires that no chunk completed yet — see ``run``.
FALLBACK_ERRORS = (OSError, BrokenExecutor, pickle.PicklingError)


class Decider(Protocol):
    """Anything with ``decide(vector) -> MatchDecision``."""

    def decide(self, vector: ComparisonVector) -> MatchDecision: ...


@dataclass(frozen=True)
class JobConfig:
    """Execution knobs of a :class:`LinkingJob`.

    * ``chunk_size`` — candidate pairs per work unit (chunk executors);
    * ``executor`` — ``serial``, ``thread``, ``process``, ``shard``
      (block-parallel: workers generate their own shards' candidates
      in-worker) or ``auto`` (process when more than one CPU is
      available);
    * ``workers`` — worker count (default: the CPUs *available* to the
      process, affinity/cgroup aware); 1 runs serially;
    * ``shards`` — key-space shard count for the ``shard`` executor
      (default: the resolved worker count). More shards than workers
      queue on the pool — useful when per-shard load is skewed; the
      setting is inert under the other executors;
    * ``cache_size`` — LRU capacity of the similarity cache per worker
      (0 disables memoization);
    * ``scoring`` — ``pairwise`` (per-pair comparator dispatch) or
      ``batched`` (the columnar scorer of :mod:`repro.engine.batch`:
      interned value columns, per-profile-pair memoization —
      byte-identical output, works under every executor);
    * ``best_match_only`` — keep only the top-scoring match per external
      record (the Unique Name Assumption);
    * ``on_progress`` — called with an :class:`EngineProgress` after
      every folded chunk.
    """

    chunk_size: int = 1024
    executor: str = "serial"
    workers: Optional[int] = None
    shards: Optional[int] = None
    cache_size: int = DEFAULT_CACHE_SIZE
    scoring: str = "pairwise"
    best_match_only: bool = True
    on_progress: Optional[Callable[[EngineProgress], None]] = None

    def __post_init__(self) -> None:
        if self.chunk_size < 1:
            raise ValueError(f"chunk size must be >= 1, got {self.chunk_size}")
        if self.executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}, got {self.executor!r}"
            )
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.shards is not None and self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.cache_size < 0:
            raise ValueError(f"cache size must be >= 0, got {self.cache_size}")
        if self.scoring not in SCORING:
            raise ValueError(
                f"scoring must be one of {SCORING}, got {self.scoring!r}"
            )

    def resolved_workers(self) -> int:
        """The worker count to use (available CPUs when unset)."""
        if self.workers is not None:
            return self.workers
        return max(1, available_cpu_count())

    def resolved_shards(self) -> int:
        """The shard executor's key-space shard count (workers when
        unset — one shard per worker)."""
        if self.shards is not None:
            return self.shards
        return self.resolved_workers()

    def resolved_executor(self) -> str:
        """The concrete strategy (``auto`` resolved, 1 worker = serial)."""
        executor = self.executor
        if executor == "auto":
            executor = "process" if self.resolved_workers() > 1 else "serial"
        if executor != "serial" and self.resolved_workers() < 2:
            executor = "serial"
        return executor


@dataclass
class _ChunkOutcome:
    """What one worker produced for one chunk."""

    pairs: List[Pair]
    decisions: List[DecisionWire]
    cache_hits: int
    cache_misses: int
    batch_hits: int = 0
    batch_misses: int = 0
    batch_profiles: int = 0


class _ChunkRunner:
    """Compares and decides the pairs of a chunk against two stores."""

    def __init__(
        self,
        external: RecordStore,
        local: RecordStore,
        comparator: RecordComparator,
        decider: Decider,
        cache_size: int,
        thread_safe: bool = False,
        shared_cache: Optional[CachedRecordComparator] = None,
        scoring: str = "pairwise",
        scorer: Optional[BatchScorer] = None,
    ) -> None:
        self._external = external
        self._local = local
        # a caller-provided warm cache survives across runs and deltas;
        # without one the runner builds its own, cold. Batched runs
        # keep the instance for the counter API but never consult it —
        # its hit/miss counters stay at this run's starting values.
        self.comparator = shared_cache or CachedRecordComparator(
            comparator, cache_size, thread_safe=thread_safe
        )
        self.scorer = scorer
        if scoring == "batched" and self.scorer is None:
            self.scorer = BatchScorer(comparator, decider, thread_safe=thread_safe)
        self._decider = decider

    def run_chunk(self, pairs: List[Pair]) -> _ChunkOutcome:
        if self.scorer is not None:
            return self._run_chunk_batched(pairs)
        compared: List[Pair] = []
        decisions: List[DecisionWire] = []
        cache = self.comparator
        hits_before, misses_before = cache.cache_hits, cache.cache_misses
        for ext_id, local_id in pairs:
            left = self._external.get(ext_id)
            right = self._local.get(local_id)
            if left is None or right is None:
                continue
            vector = cache.compare(left, right)
            decision = self._decider.decide(vector)
            compared.append((ext_id, local_id))
            if decision.status is not MatchStatus.NON_MATCH:
                decisions.append(
                    (
                        ext_id,
                        local_id,
                        dict(vector.similarities),
                        vector.aggregate,
                        decision.status.value,
                        decision.score,
                    )
                )
        return _ChunkOutcome(
            pairs=compared,
            decisions=decisions,
            cache_hits=cache.cache_hits - hits_before,
            cache_misses=cache.cache_misses - misses_before,
        )

    def _run_chunk_batched(self, pairs: List[Pair]) -> _ChunkOutcome:
        scorer = self.scorer
        hits_before, misses_before = scorer.pair_hits, scorer.pair_misses
        profiles_before = scorer.profile_count
        compared, decisions = scorer.score_chunk(pairs, self._external, self._local)
        # per-chunk deltas, exact for serial and per-process workers
        # (the thread executor overwrites fold totals with the shared
        # scorer's run-lifetime deltas — see LinkingJob._attempt)
        return _ChunkOutcome(
            pairs=compared,
            decisions=decisions,
            cache_hits=0,
            cache_misses=0,
            batch_hits=scorer.pair_hits - hits_before,
            batch_misses=scorer.pair_misses - misses_before,
            batch_profiles=scorer.profile_count - profiles_before,
        )


# Per-process worker state, set once by the pool initializer. With the
# default fork start method on Linux the stores are inherited, not
# pickled, so initialization is cheap even for large catalogs.
_WORKER_RUNNER: Optional[_ChunkRunner] = None


def _init_process_worker(
    external: RecordStore,
    local: RecordStore,
    comparator: RecordComparator,
    decider: Decider,
    cache_size: int,
    scoring: str = "pairwise",
) -> None:
    global _WORKER_RUNNER
    _WORKER_RUNNER = _ChunkRunner(
        external, local, comparator, decider, cache_size, scoring=scoring
    )


def _run_process_chunk(pairs: List[Pair]) -> _ChunkOutcome:
    if _WORKER_RUNNER is None:
        raise RuntimeError("process worker used before initialization")
    return _WORKER_RUNNER.run_chunk(pairs)


# Per-process shard-executor state, set once by the pool initializer:
# (blocking, external, local, cached comparator, decider, plan). As with
# chunk workers, fork inheritance makes this free on Linux.
_SHARD_STATE: Optional[tuple] = None


def _init_shard_worker(
    blocking: BlockingMethod,
    external: RecordStore,
    local: RecordStore,
    comparator: RecordComparator,
    decider: Decider,
    cache_size: int,
    plan: ShardPlan,
    scoring: str = "pairwise",
) -> None:
    global _SHARD_STATE
    cache = CachedRecordComparator(comparator, cache_size)
    scorer = BatchScorer(comparator, decider) if scoring == "batched" else None
    _SHARD_STATE = (blocking, external, local, cache, decider, plan, scorer)


#: Group sentinel: distinct from every sort key a blocking method can
#: emit (keys are ints or int tuples), so the first pair always opens a
#: fresh group.
_NO_GROUP = object()


def _run_shard_worker(shard: int) -> ShardOutcome:
    """Generate, compare and decide one shard's candidates in-worker.

    Pairs are drawn lazily from the blocking method's per-key block
    iteration — the candidate stream never exists in the parent — and
    runs of consecutive equal sort keys become one group, so the parent
    can merge shard outcomes back into serial comparison order.
    """
    if _SHARD_STATE is None:
        raise RuntimeError("shard worker used before initialization")
    blocking, external, local, cache, decider, plan, scorer = _SHARD_STATE
    hits_before, misses_before = cache.cache_hits, cache.cache_misses
    if scorer is not None:
        batch_hits_before = scorer.pair_hits
        batch_misses_before = scorer.pair_misses
        batch_profiles_before = scorer.profile_count
        left_profiles = scorer.columns_for(external)
        right_profiles = scorer.columns_for(local)
        compiled = scorer.compiled

        def score(ext_id: Term, local_id: Term):
            left_profile = left_profiles.get(ext_id)
            right_profile = right_profiles.get(local_id)
            if left_profile is None or right_profile is None:
                return None
            if compiled:
                return scorer.decision_for(left_profile, right_profile)
            return scorer.decision_for(
                left_profile, right_profile, external.get(ext_id), local.get(local_id)
            )
    else:

        def score(ext_id: Term, local_id: Term):
            left = external.get(ext_id)
            right = local.get(local_id)
            if left is None or right is None:
                return None
            vector = cache.compare(left, right)
            decision = decider.decide(vector)
            return decision.status, decision.score, vector.similarities, vector.aggregate

    groups: List[tuple] = []
    match_ext_ids: List[Term] = []
    compared = 0
    current: object = _NO_GROUP
    pairs: List[Pair] = []
    wires: List[DecisionWire] = []
    for sort_key, ext_id, local_id in blocking.shard_candidate_pairs(
        external, local, plan, shard
    ):
        scored = score(ext_id, local_id)
        if scored is None:
            continue
        if sort_key != current:
            if pairs:
                groups.append((current, pairs, wires))
            current, pairs, wires = sort_key, [], []
        status, decision_score, similarities, aggregate = scored
        pairs.append((ext_id, local_id))
        compared += 1
        if status is not MatchStatus.NON_MATCH:
            wires.append(
                (
                    ext_id,
                    local_id,
                    dict(similarities),
                    aggregate,
                    status.value,
                    decision_score,
                )
            )
            if status is MatchStatus.MATCH:
                match_ext_ids.append(ext_id)
    if pairs:
        groups.append((current, pairs, wires))
    return ShardOutcome(
        shard=shard,
        groups=groups,
        compared=compared,
        match_ext_ids=match_ext_ids,
        cache_hits=cache.cache_hits - hits_before,
        cache_misses=cache.cache_misses - misses_before,
        batch_hits=scorer.pair_hits - batch_hits_before if scorer else 0,
        batch_misses=scorer.pair_misses - batch_misses_before if scorer else 0,
        batch_profiles=scorer.profile_count - batch_profiles_before if scorer else 0,
    )


def _chunked(pairs: Iterator[Pair], size: int) -> Iterator[List[Pair]]:
    """Drain an iterator of pairs into lists of at most *size*."""
    chunk: List[Pair] = []
    for pair in pairs:
        chunk.append(pair)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def update_best_match(best: Dict[Term, MatchDecision], decision: MatchDecision) -> None:
    """One step of the Unique Name Assumption fold: keep the top-scoring
    match per external record, score ties broken by the lexicographically
    smallest local id.

    The tie-break is deliberately a function of the decision *set*, not
    of arrival order — "first seen wins" was only executor-invariant
    because every fold happened to be chunk-ordered, and the shard
    executor's block-ordered generation would have broken it. With the
    explicit ``(score desc, local id asc)`` ordering, any fold order
    over the same decisions selects the same winner.

    Shared by the batch fold and the streaming replay
    (:meth:`~repro.engine.streaming.StreamingLinkingJob.result`) — the
    byte-identity guarantee between the two modes rests on both
    executing exactly this selection.
    """
    ext_id = decision.vector.left.id
    incumbent = best.get(ext_id)
    if incumbent is None or decision.score > incumbent.score:
        best[ext_id] = decision
    elif decision.score == incumbent.score and str(decision.vector.right.id) < str(
        incumbent.vector.right.id
    ):
        best[ext_id] = decision


class _FoldState:
    """Folds chunk (or merged shard) outcomes — in order — into results.

    Replicates the serial pipeline's matching semantics exactly: under
    ``best_match_only`` score ties break on the smallest local id (see
    :func:`update_best_match`), and the final match order is
    first-occurrence order of the external ids.
    """

    def __init__(
        self, external: RecordStore, local: RecordStore, best_only: bool
    ) -> None:
        self._external = external
        self._local = local
        self._best_only = best_only
        self._best: Dict[Term, MatchDecision] = {}
        self.matches: List[MatchDecision] = []
        self.possible: List[MatchDecision] = []
        self.candidate_pairs: List[Pair] = []
        self.compared = 0
        self.chunks_done = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.batch_hits = 0
        self.batch_misses = 0
        self.batch_profiles = 0

    def fold(self, outcome: _ChunkOutcome) -> None:
        self.compared += len(outcome.pairs)
        self.candidate_pairs.extend(outcome.pairs)
        self.cache_hits += outcome.cache_hits
        self.cache_misses += outcome.cache_misses
        self.batch_hits += outcome.batch_hits
        self.batch_misses += outcome.batch_misses
        self.batch_profiles += outcome.batch_profiles
        self.fold_decisions(outcome.decisions)
        self.chunks_done += 1

    def fold_decisions(self, decisions: List[DecisionWire]) -> None:
        for ext_id, local_id, similarities, aggregate, status, score in decisions:
            vector = ComparisonVector(
                left=self._external.get(ext_id),
                right=self._local.get(local_id),
                similarities=similarities,
                aggregate=aggregate,
            )
            decision = MatchDecision(
                vector=vector, status=MatchStatus(status), score=score
            )
            if decision.status is MatchStatus.MATCH:
                if self._best_only:
                    update_best_match(self._best, decision)
                else:
                    self.matches.append(decision)
            else:
                self.possible.append(decision)

    def match_count(self) -> int:
        return len(self._best) if self._best_only else len(self.matches)

    def final_matches(self) -> List[MatchDecision]:
        return list(self._best.values()) if self._best_only else self.matches


class LinkingJob:
    """A complete linking run as a chunked, parallel batch job.

    >>> job = LinkingJob(blocking, comparator, matcher,
    ...                  JobConfig(executor="process", chunk_size=512))
    >>> result = job.run(external_store, local_store)
    >>> result.stats.pairs_per_second
    184223.7
    """

    def __init__(
        self,
        blocking: BlockingMethod,
        comparator: RecordComparator | CachedRecordComparator,
        decider: Decider,
        config: JobConfig | None = None,
        batch_scorer: Optional[BatchScorer] = None,
    ) -> None:
        self._config = config or JobConfig()
        self._cache_size = self._config.cache_size
        self._shared_cache: Optional[CachedRecordComparator] = None
        # a caller-provided warm scorer (the streaming engine owns one
        # per stream) survives across runs, like the shared cache; the
        # process and shard executors ignore it and build per-worker
        # scorers after the fork
        self._batch_scorer = batch_scorer
        if isinstance(comparator, CachedRecordComparator):
            # honor the caller's cache configuration — and keep the
            # instance: the serial and thread paths reuse it directly,
            # so memoized similarities survive across runs (streaming
            # deltas, repeated jobs against one catalog). The process
            # executor still ships the inner comparator and workers
            # build their own per-process caches at the same capacity.
            self._cache_size = comparator.cache_capacity
            self._shared_cache = comparator
            comparator = comparator.inner
        self._blocking = blocking
        self._comparator = comparator
        self._decider = decider

    @property
    def config(self) -> JobConfig:
        """The execution configuration."""
        return self._config

    def _supports_sharding(self) -> bool:
        """Whether the blocking method offers per-key block iteration
        (getattr: duck-typed blocking doubles need not subclass)."""
        supports = getattr(self._blocking, "supports_sharding", None)
        return bool(callable(supports) and supports())

    def run(self, external: RecordStore, local: RecordStore) -> LinkingResult:
        """Execute the job and return the result with engine stats."""
        config = self._config
        started = time.perf_counter()
        executor = config.resolved_executor()
        workers = 1 if executor == "serial" else config.resolved_workers()
        fallbacks: List[str] = []
        if executor == "shard" and not self._supports_sharding():
            # no per-key block decomposition: the chunked process
            # executor is the closest strategy that still parallelizes
            fallbacks.append(
                f"shard: {type(self._blocking).__name__} has no per-key "
                "block decomposition; ran process"
            )
            executor = "process"
        scoring = config.scoring
        if scoring == "batched" and not BatchScorer.supports(self._comparator):
            # a comparator subclass with custom comparison hooks computes
            # something the columnar arithmetic cannot replicate: degrade
            # to the pairwise path rather than silently diverge
            fallbacks.append(
                f"batched: {type(self._comparator).__name__} customizes "
                "per-pair comparison; ran pairwise"
            )
            scoring = "pairwise"
        fold = _FoldState(external, local, config.best_match_only)
        try:
            hits, misses = self._attempt(
                executor, workers, scoring, external, local, fold, started
            )
        except FALLBACK_ERRORS as exc:
            # An OSError after a chunk already completed is more likely a
            # bug in comparator/progress code than pool bringup: propagate
            # rather than silently redoing finished work.
            mid_run_os_error = (
                isinstance(exc, OSError) and fold.chunks_done > 0
            )
            if executor == "serial" or mid_run_os_error:
                raise
            fallbacks.append(f"{type(exc).__name__}: {exc}")
            executor, workers = "serial", 1
            fold = _FoldState(external, local, config.best_match_only)
            hits, misses = self._attempt(
                executor, workers, scoring, external, local, fold, started
            )
        fallback_reason = "; ".join(fallbacks) if fallbacks else None
        elapsed = time.perf_counter() - started
        # index-backed blocking methods report their shared index after
        # the candidate stream has been drained (getattr: duck-typed
        # blocking doubles in tests need not subclass BlockingMethod).
        # Shard runs probe the index in the workers, so the parent-side
        # report would be stale (a previous run's) or empty — skip it
        # rather than misattribute.
        stats_fn = getattr(self._blocking, "index_stats", None)
        index_stats = (
            stats_fn() if callable(stats_fn) and executor != "shard" else None
        )
        stats = EngineStats(
            executor=executor,
            workers=workers,
            chunk_size=config.chunk_size,
            chunk_count=fold.chunks_done,
            pairs_compared=fold.compared,
            elapsed_seconds=elapsed,
            cache_hits=hits,
            cache_misses=misses,
            shard_count=config.resolved_shards() if executor == "shard" else 0,
            fallback_reason=fallback_reason,
            index_build_seconds=index_stats.build_seconds if index_stats else 0.0,
            index_probe_seconds=index_stats.probe_seconds if index_stats else 0.0,
            index_features=index_stats.features if index_stats else 0,
            index_postings=index_stats.postings if index_stats else 0,
            scoring=scoring,
            batch_profiles=fold.batch_profiles,
            batch_pair_hits=fold.batch_hits,
            batch_pair_misses=fold.batch_misses,
        )
        result = LinkingResult(
            matches=fold.final_matches(),
            possible=fold.possible,
            compared=fold.compared,
            naive_pairs=len(external) * len(local),
            stats=stats,
        )
        result._candidate_pairs = fold.candidate_pairs
        return result

    def _attempt(
        self,
        executor: str,
        workers: int,
        scoring: str,
        external: RecordStore,
        local: RecordStore,
        fold: _FoldState,
        started: float,
    ) -> Tuple[int, int]:
        on_progress = self._config.on_progress

        def handle(outcome: _ChunkOutcome) -> None:
            fold.fold(outcome)
            if on_progress is not None:
                on_progress(
                    EngineProgress(
                        chunks_done=fold.chunks_done,
                        pairs_compared=fold.compared,
                        matches=fold.match_count(),
                        elapsed_seconds=time.perf_counter() - started,
                    )
                )

        if executor == "shard":
            return self._attempt_shard(workers, scoring, external, local, fold, started)

        chunks = _chunked(
            self._blocking.candidate_pairs(external, local), self._config.chunk_size
        )
        if executor == "process":
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_process_worker,
                initargs=(
                    external,
                    local,
                    self._comparator,
                    self._decider,
                    self._cache_size,
                    scoring,
                ),
            ) as pool:
                _pump(pool, _run_process_chunk, chunks, handle, workers)
            # per-worker caches: totals are the summed per-chunk deltas
            return fold.cache_hits, fold.cache_misses

        shared = self._shared_cache
        if shared is not None and executor == "thread" and not shared.thread_safe:
            # an unsynchronized warm cache cannot serve a thread pool;
            # fall back to a fresh per-job thread-safe cache
            shared = None
        scorer = None
        if scoring == "batched":
            scorer = self._batch_scorer
            if scorer is not None and executor == "thread" and not scorer.thread_safe:
                # same rule as the warm cache: an unguarded shared scorer
                # cannot serve a thread pool
                scorer = None
        runner = _ChunkRunner(
            external,
            local,
            self._comparator,
            self._decider,
            self._cache_size,
            thread_safe=executor == "thread",
            shared_cache=shared,
            scoring=scoring,
            scorer=scorer,
        )
        # the comparator (and scorer) may be warm from earlier runs:
        # report this run's lookups, not lifetime totals
        hits_before = runner.comparator.cache_hits
        misses_before = runner.comparator.cache_misses
        if runner.scorer is not None:
            batch_hits_before = runner.scorer.pair_hits
            batch_misses_before = runner.scorer.pair_misses
            batch_profiles_before = runner.scorer.profile_count
        if executor == "thread":
            with ThreadPoolExecutor(max_workers=workers) as pool:
                _pump(pool, runner.run_chunk, chunks, handle, workers)
        else:
            for chunk in chunks:
                handle(runner.run_chunk(chunk))
        if runner.scorer is not None:
            # the scorer is shared across the pool, so per-chunk delta
            # snapshots may interleave under threads: overwrite the fold
            # totals with the exact run-lifetime deltas
            fold.batch_hits = runner.scorer.pair_hits - batch_hits_before
            fold.batch_misses = runner.scorer.pair_misses - batch_misses_before
            fold.batch_profiles = runner.scorer.profile_count - batch_profiles_before
        # shared cache: exact per-run deltas live on the runner's comparator
        return (
            runner.comparator.cache_hits - hits_before,
            runner.comparator.cache_misses - misses_before,
        )

    def _attempt_shard(
        self,
        workers: int,
        scoring: str,
        external: RecordStore,
        local: RecordStore,
        fold: _FoldState,
        started: float,
    ) -> Tuple[int, int]:
        """Block-parallel execution: one shard of the key space per worker.

        The plan is built in the parent (which also warms any shared
        block index — and canopy's center pass — *before* the fork, so
        workers inherit it); workers generate, compare and decide their
        own shards' candidates; the parent consumes outcomes in
        deterministic shard order and then folds the key-merged groups,
        reconstructing the serial comparison order exactly.
        """
        config = self._config
        on_progress = config.on_progress
        plan = ShardPlan.build(
            config.resolved_shards(), self._blocking.shard_block_sizes(external, local)
        )
        outcomes: List[ShardOutcome] = []
        compared_so_far = 0
        matched_ext: set = set()
        match_wires = 0
        with ProcessPoolExecutor(
            max_workers=min(workers, plan.shards),
            initializer=_init_shard_worker,
            initargs=(
                self._blocking,
                external,
                local,
                self._comparator,
                self._decider,
                self._cache_size,
                plan,
                scoring,
            ),
        ) as pool:
            futures = [pool.submit(_run_shard_worker, s) for s in range(plan.shards)]
            for future in futures:  # deterministic shard order
                outcome = future.result()
                outcomes.append(outcome)
                fold.chunks_done += 1  # one "chunk" per shard
                fold.cache_hits += outcome.cache_hits
                fold.cache_misses += outcome.cache_misses
                fold.batch_hits += outcome.batch_hits
                fold.batch_misses += outcome.batch_misses
                fold.batch_profiles += outcome.batch_profiles
                compared_so_far += outcome.compared
                if on_progress is not None:
                    if config.best_match_only:
                        matched_ext.update(outcome.match_ext_ids)
                        matches = len(matched_ext)
                    else:
                        match_wires += len(outcome.match_ext_ids)
                        matches = match_wires
                    on_progress(
                        EngineProgress(
                            chunks_done=fold.chunks_done,
                            pairs_compared=compared_so_far,
                            matches=matches,
                            elapsed_seconds=time.perf_counter() - started,
                        )
                    )
        for _sort_key, pairs, wires in merge_shard_groups(outcomes):
            fold.compared += len(pairs)
            fold.candidate_pairs.extend(pairs)
            fold.fold_decisions(wires)
        return fold.cache_hits, fold.cache_misses


def _pump(
    pool: Executor,
    fn: Callable[[List[Pair]], _ChunkOutcome],
    chunks: Iterator[List[Pair]],
    handle: Callable[[_ChunkOutcome], None],
    workers: int,
) -> None:
    """Submit chunks with a bounded in-flight window; fold in order.

    The window keeps all workers busy without materializing the whole
    candidate stream as pending futures (``Executor.map`` would submit
    everything up front).
    """
    window = max(2, workers * 4)
    pending: "deque" = deque()
    for chunk in chunks:
        pending.append(pool.submit(fn, chunk))
        if len(pending) >= window:
            handle(pending.popleft().result())
    while pending:
        handle(pending.popleft().result())
