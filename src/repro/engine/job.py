"""The batch linking engine: configuration, dispatch and fallback.

:class:`LinkingJob` is the execution substrate under every linking run:
candidate pairs from a blocking method are compared and decided by one
of the registered execution strategies (see
:mod:`repro.engine.executors`), and the outcomes are folded back — in a
deterministic order — into one
:class:`~repro.linking.pipeline.LinkingResult`.

The contract every strategy honors is byte-identity: serial, thread,
process, fork-pool shard and subprocess worker execution produce
identical matches, in identical order. This module owns what is
*strategy-independent*: :class:`JobConfig` (validated against the live
executor registry, so third-party strategies plug in), the degradation
chain (an executor that cannot run a job names why and hands off to its
fallback — e.g. ``worker`` → ``shard`` → ``process`` — with the reasons
recorded in :class:`~repro.engine.stats.EngineStats`), and the
serial-fallback guard for pool-bringup and transport failures. Errors
raised by comparator or matcher code propagate unchanged.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.engine.batch import BatchScorer
from repro.engine.cache import DEFAULT_CACHE_SIZE, CachedRecordComparator
from repro.engine.executors import (
    AUTO,
    Decider,
    DecisionWire,
    ExecutionRequest,
    FoldState,
    Pair,
    executor_names,
    get_executor,
    update_best_match,
)
from repro.engine.executors.base import ChunkOutcome
from repro.engine.stats import EngineProgress, EngineStats
from repro.linking.blocking import BlockingMethod
from repro.linking.comparators import RecordComparator
from repro.linking.pipeline import LinkingResult
from repro.linking.records import RecordStore

__all__ = [
    "EXECUTORS",
    "SCORING",
    "Decider",
    "DecisionWire",
    "JobConfig",
    "LinkingJob",
    "Pair",
    "available_cpu_count",
    "update_best_match",
]

#: Snapshot of the registered strategies at import time (the built-ins).
#: Validation uses the *live* registry — see ``JobConfig.__post_init__``
#: — so strategies registered later are accepted without touching this.
EXECUTORS = executor_names()

#: Scoring paths: per-pair comparator dispatch, or the columnar
#: batched scorer (see :mod:`repro.engine.batch`) — byte-identical
#: output, memoized per record profile pair.
SCORING = ("pairwise", "batched")

#: Back-compat alias: the fold machinery lives in the executors package.
_FoldState = FoldState


def available_cpu_count() -> int:
    """CPUs actually available to this process.

    ``os.cpu_count()`` reports the machine, not the process: in
    cgroup- or affinity-limited environments (CI containers, ``taskset``
    launches) it overcounts, and a worker pool sized from it thrashes.
    Prefer the scheduler affinity mask where the platform exposes it.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            affinity = getaffinity(0)
        except OSError:  # pragma: no cover - platform quirk
            affinity = None
        if affinity:
            return len(affinity)
    return os.cpu_count() or 1

#: Pool-bringup and transport failures that trigger the serial fallback.
#: Deliberately narrow: errors raised by comparator/matcher/progress code
#: are bugs and must propagate, not silently rerun the job serially. An
#: OSError is ambiguous (fork failure vs. user I/O), so the fallback
#: additionally requires that no chunk completed yet — see ``run``.
#: ``WorkerTransportError`` subclasses BrokenExecutor, so a dead worker
#: subprocess lands here too.
FALLBACK_ERRORS = (OSError, BrokenExecutor, pickle.PicklingError)


@dataclass(frozen=True)
class JobConfig:
    """Execution knobs of a :class:`LinkingJob`.

    * ``chunk_size`` — candidate pairs per work unit (chunk executors);
    * ``executor`` — any registered strategy (built-ins: ``serial``,
      ``thread``, ``process``, ``shard`` — block-parallel, workers
      generate their own shards' candidates in-worker — and ``worker``
      — every shard crosses a serialize→subprocess→deserialize
      boundary) or ``auto`` (process when more than one CPU is
      available). Validated against the live registry, so executors
      registered via
      :func:`repro.engine.executors.register_executor` are accepted;
    * ``workers`` — worker count (default: the CPUs *available* to the
      process, affinity/cgroup aware); 1 runs serially for the pool
      strategies (``worker`` keeps its boundary even at 1);
    * ``shards`` — key-space shard count for the shard-plan executors
      (default: the resolved worker count). More shards than workers
      queue on the pool — useful when per-shard load is skewed; the
      setting is inert under the chunk executors;
    * ``cache_size`` — LRU capacity of the similarity cache per worker
      (0 disables memoization);
    * ``scoring`` — ``pairwise`` (per-pair comparator dispatch) or
      ``batched`` (the columnar scorer of :mod:`repro.engine.batch`:
      interned value columns, per-profile-pair memoization —
      byte-identical output, works under every executor);
    * ``best_match_only`` — keep only the top-scoring match per external
      record (the Unique Name Assumption);
    * ``on_progress`` — called with an :class:`EngineProgress` after
      every folded chunk.
    """

    chunk_size: int = 1024
    executor: str = "serial"
    workers: Optional[int] = None
    shards: Optional[int] = None
    cache_size: int = DEFAULT_CACHE_SIZE
    scoring: str = "pairwise"
    best_match_only: bool = True
    on_progress: Optional[Callable[[EngineProgress], None]] = None

    def __post_init__(self) -> None:
        if self.chunk_size < 1:
            raise ValueError(f"chunk size must be >= 1, got {self.chunk_size}")
        registered = executor_names()
        if self.executor not in registered:
            raise ValueError(
                f"executor must be one of {registered}, got {self.executor!r}"
            )
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.shards is not None and self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.cache_size < 0:
            raise ValueError(f"cache size must be >= 0, got {self.cache_size}")
        if self.scoring not in SCORING:
            raise ValueError(
                f"scoring must be one of {SCORING}, got {self.scoring!r}"
            )

    def resolved_workers(self) -> int:
        """The worker count to use (available CPUs when unset)."""
        if self.workers is not None:
            return self.workers
        return max(1, available_cpu_count())

    def resolved_shards(self) -> int:
        """The shard-plan executors' key-space shard count (workers when
        unset — one shard per worker)."""
        if self.shards is not None:
            return self.shards
        return self.resolved_workers()

    def resolved_executor(self) -> str:
        """The concrete strategy: ``auto`` resolved from the machine
        shape, and 1 worker collapsed to serial for the strategies whose
        only value is parallelism (``worker`` opts out — its value is
        the serialization boundary)."""
        executor = self.executor
        if executor == AUTO:
            executor = "process" if self.resolved_workers() > 1 else "serial"
        if (
            executor != "serial"
            and self.resolved_workers() < 2
            and get_executor(executor).collapses_single_worker
        ):
            executor = "serial"
        return executor


class LinkingJob:
    """A complete linking run dispatched to a registered executor.

    >>> job = LinkingJob(blocking, comparator, matcher,
    ...                  JobConfig(executor="process", chunk_size=512))
    >>> result = job.run(external_store, local_store)
    >>> result.stats.pairs_per_second
    184223.7
    """

    def __init__(
        self,
        blocking: BlockingMethod,
        comparator: RecordComparator | CachedRecordComparator,
        decider: Decider,
        config: JobConfig | None = None,
        batch_scorer: Optional[BatchScorer] = None,
    ) -> None:
        self._config = config or JobConfig()
        self._cache_size = self._config.cache_size
        self._shared_cache: Optional[CachedRecordComparator] = None
        # a caller-provided warm scorer (the streaming engine owns one
        # per stream) survives across runs, like the shared cache; the
        # process and shard executors ignore it and build per-worker
        # scorers after the fork
        self._batch_scorer = batch_scorer
        if isinstance(comparator, CachedRecordComparator):
            # honor the caller's cache configuration — and keep the
            # instance: the serial and thread paths reuse it directly,
            # so memoized similarities survive across runs (streaming
            # deltas, repeated jobs against one catalog). The process
            # executor still ships the inner comparator and workers
            # build their own per-process caches at the same capacity.
            self._cache_size = comparator.cache_capacity
            self._shared_cache = comparator
            comparator = comparator.inner
        self._blocking = blocking
        self._comparator = comparator
        self._decider = decider

    @property
    def config(self) -> JobConfig:
        """The execution configuration."""
        return self._config

    def run(self, external: RecordStore, local: RecordStore) -> LinkingResult:
        """Execute the job and return the result with engine stats."""
        config = self._config
        started = time.perf_counter()
        executor = config.resolved_executor()
        impl = get_executor(executor)
        fallbacks: List[str] = []
        # the degradation chain: an executor that cannot run this job
        # names why and hands off to its declared fallback (e.g. worker
        # → shard when a spec cannot cross the wire, shard → process
        # when the blocking has no per-key decomposition)
        while True:
            reason = impl.unsupported_reason(
                self._blocking, self._comparator, self._decider
            )
            if reason is None:
                break
            target = impl.fallback or "serial"
            fallbacks.append(f"{impl.name}: {reason}; ran {target}")
            executor = target
            impl = get_executor(executor)
        workers = 1 if executor == "serial" else config.resolved_workers()
        scoring = config.scoring
        if scoring == "batched" and not BatchScorer.supports(self._comparator):
            # a comparator subclass with custom comparison hooks computes
            # something the columnar arithmetic cannot replicate: degrade
            # to the pairwise path rather than silently diverge
            fallbacks.append(
                f"batched: {type(self._comparator).__name__} customizes "
                "per-pair comparison; ran pairwise"
            )
            scoring = "pairwise"
        fold = FoldState(external, local, config.best_match_only)
        try:
            hits, misses = self._attempt(
                impl, workers, scoring, external, local, fold, started
            )
        except FALLBACK_ERRORS as exc:
            # An OSError after a chunk already completed is more likely a
            # bug in comparator/progress code than pool bringup: propagate
            # rather than silently redoing finished work.
            mid_run_os_error = (
                isinstance(exc, OSError) and fold.chunks_done > 0
            )
            if executor == "serial" or mid_run_os_error:
                raise
            fallbacks.append(f"{type(exc).__name__}: {exc}")
            executor, workers = "serial", 1
            impl = get_executor(executor)
            fold = FoldState(external, local, config.best_match_only)
            hits, misses = self._attempt(
                impl, workers, scoring, external, local, fold, started
            )
        fallback_reason = "; ".join(fallbacks) if fallbacks else None
        elapsed = time.perf_counter() - started
        # index-backed blocking methods report their shared index after
        # the candidate stream has been drained (getattr: duck-typed
        # blocking doubles in tests need not subclass BlockingMethod).
        # Shard-plan runs probe the index in the workers, so the
        # parent-side report would be stale (a previous run's) or
        # empty — skip it rather than misattribute.
        stats_fn = getattr(self._blocking, "index_stats", None)
        index_stats = (
            stats_fn() if callable(stats_fn) and not impl.uses_shard_plan else None
        )
        stats = EngineStats(
            executor=executor,
            workers=workers,
            chunk_size=config.chunk_size,
            chunk_count=fold.chunks_done,
            pairs_compared=fold.compared,
            elapsed_seconds=elapsed,
            cache_hits=hits,
            cache_misses=misses,
            shard_count=config.resolved_shards() if impl.uses_shard_plan else 0,
            fallback_reason=fallback_reason,
            index_build_seconds=index_stats.build_seconds if index_stats else 0.0,
            index_probe_seconds=index_stats.probe_seconds if index_stats else 0.0,
            index_features=index_stats.features if index_stats else 0,
            index_postings=index_stats.postings if index_stats else 0,
            scoring=scoring,
            batch_profiles=fold.batch_profiles,
            batch_pair_hits=fold.batch_hits,
            batch_pair_misses=fold.batch_misses,
            work_units=fold.work_units,
            work_unit_bytes=fold.work_unit_bytes,
        )
        result = LinkingResult(
            matches=fold.final_matches(),
            possible=fold.possible,
            compared=fold.compared,
            naive_pairs=len(external) * len(local),
            stats=stats,
        )
        result._candidate_pairs = fold.candidate_pairs
        return result

    def _attempt(
        self,
        impl,
        workers: int,
        scoring: str,
        external: RecordStore,
        local: RecordStore,
        fold: FoldState,
        started: float,
    ) -> Tuple[int, int]:
        on_progress = self._config.on_progress

        def handle(outcome: ChunkOutcome) -> None:
            fold.fold(outcome)
            if on_progress is not None:
                on_progress(
                    EngineProgress(
                        chunks_done=fold.chunks_done,
                        pairs_compared=fold.compared,
                        matches=fold.match_count(),
                        elapsed_seconds=time.perf_counter() - started,
                    )
                )

        request = ExecutionRequest(
            blocking=self._blocking,
            comparator=self._comparator,
            decider=self._decider,
            external=external,
            local=local,
            fold=fold,
            config=self._config,
            scoring=scoring,
            workers=workers,
            cache_size=self._cache_size,
            handle=handle,
            started=started,
            shared_cache=self._shared_cache,
            batch_scorer=self._batch_scorer,
        )
        return impl.execute(request)
