"""Shard planning for block-parallel candidate generation.

The paper's rule-based linking decomposes naturally by blocking key:
every candidate pair lives inside one block, so *blocks* — not pair
chunks — are the unit of parallel work (the map-by-key decomposition
Isele & Bizer exploit for scalable linkage-rule execution). A
:class:`ShardPlan` partitions a blocking method's key space into a
fixed number of balanced shards; the engine's ``shard`` executor then
hands each process worker its own shards, the worker draws that
shard's candidate pairs lazily from the blocking method *in-worker*
(the stores arrive by fork inheritance, so no pair is ever pickled)
and only compact decision wires cross the process boundary.

Balance comes from two sources, composed:

* **block-size stats** — when the blocking method can report per-key
  block sizes (standard blocking reads them straight off its shared
  :class:`~repro.index.RecordKeyIndex` posting lists), the plan pins
  keys to shards greedily, heaviest block first, always onto the
  currently lightest shard (LPT scheduling — deterministic because
  ties in both size and load break on the sorted key);
* **stable hashing** — keys without stats fall back to
  ``crc32(key) % shards``. CRC32 is deliberate: Python's ``hash`` is
  randomized per process, which would scatter a key to different
  shards in different workers.

Determinism does **not** rest on the plan, though. Shard outcomes carry
group sort keys derived from the serial emission order (an external
ordinal for record-keyed methods, richer tuples for methods like q-gram
or sorted-neighbourhood whose serial order interleaves records), the
parent folds outcomes in shard order and merges the groups back into
that serial order (:func:`merge_shard_groups`), so the final
:class:`~repro.linking.pipeline.LinkingResult` is byte-identical to the
serial path whatever the plan assigned where.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Union

#: A merge group's sort key: the blocking method's encoding of where
#: the group sits in the *serial* emission order. An int (external
#: ordinal) for methods whose serial order is external-store order;
#: tuples of ints for methods that interleave records (q-gram's
#: ``(ordinal, key index)``, sorted-neighbourhood's window positions).
#: All keys of one run must be mutually comparable, ascending in serial
#: emission order, and owned by exactly one shard.
GroupKey = Union[int, Tuple[int, ...]]

#: One worker's results for one merge group: the group's sort key, the
#: candidate pairs actually compared — ``(external id, local id)``, in
#: serial emission order — and the non-NON_MATCH decision wires (see
#: :data:`repro.engine.job.DecisionWire`). Sort keys let the parent
#: restore the serial candidate order with a k-way merge.
ShardGroup = Tuple[GroupKey, List, List]


def stable_key_hash(key: str) -> int:
    """A process-stable hash of a block key.

    ``zlib.crc32`` over UTF-8 bytes: identical in every worker process
    (unlike ``hash``, which PYTHONHASHSEED randomizes) and cheap enough
    to call once per external record.
    """
    return zlib.crc32(key.encode("utf-8"))


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic partition of a block-key space into shards.

    ``pinned`` maps the keys with known block sizes to their
    greedily-balanced shard; every other key hashes. Plans are built in
    the parent and shipped to workers (with the default fork start
    method they are inherited, not pickled).
    """

    shards: int
    pinned: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shard count must be >= 1, got {self.shards}")
        for key, shard in self.pinned.items():
            if not 0 <= shard < self.shards:
                raise ValueError(
                    f"pinned shard {shard} for key {key!r} outside "
                    f"[0, {self.shards})"
                )

    @classmethod
    def build(
        cls, shards: int, block_sizes: Optional[Mapping[str, int]] = None
    ) -> "ShardPlan":
        """Plan *shards* shards, balancing known block sizes greedily.

        Keys are pinned heaviest-first onto the lightest shard so far
        (longest-processing-time scheduling); both the size ordering
        and the lightest-shard choice break ties deterministically, so
        the same inputs always produce the same plan. With no (or
        empty) *block_sizes* the plan is pure stable hashing.
        """
        if shards < 1:
            raise ValueError(f"shard count must be >= 1, got {shards}")
        if not block_sizes:
            return cls(shards=shards, pinned={})
        loads = [0] * shards
        pinned: Dict[str, int] = {}
        for key in sorted(block_sizes, key=lambda k: (-block_sizes[k], k)):
            target = min(range(shards), key=loads.__getitem__)
            pinned[key] = target
            loads[target] += max(1, block_sizes[key])
        return cls(shards=shards, pinned=pinned)

    def shard_of(self, key: str) -> int:
        """The shard owning *key* (pinned, else stable hash)."""
        pinned = self.pinned.get(key)
        if pinned is not None:
            return pinned
        return stable_key_hash(key) % self.shards

    def loads(self, block_sizes: Mapping[str, int]) -> List[int]:
        """Per-shard total block size under this plan (for tests/stats)."""
        loads = [0] * self.shards
        for key, size in block_sizes.items():
            loads[self.shard_of(key)] += size
        return loads


@dataclass
class ShardOutcome:
    """Everything one worker produced for one shard.

    ``groups`` holds one :data:`ShardGroup` per run of consecutive
    equal sort keys that contributed at least one compared pair, in
    ascending sort-key order (the order the worker drew them). Cache
    counters are the worker's
    per-shard deltas, summed by the parent like the process executor's
    per-chunk deltas; the ``batch_*`` counters are the batched scorer's
    deltas when the run scores in batched mode (zero otherwise).
    """

    shard: int
    groups: List[ShardGroup]
    compared: int
    match_ext_ids: List
    cache_hits: int
    cache_misses: int
    batch_hits: int = 0
    batch_misses: int = 0
    batch_profiles: int = 0


def merge_shard_groups(outcomes: List[ShardOutcome]) -> Iterator[ShardGroup]:
    """K-way merge of shard outcomes back into serial emission order.

    Every group sort key is owned by exactly one shard (the blocking
    method's ownership rule — a record's single block key, q-gram's
    first-owning sub-list key, a window segment's later position, a
    canopy pair's local record) and each shard's groups are already
    key-sorted, so
    a heap merge on the sort key restores exactly the order the serial
    path would have compared in — the byte-identity guarantee of the
    shard executor reduces to this merge plus the shard-ordered fold of
    the caller.
    """
    import heapq

    return heapq.merge(*(outcome.groups for outcome in outcomes), key=lambda g: g[0])
