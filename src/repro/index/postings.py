"""Sorted-integer posting lists: the storage primitive of ``repro.index``.

A :class:`PostingList` is a strictly increasing sequence of dense row
ids (training links, record ordinals...) backed by a compact
``array('q')``. The three operations the learning and blocking layers
need — membership, intersection and union — all run on the sorted
invariant: intersection uses a galloping two-pointer merge so that a
short rule posting against a long class posting costs
``O(min * log(max))`` rather than ``O(min + max)``.

Appends must be in increasing row order (the natural order of both
index builds and incremental ingestion), which keeps insertion O(1)
amortized; :meth:`PostingList.add` falls back to a bisected insert for
the rare out-of-order case.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, insort
from typing import Iterable, Iterator, List

#: 64-bit signed backing type: row spaces are dense ints, never huge,
#: but ``q`` keeps the container safe for any realistic corpus.
_TYPECODE = "q"


class PostingList:
    """A strictly increasing list of integer row ids.

    >>> p = PostingList([1, 4, 9])
    >>> q = PostingList([4, 9, 12])
    >>> list(p.intersection(q))
    [4, 9]
    >>> p.intersection_count(q)
    2
    """

    __slots__ = ("_rows",)

    def __init__(self, rows: Iterable[int] = ()) -> None:
        self._rows = array(_TYPECODE)
        for row in rows:
            self.add(row)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def append(self, row: int) -> None:
        """Append *row*, which must exceed the current maximum."""
        rows = self._rows
        if rows and row <= rows[-1]:
            raise ValueError(
                f"append must be strictly increasing: {row} after {rows[-1]}"
            )
        rows.append(row)

    def add(self, row: int) -> bool:
        """Insert *row* keeping the sorted invariant; False if present."""
        rows = self._rows
        if not rows or row > rows[-1]:
            rows.append(row)
            return True
        position = bisect_left(rows, row)
        if position < len(rows) and rows[position] == row:
            return False
        insort(rows, row)
        return True

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[int]:
        return iter(self._rows)

    def __contains__(self, row: int) -> bool:
        rows = self._rows
        position = bisect_left(rows, row)
        return position < len(rows) and rows[position] == row

    def __getitem__(self, index: int) -> int:
        return self._rows[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PostingList):
            return NotImplemented
        return self._rows == other._rows

    def __repr__(self) -> str:
        preview = ", ".join(str(r) for r in self._rows[:5])
        suffix = ", ..." if len(self._rows) > 5 else ""
        return f"PostingList([{preview}{suffix}], n={len(self._rows)})"

    def to_list(self) -> List[int]:
        """The rows as a plain list (mainly for tests)."""
        return list(self._rows)

    @property
    def count(self) -> int:
        """Number of rows — ``freq(feature)`` in Algorithm 1 terms."""
        return len(self._rows)

    # ------------------------------------------------------------------
    # set algebra
    # ------------------------------------------------------------------
    def intersection(self, other: "PostingList") -> "PostingList":
        """Rows present in both lists, as a new posting list."""
        result = PostingList()
        result._rows = array(_TYPECODE, self._iter_intersection(other))
        return result

    def intersection_count(self, other: "PostingList") -> int:
        """``|self ∩ other|`` without materializing the intersection."""
        return sum(1 for _ in self._iter_intersection(other))

    def _iter_intersection(self, other: "PostingList") -> Iterator[int]:
        """Galloping merge: binary-search the longer list from the shorter."""
        short, long = self._rows, other._rows
        if len(short) > len(long):
            short, long = long, short
        # plain two-pointer merge when sizes are comparable; galloping
        # only pays when one side is much shorter
        if len(long) <= 8 * len(short):
            i = j = 0
            n_short, n_long = len(short), len(long)
            while i < n_short and j < n_long:
                a, b = short[i], long[j]
                if a == b:
                    yield a
                    i += 1
                    j += 1
                elif a < b:
                    i += 1
                else:
                    j += 1
            return
        lo = 0
        n_long = len(long)
        for row in short:
            lo = bisect_left(long, row, lo, n_long)
            if lo == n_long:
                return
            if long[lo] == row:
                yield row
                lo += 1

    def union(self, other: "PostingList") -> "PostingList":
        """Rows present in either list, as a new posting list."""
        result = PostingList()
        merged = result._rows
        a, b = self._rows, other._rows
        i = j = 0
        n_a, n_b = len(a), len(b)
        while i < n_a and j < n_b:
            x, y = a[i], b[j]
            if x == y:
                merged.append(x)
                i += 1
                j += 1
            elif x < y:
                merged.append(x)
                i += 1
            else:
                merged.append(y)
                j += 1
        if i < n_a:
            merged.extend(a[i:])
        if j < n_b:
            merged.extend(b[j:])
        return result


#: Shared immutable empty posting list for missing features.
EMPTY_POSTING = PostingList()
