"""``repro.index`` — the shared inverted feature-index subsystem.

One indexed representation backs all four consuming layers:

* :class:`~repro.core.learner.RuleLearner` — Algorithm 1's three
  frequency passes become posting-list lengths and intersections over a
  :class:`TrainingFeatureIndex`;
* :class:`~repro.core.incremental.IncrementalRuleLearner` — the same
  index grown row-by-row under ``add_links``;
* :class:`~repro.core.classifier.RuleClassifier` — batch prediction
  probes a (property, segment) → rules table instead of scanning every
  rule per record;
* blocking (:mod:`repro.linking.blocking`) — q-gram and key blocking
  probe per-store :class:`RecordKeyIndex` posting lists, built once and
  shared via :func:`shared_record_index`.

The primitives are an interned :class:`FeatureVocabulary` (features →
dense int ids) and sorted-int :class:`PostingList`\\ s supporting
intersection, union, count and incremental append.
"""

from repro.index.inverted import IndexStats, InvertedIndex
from repro.index.keys import (
    RecordKeyIndex,
    seed_shared_index,
    shared_index_cache_clear,
    shared_index_snapshot,
    shared_record_index,
)
from repro.index.postings import EMPTY_POSTING, PostingList
from repro.index.training import TrainingFeatureIndex
from repro.index.vocabulary import FeatureVocabulary

__all__ = [
    "EMPTY_POSTING",
    "FeatureVocabulary",
    "IndexStats",
    "InvertedIndex",
    "PostingList",
    "RecordKeyIndex",
    "TrainingFeatureIndex",
    "seed_shared_index",
    "shared_index_cache_clear",
    "shared_index_snapshot",
    "shared_record_index",
]
