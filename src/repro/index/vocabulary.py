"""Interned feature vocabulary: hashable features → dense int ids.

Every indexed layer speaks the same feature language: a
``(property, segment)`` premise feature, a class feature, a blocking
key. :class:`FeatureVocabulary` interns them into dense ids so posting
lists, count arrays and probe tables can be integer-addressed.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, List, Tuple


class FeatureVocabulary:
    """A bidirectional feature ↔ dense-id mapping.

    Ids are assigned in first-seen order and never change, so a
    vocabulary can keep growing under incremental ingestion while every
    previously handed-out id stays valid.

    >>> vocab = FeatureVocabulary()
    >>> vocab.intern(("pn", "crcw0805"))
    0
    >>> vocab.intern(("pn", "crcw0805"))
    0
    >>> vocab.feature_of(0)
    ('pn', 'crcw0805')
    """

    __slots__ = ("_ids", "_features")

    def __init__(self) -> None:
        self._ids: Dict[Hashable, int] = {}
        self._features: List[Hashable] = []

    def intern(self, feature: Hashable) -> int:
        """The feature's id, assigning the next dense id if unseen."""
        fid = self._ids.get(feature)
        if fid is None:
            fid = len(self._features)
            self._ids[feature] = fid
            self._features.append(feature)
        return fid

    def id_of(self, feature: Hashable) -> int | None:
        """The feature's id, or ``None`` when never interned."""
        return self._ids.get(feature)

    def feature_of(self, fid: int) -> Hashable:
        """The feature carrying id *fid* (raises IndexError if unknown)."""
        return self._features[fid]

    def __len__(self) -> int:
        return len(self._features)

    def __contains__(self, feature: Hashable) -> bool:
        return feature in self._ids

    def __iter__(self) -> Iterator[Hashable]:
        """Features in id order."""
        return iter(self._features)

    def items(self) -> Iterator[Tuple[Hashable, int]]:
        """(feature, id) pairs in id order."""
        for fid, feature in enumerate(self._features):
            yield feature, fid

    def __repr__(self) -> str:
        return f"<FeatureVocabulary features={len(self._features)}>"
