"""Record-side inverted key indexes shared across blocking methods.

Blocking methods derive key material from records (q-gram sub-lists,
key prefixes, phonetic codes...) and need, per key, the local records
carrying it. :class:`RecordKeyIndex` builds that once per store — keys
map to posting lists of record *ordinals* (positions in store order) so
candidate emission preserves the exact order the scan-based
implementations produced.

:func:`shared_record_index` memoizes indexes per
:class:`~repro.linking.records.RecordStore` (weakly, so stores stay
collectable) under a signature string describing the key derivation;
a store mutation bumps its version and invalidates the cached entries.
"""

from __future__ import annotations

import time
import weakref
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Sequence, Tuple

from repro.index.inverted import IndexStats, InvertedIndex
from repro.rdf.terms import Term

if TYPE_CHECKING:  # pragma: no cover - circular import guard
    from repro.linking.records import Record, RecordStore

#: Derives the blocking keys of one record (possibly none).
KeyFunction = Callable[["Record"], Iterable[str]]


class RecordKeyIndex:
    """Inverted index: blocking key → records (in store order).

    >>> index = RecordKeyIndex.build(local_store, keys_for=qgram_keys)
    >>> list(index.candidates("crcw"))
    [EX.p1, EX.p7]
    """

    __slots__ = ("_ids", "_index", "build_seconds", "probe_seconds")

    def __init__(self, ids: Sequence[Term], index: InvertedIndex, build_seconds: float) -> None:
        self._ids: Tuple[Term, ...] = tuple(ids)
        self._index = index
        self.build_seconds = build_seconds
        #: cumulative probe time, accumulated by callers via :meth:`probed`.
        self.probe_seconds = 0.0

    @classmethod
    def build(cls, store: "RecordStore", keys_for: KeyFunction) -> "RecordKeyIndex":
        """Index every record of *store* under its derived keys."""
        started = time.perf_counter()
        ids: List[Term] = []
        index = InvertedIndex()
        for ordinal, record in enumerate(store):
            ids.append(record.id)
            for key in keys_for(record):
                if key:
                    index.add(key, ordinal)
        return cls(ids, index, time.perf_counter() - started)

    # ------------------------------------------------------------------
    # probes
    # ------------------------------------------------------------------
    def candidates(self, key: str) -> Iterable[Term]:
        """Record ids indexed under *key*, in store order."""
        ids = self._ids
        for ordinal in self._index.posting(key):
            yield ids[ordinal]

    def candidate_ordinals(self, key: str) -> Iterable[int]:
        """Record ordinals indexed under *key* (posting list order)."""
        return self._index.posting(key)

    def id_of(self, ordinal: int) -> Term:
        """The record id at *ordinal* (store order at build time)."""
        return self._ids[ordinal]

    @property
    def record_count(self) -> int:
        """Number of records indexed (the store size at build time)."""
        return len(self._ids)

    def key_sizes(self) -> Dict[str, int]:
        """Posting length per key — the block-size stats the engine's
        :class:`~repro.engine.shard.ShardPlan` balances shards with."""
        return {
            str(key): len(posting) for key, _, posting in self._index.features()
        }

    def __contains__(self, key: str) -> bool:
        return key in self._index

    def __len__(self) -> int:
        """Number of distinct keys."""
        return len(self._index)

    def probed(self, seconds: float) -> None:
        """Account *seconds* of probe time (for EngineStats wiring)."""
        self.probe_seconds += seconds

    def stats(self) -> IndexStats:
        """Posting-list stats plus build/probe timings."""
        return self._index.stats(
            build_seconds=self.build_seconds, probe_seconds=self.probe_seconds
        )

    def __repr__(self) -> str:
        return f"<RecordKeyIndex keys={len(self._index)} records={len(self._ids)}>"


# ----------------------------------------------------------------------
# shared per-store cache
# ----------------------------------------------------------------------

#: store → {signature: (store version at build, index)}
_SHARED: "weakref.WeakKeyDictionary[RecordStore, Dict[str, Tuple[int, RecordKeyIndex]]]" = (
    weakref.WeakKeyDictionary()
)


def shared_record_index(
    store: "RecordStore",
    signature: str,
    keys_for: KeyFunction,
) -> RecordKeyIndex:
    """The store's key index for *signature*, built at most once.

    *signature* must uniquely describe the key derivation (field, q,
    threshold...) — two callers presenting the same signature for the
    same store share one index. The cache entry is dropped when the
    store has been mutated since the build (its version moved on).
    """
    per_store = _SHARED.get(store)
    if per_store is None:
        per_store = {}
        _SHARED[store] = per_store
    version = getattr(store, "version", None)
    cached = per_store.get(signature)
    if cached is not None and cached[0] == version:
        return cached[1]
    index = RecordKeyIndex.build(store, keys_for)
    per_store[signature] = (version, index)
    return index


def seed_shared_index(
    store: "RecordStore", signature: str, index: RecordKeyIndex
) -> None:
    """Register a prebuilt *index* for *store* under *signature*.

    The warm-start path of the artifact store: an index deserialized
    from a bundle is seeded at the store's *current* version, so the
    first job blocking the store with the same signature reuses it with
    zero rebuild — and a later store mutation invalidates it exactly
    like a locally-built entry.
    """
    per_store = _SHARED.get(store)
    if per_store is None:
        per_store = {}
        _SHARED[store] = per_store
    per_store[signature] = (getattr(store, "version", None), index)


def shared_index_snapshot(store: "RecordStore") -> Dict[str, RecordKeyIndex]:
    """The store's currently-valid cached indexes, by signature.

    Entries built against an older store version are skipped — a bundle
    must only capture indexes that describe the store as it is now.
    """
    per_store = _SHARED.get(store)
    if not per_store:
        return {}
    version = getattr(store, "version", None)
    return {
        signature: index
        for signature, (built_version, index) in per_store.items()
        if built_version == version
    }


def shared_index_cache_clear() -> None:
    """Drop every cached index (mainly for tests and benchmarks)."""
    _SHARED.clear()
