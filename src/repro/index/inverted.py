"""A generic inverted index: feature → posting list of row ids.

Combines a :class:`~repro.index.vocabulary.FeatureVocabulary` with one
:class:`~repro.index.postings.PostingList` per feature. Rows must be
observed in non-decreasing order (the natural order of a build pass or
of incremental ingestion), which keeps every posting append O(1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterator, List, Tuple

from repro.index.postings import EMPTY_POSTING, PostingList
from repro.index.vocabulary import FeatureVocabulary


@dataclass(frozen=True, slots=True)
class IndexStats:
    """Size and timing report of an index, surfaced in ``EngineStats``.

    * ``features`` — distinct features (posting lists);
    * ``postings`` — total posting entries across all features;
    * ``build_seconds`` / ``probe_seconds`` — wall time spent building
      the index and probing it during the last run (0.0 when unused).
    """

    features: int = 0
    postings: int = 0
    build_seconds: float = 0.0
    probe_seconds: float = 0.0

    @property
    def mean_posting_length(self) -> float:
        """Average posting length (0.0 for an empty index)."""
        return self.postings / self.features if self.features else 0.0

    def merged(self, other: "IndexStats") -> "IndexStats":
        """Combine two reports (sizes and timings add up)."""
        return IndexStats(
            features=self.features + other.features,
            postings=self.postings + other.postings,
            build_seconds=self.build_seconds + other.build_seconds,
            probe_seconds=self.probe_seconds + other.probe_seconds,
        )


class InvertedIndex:
    """Feature-addressed posting lists over a dense row space.

    >>> index = InvertedIndex()
    >>> index.add(("pn", "crcw0805"), row=0)
    0
    >>> index.count(("pn", "crcw0805"))
    1
    """

    __slots__ = ("vocabulary", "_postings")

    def __init__(self) -> None:
        self.vocabulary = FeatureVocabulary()
        self._postings: List[PostingList] = []

    # ------------------------------------------------------------------
    # build
    # ------------------------------------------------------------------
    def add(self, feature: Hashable, row: int) -> int:
        """Record *feature* occurring on *row*; returns the feature id.

        A repeated (feature, row) observation is ignored — postings have
        set semantics, exactly like Algorithm 1's per-link counting.
        """
        fid = self.vocabulary.intern(feature)
        if fid == len(self._postings):
            self._postings.append(PostingList())
        posting = self._postings[fid]
        if len(posting) == 0 or row > posting[-1]:
            posting.append(row)
        elif row != posting[-1]:
            posting.add(row)
        return fid

    # ------------------------------------------------------------------
    # probes
    # ------------------------------------------------------------------
    def posting(self, feature: Hashable) -> PostingList:
        """The feature's posting list (shared empty list when unseen)."""
        fid = self.vocabulary.id_of(feature)
        return EMPTY_POSTING if fid is None else self._postings[fid]

    def posting_by_id(self, fid: int) -> PostingList:
        """Posting list by dense feature id."""
        return self._postings[fid]

    def count(self, feature: Hashable) -> int:
        """``freq(feature)`` — the posting length."""
        return len(self.posting(feature))

    def intersection_count(self, a: Hashable, b: Hashable) -> int:
        """``|post(a) ∩ post(b)|`` — the conjunction frequency."""
        return self.posting(a).intersection_count(self.posting(b))

    def features(self) -> Iterator[Tuple[Hashable, int, PostingList]]:
        """(feature, id, posting) triples in id order."""
        for feature, fid in self.vocabulary.items():
            yield feature, fid, self._postings[fid]

    def __len__(self) -> int:
        return len(self._postings)

    def __contains__(self, feature: Hashable) -> bool:
        return feature in self.vocabulary

    def total_postings(self) -> int:
        """Sum of posting lengths across every feature."""
        return sum(len(posting) for posting in self._postings)

    def stats(self, build_seconds: float = 0.0, probe_seconds: float = 0.0) -> IndexStats:
        """A size report, optionally stamped with timings."""
        return IndexStats(
            features=len(self._postings),
            postings=self.total_postings(),
            build_seconds=build_seconds,
            probe_seconds=probe_seconds,
        )

    def __repr__(self) -> str:
        return (
            f"<InvertedIndex features={len(self._postings)} "
            f"postings={self.total_postings()}>"
        )
