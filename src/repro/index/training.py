"""The shared training-link index behind Algorithm 1.

One :class:`TrainingFeatureIndex` is built per training set (or grown
incrementally as experts validate new links) and replaces the private
Counters that ``RuleLearner`` and ``IncrementalRuleLearner`` used to
re-derive on every pass:

* ``freq(p ∧ a)``   = ``len(post(p, a))``,
* ``freq(c)``       = ``len(post(c))``,
* ``freq(p ∧ a ∧ c)`` = ``|post(p, a) ∩ post(c)|``.

Rows are training links in ingestion order, so posting appends are
always increasing and O(1). The index also keeps the segment occurrence
counter the paper's §5 statistics need, making it a drop-in data source
for :class:`~repro.core.learner.LearningStatistics`.
"""

from __future__ import annotations

import time
from collections import Counter
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, List, Mapping, Sequence, Tuple

from repro.index.inverted import IndexStats, InvertedIndex
from repro.rdf.terms import IRI
from repro.text.segmentation import SegmentFunction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports index)
    from repro.core.training import TrainingExample


class TrainingFeatureIndex:
    """Posting lists over training links for pair and class features.

    >>> index = TrainingFeatureIndex(segmenter)
    >>> index.ingest({PART_NUMBER: ("CRCW0805-10K",)}, classes={resistor})
    0
    >>> index.pair_count(PART_NUMBER, "crcw0805")
    1
    >>> index.conjunction_count(PART_NUMBER, "crcw0805", resistor)
    1
    """

    __slots__ = (
        "_segmenter",
        "pairs",
        "classes",
        "_row_classes",
        "occurrences",
        "rows",
        "build_seconds",
    )

    def __init__(self, segmenter: SegmentFunction) -> None:
        self._segmenter = segmenter
        #: (property, segment) features → posting list of link rows.
        self.pairs = InvertedIndex()
        #: class features → posting list of link rows.
        self.classes = InvertedIndex()
        #: per-row class feature ids (the conjunction enumeration join).
        self._row_classes: List[Tuple[int, ...]] = []
        #: segment occurrence counts before thresholding (paper §5).
        self.occurrences: Counter[str] = Counter()
        #: rows ingested so far — ``|TS|``.
        self.rows = 0
        #: cumulative wall time spent inside :meth:`ingest`.
        self.build_seconds = 0.0

    @property
    def segmenter(self) -> SegmentFunction:
        """The segmentation function this index was built with."""
        return self._segmenter

    # ------------------------------------------------------------------
    # build / incremental ingestion
    # ------------------------------------------------------------------
    @classmethod
    def from_examples(
        cls,
        examples: Iterable["TrainingExample"],
        segmenter: SegmentFunction,
    ) -> "TrainingFeatureIndex":
        """Index a batch of training examples (Algorithm 1's pass 0)."""
        index = cls(segmenter)
        for example in examples:
            index.ingest(example.property_values, example.classes)
        return index

    def ingest(
        self,
        property_values: Mapping[IRI, Sequence[str]],
        classes: Iterable[IRI],
    ) -> int:
        """Index one training link; returns its row id.

        Segments every value through the configured segmenter, updates
        the corpus occurrence counter, and appends the link's row to the
        posting of every distinct (property, segment) pair and class —
        set semantics per link, exactly as the frequency passes count.
        """
        started = time.perf_counter()
        row = self.rows
        self.rows += 1
        for prop, values in property_values.items():
            segments: set[str] = set()
            for value in values:
                pieces = self._segmenter(value)
                self.occurrences.update(pieces)
                segments.update(pieces)
            for segment in segments:
                self.pairs.add((prop, segment), row)
        class_fids: List[int] = []
        for cls in classes:
            class_fids.append(self.classes.add(cls, row))
        self._row_classes.append(tuple(class_fids))
        self.build_seconds += time.perf_counter() - started
        return row

    # ------------------------------------------------------------------
    # frequency probes (the three passes)
    # ------------------------------------------------------------------
    def pair_count(self, prop: IRI, segment: str) -> int:
        """``freq(p ∧ a)`` — posting length of the pair feature."""
        return self.pairs.count((prop, segment))

    def class_count(self, cls: IRI) -> int:
        """``freq(c)`` — posting length of the class feature."""
        return self.classes.count(cls)

    def conjunction_count(self, prop: IRI, segment: str, cls: IRI) -> int:
        """``freq(p ∧ a ∧ c) = |post(p, a) ∩ post(c)|``."""
        return self.pairs.posting((prop, segment)).intersection_count(
            self.classes.posting(cls)
        )

    def frequent_pairs(self, min_count: int) -> Dict[Tuple[IRI, str], int]:
        """Pass 1: (property, segment) pairs with ``freq >= min_count``."""
        return {
            feature: len(posting)
            for feature, _, posting in self.pairs.features()
            if len(posting) >= min_count
        }

    def frequent_classes(self, min_count: int) -> Dict[IRI, int]:
        """Pass 2: classes with ``freq >= min_count``."""
        return {
            feature: len(posting)
            for feature, _, posting in self.classes.features()
            if len(posting) >= min_count
        }

    def conjunction_counts(
        self,
        frequent_pairs: Iterable[Tuple[IRI, str]],
        frequent_classes: FrozenSet[IRI] | set,
    ) -> Dict[Tuple[IRI, str, IRI], int]:
        """Pass 3: all frequent-pair × frequent-class conjunction counts.

        For each frequent pair this walks its posting once and joins it
        against the per-row class ids — a simultaneous multi-way
        ``|post(p, a) ∩ post(c)|`` for every class *c* that actually
        co-occurs, skipping the empty intersections a pairwise sweep
        would waste time on. Counts are identical to
        :meth:`conjunction_count` (asserted by the index tests).
        """
        frequent_class_fids = {
            fid
            for cls in frequent_classes
            if (fid := self.classes.vocabulary.id_of(cls)) is not None
        }
        row_classes = self._row_classes
        out: Dict[Tuple[IRI, str, IRI], int] = {}
        feature_of = self.classes.vocabulary.feature_of
        for prop, segment in frequent_pairs:
            per_class: Counter[int] = Counter()
            for row in self.pairs.posting((prop, segment)):
                for fid in row_classes[row]:
                    if fid in frequent_class_fids:
                        per_class[fid] += 1
            for fid, count in per_class.items():
                out[(prop, segment, feature_of(fid))] = count
        return out

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def distinct_segments(self) -> int:
        """Distinct segments seen across all values (paper: 7842)."""
        return len(self.occurrences)

    def segment_occurrences(self) -> int:
        """Total segment occurrences across all values (paper: 26077)."""
        return sum(self.occurrences.values())

    def selected_occurrences(self, segments: Iterable[str]) -> int:
        """Occurrences belonging to the given (surviving) segments."""
        return sum(self.occurrences[segment] for segment in set(segments))

    def stats(self, probe_seconds: float = 0.0) -> IndexStats:
        """Posting-list size/timing report across both feature spaces."""
        return self.pairs.stats(build_seconds=self.build_seconds).merged(
            self.classes.stats(probe_seconds=probe_seconds)
        )

    def __repr__(self) -> str:
        return (
            f"<TrainingFeatureIndex rows={self.rows} "
            f"pairs={len(self.pairs)} classes={len(self.classes)}>"
        )
