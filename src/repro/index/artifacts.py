"""The index artifact store: serialized warm-start state for the engine.

Every one-shot run rebuilds the same state from scratch — the local
record store, the per-signature :class:`~repro.index.keys.RecordKeyIndex`
posting lists, the learned rules, the comparator's similarity cache. A
long-running linking service cannot afford that, and the paper's own
framing points the other way: learned rules are concise artifacts an
expert reviews and *reuses*. This module persists the whole warm-start
surface as an **artifact bundle** — a directory of schema-checked JSON
components plus one manifest — so an engine session opens in O(1):

* ``store.json`` — the local :class:`~repro.linking.records.RecordStore`;
* ``indexes.json`` — shared key indexes by cache signature
  (:class:`FeatureVocabulary` + :class:`PostingList` round-trips);
* ``rules.json`` — the learned rule set, via :mod:`repro.core.serialize`;
* ``ontology.nt`` — the ontology (rule-based blocking needs it), via
  the existing RDF round-trip;
* ``cache.json`` — :class:`~repro.engine.cache.CachedRecordComparator`
  cache contents, LRU order preserved;
* ``training.json`` — the :class:`~repro.index.TrainingFeatureIndex`
  vocabulary and postings plus the learner pin (properties, threshold,
  segmenter, seen links), so a warm session resumes *incremental
  re-learning* where the bundle build stopped instead of replaying the
  whole training set.

Atomicity and integrity: every component is written through
:func:`~repro.ioutils.atomic_write_text`, and ``manifest.json`` —
carrying the schema version, an environment fingerprint and a sha256
digest per component — is written **last**. A bundle without a complete,
digest-consistent manifest is rejected, so a writer killed mid-bundle
can never produce a loadable half-bundle. Loading re-derives nothing:
a reloaded bundle reproduces byte-identical link output (the round-trip
tests pin this across every blocking class and both scoring modes).
"""

from __future__ import annotations

import hashlib
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.index.inverted import InvertedIndex
from repro.index.keys import RecordKeyIndex
from repro.index.postings import PostingList
from repro.index.vocabulary import FeatureVocabulary
from repro.ioutils import atomic_write_text
from repro.rdf.terms import IRI, BNode, Literal, Term

#: Manifest ``format`` tag — rejects non-bundle directories early.
ARTIFACT_FORMAT = "repro-artifact-bundle"

#: Bumped on any incompatible change to the component payloads.
ARTIFACT_SCHEMA_VERSION = 1

MANIFEST_NAME = "manifest.json"
STORE_NAME = "store.json"
INDEXES_NAME = "indexes.json"
RULES_NAME = "rules.json"
ONTOLOGY_NAME = "ontology.nt"
CACHE_NAME = "cache.json"
TRAINING_NAME = "training.json"


class ArtifactError(ValueError):
    """Raised on missing, stale, corrupt or mismatched bundle data."""


def environment_fingerprint() -> Dict[str, str]:
    """The environment a bundle is bound to.

    Python's major.minor and the package version: posting layouts,
    normalization and rule measures are stable within those, and a
    bundle silently crossing either boundary is exactly the stale-state
    bug the fingerprint check exists to reject.
    """
    import repro

    return {
        "python": f"{sys.version_info.major}.{sys.version_info.minor}",
        "repro": repro.__version__,
    }


# ---------------------------------------------------------------------------
# term / record payloads
# ---------------------------------------------------------------------------

def term_to_payload(term: Term) -> Dict[str, Any]:
    """One RDF term as a tagged JSON object."""
    if isinstance(term, IRI):
        return {"type": "iri", "value": term.value}
    if isinstance(term, BNode):
        return {"type": "bnode", "id": term.id}
    if isinstance(term, Literal):
        payload: Dict[str, Any] = {
            "type": "literal",
            "lexical": term.lexical,
            "datatype": term.datatype,
        }
        if term.language is not None:
            payload["language"] = term.language
        return payload
    raise ArtifactError(f"unserializable term: {term!r}")


def term_from_payload(payload: Mapping[str, Any]) -> Term:
    """Rebuild a term from :func:`term_to_payload` output."""
    kind = payload.get("type")
    try:
        if kind == "iri":
            return IRI(payload["value"])
        if kind == "bnode":
            return BNode(payload["id"])
        if kind == "literal":
            return Literal(
                payload["lexical"],
                datatype=payload["datatype"],
                language=payload.get("language"),
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise ArtifactError(f"malformed term payload: {payload!r}") from exc
    raise ArtifactError(f"unknown term type in payload: {payload!r}")


def record_store_to_payload(store) -> Dict[str, Any]:
    """A record store as JSON: records in insertion order, values kept."""
    return {
        "records": [
            {
                "id": term_to_payload(record.id),
                "fields": {
                    name: list(values) for name, values in record.fields.items()
                },
            }
            for record in store
        ]
    }


def record_store_from_payload(payload: Mapping[str, Any]):
    """Rebuild a :class:`RecordStore`; insertion order is the payload order."""
    from repro.linking.records import Record, RecordStore

    store = RecordStore()
    try:
        for entry in payload["records"]:
            store.add(
                Record(
                    id=term_from_payload(entry["id"]),
                    fields={
                        name: tuple(values)
                        for name, values in entry["fields"].items()
                    },
                )
            )
    except (KeyError, TypeError) as exc:
        raise ArtifactError(f"malformed record store payload: {exc}") from exc
    return store


# ---------------------------------------------------------------------------
# index payloads
# ---------------------------------------------------------------------------

def posting_to_payload(posting: PostingList) -> List[int]:
    """A posting list as its row-id list (already sorted ascending)."""
    return posting.to_list()


def posting_from_payload(rows: Sequence[int]) -> PostingList:
    """Rebuild a posting list; rows must be strictly increasing."""
    posting = PostingList()
    try:
        for row in rows:
            posting.append(row)
    except (TypeError, ValueError) as exc:
        raise ArtifactError(f"malformed posting payload: {exc}") from exc
    return posting


def vocabulary_to_payload(vocabulary: FeatureVocabulary) -> List[Any]:
    """Features in dense-id order (ids are implied by position)."""
    return [feature for feature, _ in vocabulary.items()]


def vocabulary_from_payload(features: Sequence[Any]) -> FeatureVocabulary:
    """Rebuild a vocabulary; interning in order reassigns the same ids."""
    vocabulary = FeatureVocabulary()
    for feature in features:
        vocabulary.intern(feature)
    return vocabulary


def inverted_index_to_payload(index: InvertedIndex) -> Dict[str, Any]:
    """Vocabulary + postings, positionally aligned by feature id."""
    features: List[Any] = []
    postings: List[List[int]] = []
    for feature, _, posting in index.features():
        features.append(feature)
        postings.append(posting_to_payload(posting))
    return {"features": features, "postings": postings}


def inverted_index_from_payload(payload: Mapping[str, Any]) -> InvertedIndex:
    """Rebuild an inverted index feature by feature, rows in order."""
    features = payload.get("features")
    postings = payload.get("postings")
    if not isinstance(features, list) or not isinstance(postings, list):
        raise ArtifactError("malformed index payload: features/postings missing")
    if len(features) != len(postings):
        raise ArtifactError(
            f"malformed index payload: {len(features)} features vs "
            f"{len(postings)} postings"
        )
    index = InvertedIndex()
    for feature, rows in zip(features, postings):
        if not rows:
            # the build path only ever creates a feature together with
            # its first row, so an empty posting cannot round-trip
            raise ArtifactError(f"malformed index payload: empty posting for {feature!r}")
        for row in rows:
            index.add(feature, row)
    return index


def record_key_index_to_payload(index: RecordKeyIndex) -> Dict[str, Any]:
    """A record key index: ids (as terms) + its inverted index."""
    return {
        "ids": [
            term_to_payload(index.id_of(ordinal))
            for ordinal in range(index.record_count)
        ],
        "index": inverted_index_to_payload(index._index),
        "build_seconds": index.build_seconds,
    }


def record_key_index_from_payload(payload: Mapping[str, Any]) -> RecordKeyIndex:
    """Rebuild a record key index from its payload."""
    try:
        ids = [term_from_payload(entry) for entry in payload["ids"]]
        inner = inverted_index_from_payload(payload["index"])
        build_seconds = float(payload.get("build_seconds", 0.0))
    except (KeyError, TypeError) as exc:
        raise ArtifactError(f"malformed key-index payload: {exc}") from exc
    return RecordKeyIndex(ids, inner, build_seconds)


# ---------------------------------------------------------------------------
# training payloads (warm-start incremental re-learning)
# ---------------------------------------------------------------------------

def segmenter_to_payload(segmenter) -> Dict[str, Any]:
    """A segmenter as a declarative spec (the bundleable subset).

    Only the stock segmentation strategies under their default
    normalization round-trip — the same declarative-spec discipline the
    work-unit protocol applies to blocking methods: state that cannot
    be rebuilt from a spec is rejected at *write* time, never silently
    mis-restored at load time.
    """
    from repro.text.normalize import NormalizationConfig
    from repro.text.segmentation import (
        NGramSegmenter,
        SeparatorSegmenter,
        TokenSegmenter,
    )

    if getattr(segmenter, "normalization", None) != NormalizationConfig():
        raise ArtifactError(
            f"unbundleable segmenter {segmenter!r}: only stock segmenters "
            f"under default normalization can be serialized"
        )
    if isinstance(segmenter, SeparatorSegmenter):
        return {
            "kind": "separator",
            "separators": segmenter.separators,
            "min_length": segmenter.min_length,
        }
    if isinstance(segmenter, NGramSegmenter):
        return {"kind": "ngram", "n": segmenter.n, "pad": segmenter.pad}
    if isinstance(segmenter, TokenSegmenter):
        return {
            "kind": "token",
            "stopwords": sorted(segmenter.stopwords),
            "min_length": segmenter.min_length,
        }
    raise ArtifactError(
        f"unbundleable segmenter {type(segmenter).__name__}: only "
        f"SeparatorSegmenter, NGramSegmenter and TokenSegmenter serialize"
    )


def segmenter_from_payload(payload: Mapping[str, Any]):
    """Rebuild a segmenter from :func:`segmenter_to_payload` output."""
    from repro.text.segmentation import (
        NGramSegmenter,
        SeparatorSegmenter,
        TokenSegmenter,
    )

    kind = payload.get("kind")
    try:
        if kind == "separator":
            return SeparatorSegmenter(
                separators=payload["separators"],
                min_length=int(payload["min_length"]),
            )
        if kind == "ngram":
            return NGramSegmenter(n=int(payload["n"]), pad=bool(payload["pad"]))
        if kind == "token":
            return TokenSegmenter(
                stopwords=frozenset(payload["stopwords"]),
                min_length=int(payload["min_length"]),
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise ArtifactError(f"malformed segmenter payload: {payload!r}") from exc
    raise ArtifactError(f"unknown segmenter kind in payload: {kind!r}")


@dataclass
class TrainingState:
    """Serialized incremental-learner state, decoupled from the ontology.

    ``index`` is the live :class:`~repro.index.TrainingFeatureIndex`;
    the rest is the learner pin a resumed
    :class:`~repro.core.incremental.IncrementalRuleLearner` needs to
    keep emitting the exact batch-learner rule set: the expert's
    property selection, the support threshold semantics, and the links
    already ingested (``seen``, as raw term pairs — duplicates arriving
    after a resume must still be skipped).
    """

    index: Any
    properties: tuple
    support_threshold: float
    strict_threshold: bool
    seen: List[Any]


def training_state_to_payload(state: TrainingState) -> Dict[str, Any]:
    """The training component body: index postings + learner pin."""
    index = state.index
    pair_features: List[Any] = []
    pair_postings: List[List[int]] = []
    for (prop, segment), _, posting in index.pairs.features():
        pair_features.append([term_to_payload(prop), segment])
        pair_postings.append(posting_to_payload(posting))
    class_features: List[Any] = []
    class_postings: List[List[int]] = []
    for cls, _, posting in index.classes.features():
        class_features.append(term_to_payload(cls))
        class_postings.append(posting_to_payload(posting))
    return {
        "segmenter": segmenter_to_payload(index.segmenter),
        "properties": [term_to_payload(prop) for prop in state.properties],
        "support_threshold": state.support_threshold,
        "strict_threshold": state.strict_threshold,
        "rows": index.rows,
        "build_seconds": index.build_seconds,
        "pairs": {"features": pair_features, "postings": pair_postings},
        "classes": {"features": class_features, "postings": class_postings},
        "row_classes": [list(fids) for fids in index._row_classes],
        "occurrences": dict(index.occurrences),
        "seen": [
            [term_to_payload(external), term_to_payload(local)]
            for external, local in state.seen
        ],
    }


def training_state_from_payload(payload: Mapping[str, Any]) -> TrainingState:
    """Rebuild the training state; posting order reassigns the same ids."""
    from repro.index.training import TrainingFeatureIndex

    try:
        index = TrainingFeatureIndex(segmenter_from_payload(payload["segmenter"]))
        pairs = payload["pairs"]
        for feature, rows in zip(pairs["features"], pairs["postings"]):
            prop = term_from_payload(feature[0])
            for row in rows:
                index.pairs.add((prop, feature[1]), row)
        classes = payload["classes"]
        for feature, rows in zip(classes["features"], classes["postings"]):
            cls = term_from_payload(feature)
            for row in rows:
                index.classes.add(cls, row)
        row_classes = [
            tuple(int(fid) for fid in fids) for fids in payload["row_classes"]
        ]
        rows = int(payload["rows"])
        index.occurrences.update(
            {segment: int(count) for segment, count in payload["occurrences"].items()}
        )
        index.build_seconds = float(payload.get("build_seconds", 0.0))
        seen = [
            (term_from_payload(external), term_from_payload(local))
            for external, local in payload["seen"]
        ]
        properties = tuple(
            term_from_payload(prop) for prop in payload["properties"]
        )
        state = TrainingState(
            index=index,
            properties=properties,
            support_threshold=float(payload["support_threshold"]),
            strict_threshold=bool(payload["strict_threshold"]),
            seen=seen,
        )
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise ArtifactError(f"malformed training payload: {exc}") from exc
    if len(row_classes) != rows:
        raise ArtifactError(
            f"malformed training payload: {rows} rows but "
            f"{len(row_classes)} row-class entries"
        )
    if len(seen) != rows:
        raise ArtifactError(
            f"malformed training payload: {rows} rows but {len(seen)} seen links"
        )
    class_count = len(index.classes)
    for fids in row_classes:
        for fid in fids:
            if not 0 <= fid < class_count:
                raise ArtifactError(
                    f"malformed training payload: row-class id {fid} out of "
                    f"range (have {class_count} class features)"
                )
    index._row_classes = row_classes
    index.rows = rows
    return state


# ---------------------------------------------------------------------------
# the bundle
# ---------------------------------------------------------------------------

@dataclass
class ArtifactBundle:
    """Everything a warm engine session needs, loaded and verified."""

    store: Any
    indexes: Dict[str, RecordKeyIndex] = field(default_factory=dict)
    rules: Any = None
    ontology: Any = None
    comparator_cache: Optional[Dict[str, Any]] = None
    training: Optional[TrainingState] = None
    config: Dict[str, Any] = field(default_factory=dict)
    manifest: Dict[str, Any] = field(default_factory=dict)

    def seed_shared_indexes(self) -> None:
        """Register every bundled index in the shared per-store cache,
        so blocking methods presenting the same signature reuse them
        with zero rebuild."""
        from repro.index.keys import seed_shared_index

        for signature, index in self.indexes.items():
            seed_shared_index(self.store, signature, index)


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def write_bundle(
    path: Path | str,
    *,
    store,
    indexes: Optional[Mapping[str, RecordKeyIndex]] = None,
    rules=None,
    ontology=None,
    comparator_cache=None,
    training=None,
    config: Optional[Mapping[str, Any]] = None,
) -> Path:
    """Write an artifact bundle directory; returns its path.

    Components land first (each atomically), the digest-carrying
    manifest last — the commit point. *comparator_cache* may be a
    :class:`~repro.engine.cache.CachedRecordComparator` (its contents
    are exported) or an already-exported payload dict; *training* may
    be a :class:`TrainingState` or an already-exported payload dict.
    """
    from repro.core.serialize import rules_to_json
    from repro.ontology.loader import ontology_to_graph
    from repro.rdf.ntriples import serialize_ntriples

    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)

    components: Dict[str, str] = {
        STORE_NAME: json.dumps(
            record_store_to_payload(store), indent=2, sort_keys=True
        )
        + "\n",
        INDEXES_NAME: json.dumps(
            {
                "signatures": {
                    signature: record_key_index_to_payload(index)
                    for signature, index in (indexes or {}).items()
                }
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
    }
    if rules is not None:
        components[RULES_NAME] = rules_to_json(rules) + "\n"
    if ontology is not None:
        components[ONTOLOGY_NAME] = serialize_ntriples(
            ontology_to_graph(ontology).triples()
        )
    if comparator_cache is not None:
        payload = (
            comparator_cache.cache_export()
            if hasattr(comparator_cache, "cache_export")
            else comparator_cache
        )
        components[CACHE_NAME] = json.dumps(payload, sort_keys=True) + "\n"
    if training is not None:
        payload = (
            training_state_to_payload(training)
            if isinstance(training, TrainingState)
            else training
        )
        components[TRAINING_NAME] = json.dumps(payload, sort_keys=True) + "\n"

    for name, text in components.items():
        atomic_write_text(path / name, text)

    manifest = {
        "format": ARTIFACT_FORMAT,
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "fingerprint": environment_fingerprint(),
        "config": dict(config or {}),
        "components": {
            name: {"sha256": _digest(text), "bytes": len(text.encode("utf-8"))}
            for name, text in components.items()
        },
    }
    atomic_write_text(
        path / MANIFEST_NAME, json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    )
    return path


def read_manifest(path: Path | str) -> Dict[str, Any]:
    """The verified manifest of the bundle at *path*.

    Checks existence, format tag, schema version and the environment
    fingerprint — everything short of reading the components.
    """
    path = Path(path)
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.is_file():
        raise ArtifactError(
            f"{path}: not an artifact bundle ({MANIFEST_NAME} missing — "
            f"an interrupted build never publishes a manifest; rebuild "
            f"with `repro artifacts build`)"
        )
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"{manifest_path}: invalid JSON ({exc})") from exc
    if manifest.get("format") != ARTIFACT_FORMAT:
        raise ArtifactError(
            f"{path}: not a {ARTIFACT_FORMAT} bundle "
            f"(format={manifest.get('format')!r})"
        )
    version = manifest.get("schema_version")
    if version != ARTIFACT_SCHEMA_VERSION:
        raise ArtifactError(
            f"{path}: stale bundle schema version {version!r} (this build "
            f"reads version {ARTIFACT_SCHEMA_VERSION}) — rebuild the bundle "
            f"with `repro artifacts build`"
        )
    fingerprint = manifest.get("fingerprint") or {}
    expected = environment_fingerprint()
    if fingerprint != expected:
        drift = ", ".join(
            f"{key}: bundle={fingerprint.get(key)!r} env={expected[key]!r}"
            for key in sorted(set(fingerprint) | set(expected))
            if fingerprint.get(key) != expected.get(key)
        )
        raise ArtifactError(
            f"{path}: environment fingerprint mismatch ({drift}) — the "
            f"bundle was built under a different environment; rebuild it "
            f"with `repro artifacts build`"
        )
    return manifest


def _read_component(path: Path, name: str, entry: Mapping[str, Any]) -> str:
    component = path / name
    if not component.is_file():
        raise ArtifactError(
            f"{path}: incomplete bundle — component {name} listed in the "
            f"manifest is missing"
        )
    text = component.read_text()
    digest = _digest(text)
    if digest != entry.get("sha256"):
        raise ArtifactError(
            f"{path}: corrupt bundle — {name} digest {digest[:12]}… does "
            f"not match the manifest ({str(entry.get('sha256'))[:12]}…)"
        )
    return text


def load_bundle(path: Path | str) -> ArtifactBundle:
    """Load and verify the bundle at *path*.

    Every manifest-listed component must exist and match its digest;
    anything else raises :class:`ArtifactError` before partial state
    can leak into a session.
    """
    from repro.core.serialize import rules_from_json
    from repro.ontology.loader import ontology_from_graph
    from repro.rdf.ntriples import parse_ntriples

    path = Path(path)
    manifest = read_manifest(path)
    listed: Dict[str, Mapping[str, Any]] = manifest.get("components", {})
    if STORE_NAME not in listed:
        raise ArtifactError(f"{path}: bundle manifest lists no {STORE_NAME}")

    texts = {
        name: _read_component(path, name, entry) for name, entry in listed.items()
    }

    def parsed(name: str) -> Any:
        try:
            return json.loads(texts[name])
        except json.JSONDecodeError as exc:
            raise ArtifactError(f"{path / name}: invalid JSON ({exc})") from exc

    store = record_store_from_payload(parsed(STORE_NAME))
    indexes: Dict[str, RecordKeyIndex] = {}
    if INDEXES_NAME in texts:
        for signature, payload in parsed(INDEXES_NAME).get("signatures", {}).items():
            indexes[signature] = record_key_index_from_payload(payload)
    rules = rules_from_json(texts[RULES_NAME]) if RULES_NAME in texts else None
    ontology = (
        ontology_from_graph(parse_ntriples(texts[ONTOLOGY_NAME]))
        if ONTOLOGY_NAME in texts
        else None
    )
    comparator_cache = parsed(CACHE_NAME) if CACHE_NAME in texts else None
    training = (
        training_state_from_payload(parsed(TRAINING_NAME))
        if TRAINING_NAME in texts
        else None
    )
    return ArtifactBundle(
        store=store,
        indexes=indexes,
        rules=rules,
        ontology=ontology,
        comparator_cache=comparator_cache,
        training=training,
        config=dict(manifest.get("config", {})),
        manifest=manifest,
    )


def inspect_bundle(path: Path | str) -> Dict[str, Any]:
    """A verified summary of the bundle — the `artifacts inspect` view.

    Runs the full integrity audit (manifest, fingerprint, digests,
    component parses) and reports sizes instead of contents.
    """
    bundle = load_bundle(path)
    cache = bundle.comparator_cache or {}
    return {
        "path": str(Path(path)),
        "schema_version": bundle.manifest.get("schema_version"),
        "fingerprint": bundle.manifest.get("fingerprint"),
        "config": bundle.config,
        "records": len(bundle.store),
        "indexes": {
            signature: {"keys": len(index), "records": index.record_count}
            for signature, index in sorted(bundle.indexes.items())
        },
        "rules": len(bundle.rules) if bundle.rules is not None else 0,
        "ontology_classes": len(bundle.ontology) if bundle.ontology else 0,
        "training_links": bundle.training.index.rows if bundle.training else 0,
        "cached_similarities": len(cache.get("similarities", ())),
        "cached_normalizations": len(cache.get("normalized", ())),
        "components": sorted(bundle.manifest.get("components", {})),
    }
