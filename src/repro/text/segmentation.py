"""Segmentation strategies: how a property value becomes subsegments.

The paper (§4.1): "The way a value is split into segments is specified by
a domain expert. One can use separation characters (e.g., ':', '-', ';',
' ') or n-grams." And in the experiment (§5): "Partnumbers have been split
into 7842 distinct segments (26077 occurrences) using non-alphabetical and
non-numerical characters (e.g. space, '-', '.', ...)."

Every segmenter maps a string to the *list* of its segments (duplicates
preserved — occurrence counts matter for the paper's statistics) and is a
callable, so learners accept any ``Callable[[str], list[str]]``.
"""

from __future__ import annotations

import re
from abc import ABC, abstractmethod
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Sequence

from repro.text.normalize import NormalizationConfig, normalize_value

#: Type alias for anything usable as a segmentation function.
SegmentFunction = Callable[[str], List[str]]


class Segmenter(ABC):
    """Base class for segmentation strategies."""

    def __call__(self, value: str) -> List[str]:
        return self.segment(value)

    @abstractmethod
    def segment(self, value: str) -> List[str]:
        """Split *value* into segments (possibly with duplicates)."""

    def distinct_segments(self, value: str) -> frozenset[str]:
        """The set of distinct segments of *value*."""
        return frozenset(self.segment(value))


@dataclass(frozen=True)
class SeparatorSegmenter(Segmenter):
    """Split at separator characters — the paper's primary strategy.

    With ``separators=None`` (the default) *any* non-alphanumeric character
    separates, exactly as in the Thales experiment; otherwise only the
    given characters do.

    >>> SeparatorSegmenter().segment("CRCW0805-10K 5%")
    ['crcw0805', '10k', '5']
    """

    separators: str | None = None
    min_length: int = 1
    normalization: NormalizationConfig = field(default_factory=NormalizationConfig)

    def _pattern(self) -> re.Pattern[str]:
        if self.separators is None:
            return re.compile(r"[^0-9a-zA-Z]+")
        return re.compile("[" + re.escape(self.separators) + "]+")

    def segment(self, value: str) -> List[str]:
        normalized = normalize_value(value, self.normalization)
        parts = self._pattern().split(normalized)
        return [p for p in parts if len(p) >= self.min_length]


@dataclass(frozen=True)
class NGramSegmenter(Segmenter):
    """Character n-grams — the paper's alternative strategy (§4.1).

    ``pad=True`` frames the value with ``#`` so prefixes/suffixes form
    distinctive grams (standard bi-gram indexing practice in the blocking
    literature the paper cites).

    >>> NGramSegmenter(n=2).segment("t83")
    ['t8', '83']
    """

    n: int = 2
    pad: bool = False
    normalization: NormalizationConfig = field(default_factory=NormalizationConfig)

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"n must be >= 1, got {self.n}")

    def segment(self, value: str) -> List[str]:
        normalized = normalize_value(value, self.normalization)
        if not normalized:
            return []
        if self.pad:
            frame = "#" * (self.n - 1)
            normalized = f"{frame}{normalized}{frame}"
        if len(normalized) < self.n:
            return [normalized]
        return [normalized[i:i + self.n] for i in range(len(normalized) - self.n + 1)]


@dataclass(frozen=True)
class TokenSegmenter(Segmenter):
    """Whitespace word tokens, for label-like values ("Copacabana Beach").

    Optionally drops stopwords so that toponym-style rules key on the
    contentful type word ("beach", "museum", "valley").
    """

    stopwords: frozenset[str] = frozenset()
    min_length: int = 1
    normalization: NormalizationConfig = field(default_factory=NormalizationConfig)

    def segment(self, value: str) -> List[str]:
        normalized = normalize_value(value, self.normalization)
        return [
            tok
            for tok in normalized.split()
            if len(tok) >= self.min_length and tok not in self.stopwords
        ]


@dataclass(frozen=True)
class CompositeSegmenter(Segmenter):
    """Union of several strategies' segments (duplicates across kept).

    Useful for ablations: separator pieces *and* their bigrams.
    """

    segmenters: tuple[Segmenter, ...]

    def __post_init__(self) -> None:
        if not self.segmenters:
            raise ValueError("CompositeSegmenter needs at least one segmenter")

    def segment(self, value: str) -> List[str]:
        out: List[str] = []
        for segmenter in self.segmenters:
            out.extend(segmenter.segment(value))
        return out


@dataclass(frozen=True, slots=True)
class SegmentStatistics:
    """Corpus-level segment statistics, as reported in the paper's §5.

    The Thales numbers: 7842 distinct segments, 26077 occurrences.
    """

    distinct_segments: int
    total_occurrences: int
    occurrences: "Counter[str]"

    def most_common(self, k: int = 10) -> list[tuple[str, int]]:
        """The *k* most frequent segments with their occurrence counts."""
        return self.occurrences.most_common(k)

    def occurrences_above(self, threshold: int) -> int:
        """Total occurrences of segments occurring more than *threshold* times.

        Matches the paper's "7058 occurrences of segments are selected"
        phrasing: occurrences belonging to frequent-enough segments.
        """
        return sum(c for c in self.occurrences.values() if c > threshold)


def segment_statistics(values: Iterable[str], segmenter: SegmentFunction) -> SegmentStatistics:
    """Compute distinct/occurrence counts of segments over *values*."""
    occurrences: Counter[str] = Counter()
    for value in values:
        occurrences.update(segmenter(value))
    return SegmentStatistics(
        distinct_segments=len(occurrences),
        total_occurrences=sum(occurrences.values()),
        occurrences=occurrences,
    )
