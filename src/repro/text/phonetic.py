"""Phonetic encoders used by classic blocking (related-work baselines).

Standard blocking often keys on a phonetic code of a name field so that
spelling variants land in the same block. We implement the two most cited
codes: American Soundex and NYSIIS.
"""

from __future__ import annotations

import re

_SOUNDEX_CODES = {
    **dict.fromkeys("bfpv", "1"),
    **dict.fromkeys("cgjkqsxz", "2"),
    **dict.fromkeys("dt", "3"),
    **dict.fromkeys("l", "4"),
    **dict.fromkeys("mn", "5"),
    **dict.fromkeys("r", "6"),
}

_ALPHA_RE = re.compile(r"[^a-z]")


def soundex(text: str, length: int = 4) -> str:
    """American Soundex code of *text* (empty input -> empty string).

    >>> soundex("Robert") == soundex("Rupert") == "R163"
    True
    """
    cleaned = _ALPHA_RE.sub("", text.casefold())
    if not cleaned:
        return ""
    first = cleaned[0]
    # encode, treating h/w as transparent between same-coded letters
    encoded = [first.upper()]
    last_code = _SOUNDEX_CODES.get(first, "")
    for ch in cleaned[1:]:
        if ch in "hw":
            continue
        code = _SOUNDEX_CODES.get(ch, "")
        if code and code != last_code:
            encoded.append(code)
        last_code = code
    result = "".join(encoded)
    return (result + "0" * length)[:length]


def nysiis(text: str) -> str:
    """NYSIIS phonetic code of *text* (empty input -> empty string).

    Implements the original 1970 NYSIIS algorithm.
    """
    cleaned = _ALPHA_RE.sub("", text.casefold())
    if not cleaned:
        return ""
    key = cleaned

    # 1. transcode first characters
    for src, dst in (("mac", "mcc"), ("kn", "nn"), ("k", "c"),
                     ("ph", "ff"), ("pf", "ff"), ("sch", "sss")):
        if key.startswith(src):
            key = dst + key[len(src):]
            break

    # 2. transcode last characters
    for src, dst in (("ee", "y"), ("ie", "y"), ("dt", "d"), ("rt", "d"),
                     ("rd", "d"), ("nt", "d"), ("nd", "d")):
        if key.endswith(src):
            key = key[: -len(src)] + dst
            break

    # 3. first character of the key = first character of the name
    first = key[0]
    rest = key[1:]

    # 4. translate remaining characters; duplicate elimination must also
    # consider the retained first character (e.g. "ffilip" -> "falap",
    # not "ffalap")
    out: list[str] = []
    i = 0
    prev = first
    while i < len(rest):
        ch = rest[i]
        replaced: str
        if rest[i:i + 2] == "ev":
            replaced = "af"
            i += 2
        elif ch in "aeiou":
            replaced = "a"
            i += 1
        elif ch == "q":
            replaced = "g"
            i += 1
        elif ch == "z":
            replaced = "s"
            i += 1
        elif ch == "m":
            replaced = "n"
            i += 1
        elif rest[i:i + 2] == "kn":
            replaced = "n"
            i += 2
        elif ch == "k":
            replaced = "c"
            i += 1
        elif rest[i:i + 3] == "sch":
            replaced = "sss"
            i += 3
        elif rest[i:i + 2] == "ph":
            replaced = "ff"
            i += 2
        elif ch == "h" and (
            prev not in "aeiou"
            or (i + 1 < len(rest) and rest[i + 1] not in "aeiou")
        ):
            replaced = prev
            i += 1
        elif ch == "w" and prev in "aeiou":
            replaced = prev
            i += 1
        else:
            replaced = ch
            i += 1
        for r in replaced:
            last = out[-1] if out else first
            if last != r:
                out.append(r)
        prev = out[-1] if out else prev

    code = "".join(out)

    # 5. trailing s / ay / a adjustments
    if code.endswith("s"):
        code = code[:-1]
    if code.endswith("ay"):
        code = code[:-2] + "y"
    if code.endswith("a"):
        code = code[:-1]

    return (first + code).upper()
