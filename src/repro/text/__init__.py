"""Text substrate: normalization, segmentation, similarity, phonetics.

The paper's rules fire on *subsegments* of property values: "the way a
value is split into segments is specified by a domain expert. One can use
separation characters (e.g. ':', '-', ';', ' ') or n-grams." The Thales
experiment splits part-numbers at non-alphabetical and non-numerical
characters. :class:`SeparatorSegmenter` and :class:`NGramSegmenter`
implement exactly those two strategies; :class:`TokenSegmenter` adds the
word-token variant used by the toponym example in the paper's §4.

The similarity and phonetic modules serve the downstream linking step and
the classic blocking baselines from the related-work section.
"""

from repro.text.normalize import normalize_value, strip_accents, NormalizationConfig
from repro.text.segmentation import (
    Segmenter,
    SeparatorSegmenter,
    NGramSegmenter,
    TokenSegmenter,
    CompositeSegmenter,
    segment_statistics,
    SegmentStatistics,
)
from repro.text.similarity import (
    levenshtein_distance,
    levenshtein_similarity,
    damerau_levenshtein_distance,
    jaro_similarity,
    jaro_winkler_similarity,
    jaccard_similarity,
    dice_similarity,
    qgram_profile,
    qgram_cosine_similarity,
    monge_elkan_similarity,
    TfIdfVectorizer,
    longest_common_subsequence,
    lcs_similarity,
    overlap_coefficient,
    smith_waterman_similarity,
)
from repro.text.phonetic import soundex, nysiis

__all__ = [
    "normalize_value",
    "strip_accents",
    "NormalizationConfig",
    "Segmenter",
    "SeparatorSegmenter",
    "NGramSegmenter",
    "TokenSegmenter",
    "CompositeSegmenter",
    "segment_statistics",
    "SegmentStatistics",
    "levenshtein_distance",
    "levenshtein_similarity",
    "damerau_levenshtein_distance",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "jaccard_similarity",
    "dice_similarity",
    "qgram_profile",
    "qgram_cosine_similarity",
    "monge_elkan_similarity",
    "TfIdfVectorizer",
    "longest_common_subsequence",
    "lcs_similarity",
    "overlap_coefficient",
    "smith_waterman_similarity",
    "soundex",
    "nysiis",
]
