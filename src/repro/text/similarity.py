"""String similarity measures used by the linker and blocking baselines.

All similarities return values in ``[0, 1]`` with 1 meaning identical;
distances return non-negative integers. Implementations are classical —
Levenshtein/Damerau dynamic programs, Jaro/Jaro-Winkler as specified by
Winkler (1990), token/qgram set measures, Monge-Elkan composition and a
small TF-IDF cosine vectorizer for label fields.
"""

from __future__ import annotations

import math
from collections import Counter
from functools import lru_cache
from typing import Callable, Dict, Iterable, List, Sequence, Tuple


def levenshtein_distance(a: str, b: str) -> int:
    """Minimum number of insertions, deletions and substitutions."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, ch_a in enumerate(a, start=1):
        current = [i]
        for j, ch_b in enumerate(b, start=1):
            cost = 0 if ch_a == ch_b else 1
            current.append(
                min(
                    previous[j] + 1,        # deletion
                    current[j - 1] + 1,     # insertion
                    previous[j - 1] + cost, # substitution
                )
            )
        previous = current
    return previous[-1]


def levenshtein_similarity(a: str, b: str) -> float:
    """``1 - distance / max(len)``; 1.0 for two empty strings."""
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    return 1.0 - levenshtein_distance(a, b) / longest


def damerau_levenshtein_distance(a: str, b: str) -> int:
    """Levenshtein plus transposition of adjacent characters."""
    if a == b:
        return 0
    len_a, len_b = len(a), len(b)
    if len_a == 0:
        return len_b
    if len_b == 0:
        return len_a
    # full matrix (restricted Damerau-Levenshtein / optimal string alignment)
    d = [[0] * (len_b + 1) for _ in range(len_a + 1)]
    for i in range(len_a + 1):
        d[i][0] = i
    for j in range(len_b + 1):
        d[0][j] = j
    for i in range(1, len_a + 1):
        for j in range(1, len_b + 1):
            cost = 0 if a[i - 1] == b[j - 1] else 1
            d[i][j] = min(
                d[i - 1][j] + 1,
                d[i][j - 1] + 1,
                d[i - 1][j - 1] + cost,
            )
            if (
                i > 1
                and j > 1
                and a[i - 1] == b[j - 2]
                and a[i - 2] == b[j - 1]
            ):
                d[i][j] = min(d[i][j], d[i - 2][j - 2] + 1)
    return d[len_a][len_b]


def jaro_similarity(a: str, b: str) -> float:
    """Jaro similarity (the measure behind the 1985 Tampa census study

    cited by the paper as the origin of blocking).
    """
    if a == b:
        return 1.0
    len_a, len_b = len(a), len(b)
    if len_a == 0 or len_b == 0:
        return 0.0
    window = max(len_a, len_b) // 2 - 1
    window = max(window, 0)
    matched_a = [False] * len_a
    matched_b = [False] * len_b
    matches = 0
    for i, ch in enumerate(a):
        lo = max(0, i - window)
        hi = min(len_b, i + window + 1)
        for j in range(lo, hi):
            if not matched_b[j] and b[j] == ch:
                matched_a[i] = True
                matched_b[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    transpositions = 0
    k = 0
    for i in range(len_a):
        if matched_a[i]:
            while not matched_b[k]:
                k += 1
            if a[i] != b[k]:
                transpositions += 1
            k += 1
    transpositions //= 2
    return (
        matches / len_a + matches / len_b + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler_similarity(a: str, b: str, prefix_scale: float = 0.1, max_prefix: int = 4) -> float:
    """Jaro similarity boosted for common prefixes (Winkler's variant)."""
    if not 0.0 <= prefix_scale <= 0.25:
        raise ValueError("prefix_scale must be in [0, 0.25]")
    jaro = jaro_similarity(a, b)
    prefix = 0
    for ch_a, ch_b in zip(a, b):
        if ch_a != ch_b or prefix == max_prefix:
            break
        prefix += 1
    return jaro + prefix * prefix_scale * (1.0 - jaro)


def jaccard_similarity(a: Iterable[str], b: Iterable[str]) -> float:
    """|A ∩ B| / |A ∪ B| over token sets; 1.0 when both are empty."""
    set_a, set_b = set(a), set(b)
    if not set_a and not set_b:
        return 1.0
    union = set_a | set_b
    return len(set_a & set_b) / len(union)


def dice_similarity(a: Iterable[str], b: Iterable[str]) -> float:
    """2|A ∩ B| / (|A| + |B|) over token sets; 1.0 when both are empty."""
    set_a, set_b = set(a), set(b)
    if not set_a and not set_b:
        return 1.0
    if not set_a or not set_b:
        return 0.0
    return 2 * len(set_a & set_b) / (len(set_a) + len(set_b))


def qgram_profile(text: str, q: int = 2, pad: bool = True) -> Counter:
    """Multiset of character q-grams of *text* (padded with ``#``)."""
    if q < 1:
        raise ValueError(f"q must be >= 1, got {q}")
    if pad:
        frame = "#" * (q - 1)
        text = f"{frame}{text}{frame}"
    if not text:
        return Counter()
    if len(text) < q:
        return Counter([text])
    return Counter(text[i:i + q] for i in range(len(text) - q + 1))


@lru_cache(maxsize=8192)
def _qgram_profile_normed(text: str, q: int) -> Tuple[Dict[str, int], float]:
    """Memoized (profile, L2 norm) for the cosine hot path.

    Blocking and canopy clustering compare one value against a whole
    block, so one side repeats across thousands of calls; rebuilding the
    Counter each time dominated ``qgram_cosine_similarity``. The cached
    dict is shared — callers must treat it as read-only.
    """
    profile = qgram_profile(text, q)
    norm = math.sqrt(sum(count * count for count in profile.values()))
    return dict(profile), norm


def qgram_cosine_similarity(a: str, b: str, q: int = 2) -> float:
    """Cosine between q-gram count vectors; 1.0 when both empty."""
    profile_a, norm_a = _qgram_profile_normed(a, q)
    profile_b, norm_b = _qgram_profile_normed(b, q)
    if not profile_a and not profile_b:
        return 1.0
    if not profile_a or not profile_b:
        return 0.0
    dot = sum(count * profile_b.get(gram, 0) for gram, count in profile_a.items())
    return dot / (norm_a * norm_b)


def monge_elkan_similarity(
    tokens_a: Sequence[str],
    tokens_b: Sequence[str],
    inner: Callable[[str, str], float] = jaro_winkler_similarity,
) -> float:
    """Average best-match similarity of each token of *a* against *b*.

    Note the measure is asymmetric by definition; callers wanting symmetry
    should average both directions.
    """
    if not tokens_a:
        return 1.0 if not tokens_b else 0.0
    if not tokens_b:
        return 0.0
    total = 0.0
    for tok_a in tokens_a:
        total += max(inner(tok_a, tok_b) for tok_b in tokens_b)
    return total / len(tokens_a)


class TfIdfVectorizer:
    """A small TF-IDF + cosine model over tokenized documents.

    Fit on the catalog's label corpus once, then compare individual label
    pairs. IDF uses the standard smoothed form ``log((1+N)/(1+df)) + 1``.
    """

    def __init__(self, tokenizer: Callable[[str], List[str]] | None = None) -> None:
        self._tokenizer = tokenizer or (lambda text: text.casefold().split())
        self._idf: Dict[str, float] = {}
        self._fitted = False

    @property
    def fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._fitted

    def fit(self, documents: Iterable[str]) -> "TfIdfVectorizer":
        """Learn IDF weights from *documents*; returns self for chaining."""
        doc_freq: Counter[str] = Counter()
        n_docs = 0
        for doc in documents:
            n_docs += 1
            doc_freq.update(set(self._tokenizer(doc)))
        self._idf = {
            token: math.log((1 + n_docs) / (1 + df)) + 1.0
            for token, df in doc_freq.items()
        }
        self._default_idf = math.log(1 + n_docs) + 1.0  # unseen tokens: df=0
        self._fitted = True
        return self

    def vector(self, document: str) -> Dict[str, float]:
        """The TF-IDF vector of *document* as a sparse dict."""
        if not self._fitted:
            raise RuntimeError("TfIdfVectorizer.fit must be called first")
        counts = Counter(self._tokenizer(document))
        return {
            token: tf * self._idf.get(token, self._default_idf)
            for token, tf in counts.items()
        }

    def similarity(self, a: str, b: str) -> float:
        """Cosine similarity between the TF-IDF vectors of *a* and *b*."""
        vec_a = self.vector(a)
        vec_b = self.vector(b)
        if not vec_a and not vec_b:
            return 1.0
        if not vec_a or not vec_b:
            return 0.0
        dot = sum(w * vec_b.get(t, 0.0) for t, w in vec_a.items())
        norm_a = math.sqrt(sum(w * w for w in vec_a.values()))
        norm_b = math.sqrt(sum(w * w for w in vec_b.values()))
        if norm_a == 0.0 or norm_b == 0.0:
            return 0.0
        return dot / (norm_a * norm_b)


def longest_common_subsequence(a: str, b: str) -> int:
    """Length of the longest (not necessarily contiguous) common subsequence."""
    if not a or not b:
        return 0
    previous = [0] * (len(b) + 1)
    for ch_a in a:
        current = [0]
        for j, ch_b in enumerate(b, start=1):
            if ch_a == ch_b:
                current.append(previous[j - 1] + 1)
            else:
                current.append(max(previous[j], current[j - 1]))
        previous = current
    return previous[-1]


def lcs_similarity(a: str, b: str) -> float:
    """``LCS(a, b) / max(len)``; 1.0 for two empty strings."""
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    return longest_common_subsequence(a, b) / longest


def overlap_coefficient(a: Iterable[str], b: Iterable[str]) -> float:
    """|A ∩ B| / min(|A|, |B|) over token sets; 1.0 when both are empty.

    The natural measure when one record's field is a *subset* of the
    other's (e.g. provider part numbers that drop decorative segments).
    """
    set_a, set_b = set(a), set(b)
    if not set_a and not set_b:
        return 1.0
    if not set_a or not set_b:
        return 0.0
    return len(set_a & set_b) / min(len(set_a), len(set_b))


def smith_waterman_similarity(
    a: str,
    b: str,
    match_score: float = 2.0,
    mismatch_penalty: float = -1.0,
    gap_penalty: float = -1.0,
) -> float:
    """Normalized Smith-Waterman local-alignment similarity in [0, 1].

    Finds the best-scoring *local* alignment (classic dynamic program)
    and divides by the best possible score ``match_score * min(len)``.
    Well suited to part numbers sharing an embedded series code.
    """
    if match_score <= 0:
        raise ValueError("match_score must be positive")
    if not a or not b:
        return 1.0 if not a and not b else 0.0
    rows = len(a) + 1
    cols = len(b) + 1
    best = 0.0
    previous = [0.0] * cols
    for i in range(1, rows):
        current = [0.0] * cols
        for j in range(1, cols):
            score = match_score if a[i - 1] == b[j - 1] else mismatch_penalty
            current[j] = max(
                0.0,
                previous[j - 1] + score,
                previous[j] + gap_penalty,
                current[j - 1] + gap_penalty,
            )
            best = max(best, current[j])
        previous = current
    return best / (match_score * min(len(a), len(b)))
