"""Value normalization applied before segmentation and comparison.

Part-numbers arrive from providers with inconsistent case, stray accents
(manufacturer names) and decorative whitespace. Normalization is kept
configurable because the paper's expert controls the pre-processing: the
default folds case and collapses whitespace but preserves the separator
characters the segmenter needs.
"""

from __future__ import annotations

import re
import unicodedata
from dataclasses import dataclass


def strip_accents(text: str) -> str:
    """Remove combining marks: ``"Saïs"`` -> ``"Sais"``."""
    decomposed = unicodedata.normalize("NFKD", text)
    return "".join(ch for ch in decomposed if not unicodedata.combining(ch))


_WHITESPACE_RE = re.compile(r"\s+")


@dataclass(frozen=True, slots=True)
class NormalizationConfig:
    """Switches for :func:`normalize_value`.

    The defaults match the reproduction's Thales-like pipeline: case-fold,
    de-accent, collapse runs of whitespace, trim. Punctuation is *kept* —
    it carries the segment boundaries.
    """

    casefold: bool = True
    remove_accents: bool = True
    collapse_whitespace: bool = True
    strip: bool = True


DEFAULT_NORMALIZATION = NormalizationConfig()


def normalize_value(text: str, config: NormalizationConfig = DEFAULT_NORMALIZATION) -> str:
    """Normalize a property value according to *config*.

    >>> normalize_value("  CRCW0805\\t10K ")
    'crcw0805 10k'
    """
    result = text
    if config.remove_accents:
        result = strip_accents(result)
    if config.casefold:
        result = result.casefold()
    if config.collapse_whitespace:
        result = _WHITESPACE_RE.sub(" ", result)
    if config.strip:
        result = result.strip()
    return result
