"""Benchmark specifications and the standardized result schema.

A *benchmark* is a named, seeded, reproducible measurement: a workload
(built by a factory from :mod:`repro.bench.workloads`), a ``measure``
callable that runs the hot path and extracts flat numeric metrics, an
optional set of shape ``checks`` (the reproduction claims the old
``bench_*.py`` scripts asserted inline), and the **metric budgets** the
comparator gates on.

Every run produces one :class:`BenchmarkResult` in a versioned schema —
metrics plus an environment fingerprint — serialized to
``benchmarks/results/trajectory/BENCH_<name>.json``. Checked-in
baselines use the same schema, so the comparator
(:mod:`repro.bench.compare`) diffs like against like.

The design deliberately mirrors :mod:`repro.scenarios.spec`: thin frozen
spec objects, a library module that registers the concrete instances,
and a runner that owns execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

#: Benchmark tiers, cheapest first. A spec's tier is the *cheapest* tier
#: that includes it: ``--tier smoke`` runs only smoke specs, ``--tier
#: serve-load`` adds the concurrent-serving load test, ``--tier
#: standard`` adds the paper-scale measurements, ``--tier full`` runs
#: everything. (Keep the CLI ``bench --tier`` choices in sync.)
TIERS = ("smoke", "serve-load", "standard", "full")

#: Version of the on-disk result schema. Bump when the payload shape
#: changes incompatibly; the loader rejects mismatched files loudly
#: rather than mis-diffing old trajectories.
SCHEMA_VERSION = 1

#: Budget directions: which way a metric is allowed to drift.
DIRECTIONS = ("lower", "higher")

MetricValue = float
Metrics = Dict[str, MetricValue]


def tier_rank(tier: str) -> int:
    """Position of *tier* in :data:`TIERS` (raises on unknown tiers)."""
    try:
        return TIERS.index(tier)
    except ValueError:
        raise ValueError(f"tier must be one of {TIERS}, got {tier!r}") from None


def tier_includes(requested: str, spec_tier: str) -> bool:
    """Whether a run at *requested* tier executes a *spec_tier* spec."""
    return tier_rank(spec_tier) <= tier_rank(requested)


@dataclass(frozen=True, slots=True)
class MetricBudget:
    """A per-metric tolerance envelope for the regression comparator.

    ``direction`` says which way is *better*: ``lower`` for wall times,
    ``higher`` for throughput and speedups. ``rel_tolerance`` is the
    allowed relative drift in the *bad* direction — a ``lower`` metric
    with tolerance 0.75 may grow to ``baseline * 1.75`` before the
    comparator calls it a regression; a ``higher`` metric with tolerance
    0.5 may shrink to ``baseline * 0.5``.

    Tolerances on wall-clock metrics are deliberately generous (CI
    runners and laptops differ), but must stay below 1.0 so a genuine
    2x slowdown always trips the gate (the acceptance self-test in
    ``tests/bench/test_selftest.py`` pins exactly that).
    """

    metric: str
    direction: str = "lower"
    rel_tolerance: float = 0.75

    def __post_init__(self) -> None:
        if not self.metric:
            raise ValueError("budget metric name must be non-empty")
        if self.direction not in DIRECTIONS:
            raise ValueError(
                f"direction must be one of {DIRECTIONS}, got {self.direction!r}"
            )
        if self.rel_tolerance < 0:
            raise ValueError(
                f"rel_tolerance must be >= 0, got {self.rel_tolerance}"
            )

    def allowed_bound(self, baseline: float) -> float:
        """The worst value of the metric that still passes."""
        if self.direction == "lower":
            return baseline * (1.0 + self.rel_tolerance)
        return baseline * (1.0 - self.rel_tolerance)

    def is_regression(self, baseline: float, current: float) -> bool:
        """Whether *current* breaches the envelope around *baseline*."""
        bound = self.allowed_bound(baseline)
        if self.direction == "lower":
            return current > bound
        return current < bound

    def is_improvement(self, baseline: float, current: float) -> bool:
        """Whether *current* beats *baseline* (any margin)."""
        if self.direction == "lower":
            return current < baseline
        return current > baseline


@dataclass(slots=True)
class Measurement:
    """What one ``measure`` callable produced.

    ``metrics`` must be a flat ``name -> number`` mapping (this is what
    lands in the trajectory schema and what budgets gate on);
    ``text``/``data`` feed the legacy per-benchmark report twins under
    ``benchmarks/results/`` so the pre-subsystem result files keep their
    shape.
    """

    metrics: Metrics
    text: str = ""
    data: Any = None

    def __post_init__(self) -> None:
        for key, value in self.metrics.items():
            if not isinstance(key, str) or not key:
                raise ValueError(f"metric names must be non-empty strings, got {key!r}")
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(
                    f"metric {key!r} must be numeric, got {type(value).__name__}"
                )


#: Runs the benchmark on a built workload and extracts metrics.
MeasureFn = Callable[[Any], Measurement]

#: A post-measurement shape check; raises AssertionError on violation.
CheckFn = Callable[[Measurement], None]


@dataclass(frozen=True)
class BenchmarkSpec:
    """A named, tiered, reproducible benchmark.

    * ``name`` — registry key (kebab-case);
    * ``tier`` — cheapest tier that includes the spec (see :data:`TIERS`);
    * ``workload`` — name of a seeded factory in
      :mod:`repro.bench.workloads` (built once per process, shared
      across specs — generation is setup cost, not measured work);
    * ``measure`` — runs the hot path, returns a :class:`Measurement`;
    * ``budgets`` — tolerance envelopes the comparator gates on;
    * ``checks`` — reproduction-shape assertions run after measuring;
    * ``report_name`` — legacy ``benchmarks/results/<report_name>.{txt,json}``
      twin to keep writing (defaults to the spec name with underscores).
    """

    name: str
    description: str
    tier: str
    workload: str
    measure: MeasureFn
    budgets: Tuple[MetricBudget, ...] = ()
    checks: Tuple[CheckFn, ...] = ()
    report_name: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("benchmark name must be non-empty")
        tier_rank(self.tier)  # validates
        if not self.workload:
            raise ValueError(f"benchmark {self.name!r} needs a workload name")

    @property
    def legacy_report(self) -> str:
        """The stem of the legacy txt/json twin under ``results/``."""
        return self.report_name or self.name.replace("-", "_")


@dataclass(frozen=True)
class BenchmarkResult:
    """One standardized run record — the unit of the perf trajectory."""

    benchmark: str
    tier: str
    metrics: Metrics
    environment: Dict[str, Any] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    def to_payload(self) -> Dict[str, Any]:
        """The JSON document written to ``BENCH_<name>.json``."""
        return {
            "schema_version": self.schema_version,
            "benchmark": self.benchmark,
            "tier": self.tier,
            "metrics": dict(sorted(self.metrics.items())),
            "environment": dict(sorted(self.environment.items())),
        }


class SchemaError(ValueError):
    """A result payload that does not match the trajectory schema."""


def result_from_payload(payload: Mapping[str, Any]) -> BenchmarkResult:
    """Parse and validate one trajectory/baseline JSON document."""
    if not isinstance(payload, Mapping):
        raise SchemaError(f"result payload must be an object, got {type(payload).__name__}")
    missing = [
        key
        for key in ("schema_version", "benchmark", "tier", "metrics", "environment")
        if key not in payload
    ]
    if missing:
        raise SchemaError(f"result payload missing keys: {', '.join(missing)}")
    version = payload["schema_version"]
    if version != SCHEMA_VERSION:
        raise SchemaError(
            f"unsupported schema_version {version!r} (expected {SCHEMA_VERSION})"
        )
    name = payload["benchmark"]
    if not isinstance(name, str) or not name:
        raise SchemaError("benchmark name must be a non-empty string")
    tier = payload["tier"]
    if tier not in TIERS:
        raise SchemaError(f"tier must be one of {TIERS}, got {tier!r}")
    metrics = payload["metrics"]
    if not isinstance(metrics, Mapping):
        raise SchemaError("metrics must be an object")
    parsed: Metrics = {}
    for key, value in metrics.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SchemaError(f"metric {key!r} must be numeric, got {value!r}")
        parsed[str(key)] = value
    environment = payload["environment"]
    if not isinstance(environment, Mapping):
        raise SchemaError("environment must be an object")
    return BenchmarkResult(
        benchmark=name,
        tier=tier,
        metrics=parsed,
        environment=dict(environment),
        schema_version=version,
    )
