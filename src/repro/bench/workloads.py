"""Seeded workload factories shared across benchmark specs.

Workload generation is setup cost, not measured work (the same rule the
old session-scoped pytest fixtures enforced), so factories are memoized
per process: ten specs over the paper-scale catalog build it once.
Every factory is fully seeded — two processes build byte-identical
workloads — which is what makes trajectory points comparable across
runs and machines.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

_FACTORIES: Dict[str, Callable[[], Any]] = {}
_BUILT: Dict[str, Any] = {}


def workload_factory(name: str):
    """Decorator: register a workload factory under *name*."""

    def decorate(factory: Callable[[], Any]) -> Callable[[], Any]:
        if name in _FACTORIES:
            raise ValueError(f"workload {name!r} is already registered")
        _FACTORIES[name] = factory
        return factory

    return decorate


def workload_names() -> List[str]:
    """Registered workload names, in registration order."""
    return list(_FACTORIES)


def build_workload(name: str, fresh: bool = False) -> Any:
    """The (memoized) workload for *name*; ``fresh`` forces a rebuild."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(_FACTORIES)) or "<none>"
        raise KeyError(f"unknown workload {name!r}; registered: {known}") from None
    if fresh:
        return factory()
    if name not in _BUILT:
        _BUILT[name] = factory()
    return _BUILT[name]


def clear_workload_cache() -> None:
    """Drop memoized workloads (tests; long-lived processes)."""
    _BUILT.clear()


@workload_factory("tiny-catalog")
def _tiny_catalog():
    from repro.datagen import CatalogConfig, ElectronicCatalogGenerator

    return ElectronicCatalogGenerator(CatalogConfig.tiny()).generate()


@workload_factory("small-catalog")
def _small_catalog():
    from repro.datagen import CatalogConfig, ElectronicCatalogGenerator

    return ElectronicCatalogGenerator(CatalogConfig.small()).generate()


@workload_factory("thales-catalog")
def _thales_catalog():
    """The paper-scale catalog (566 classes, |TS| = 10 265)."""
    from repro.datagen import CatalogConfig, ElectronicCatalogGenerator

    return ElectronicCatalogGenerator(CatalogConfig.thales_like()).generate()


@workload_factory("gazetteer")
def _gazetteer():
    """The toponym second domain at its default (paper-claim) scale."""
    from repro.datagen.toponyms import ToponymConfig, generate_gazetteer

    return generate_gazetteer(ToponymConfig())


@workload_factory("gazetteer-linking")
def _gazetteer_linking():
    """A smaller toponym gazetteer sized for engine-identity checks."""
    from repro.datagen.toponyms import ToponymConfig, generate_gazetteer

    return generate_gazetteer(ToponymConfig(n_links=400, catalog_size=1200))
