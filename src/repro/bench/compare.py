"""The regression comparator: current run vs checked-in baselines.

For every selected spec the comparator loads the latest trajectory
record and the committed baseline (same schema, same reader), walks the
spec's :class:`~repro.bench.spec.MetricBudget` envelopes and classifies
each gated metric:

* ``ok`` — inside the envelope;
* ``improved`` — inside the envelope *and* better than baseline (worth
  a baseline refresh when it sticks);
* ``regression`` — outside the envelope in the bad direction;
* ``missing-metric`` — the baseline or the run lacks the gated metric
  (treated as a regression: a silently vanished metric must not pass).

A benchmark with no baseline file reports ``missing-baseline`` and does
**not** fail the gate by default — first runs of a new benchmark land
before their baseline does — unless ``fail_on_missing`` asks for
strictness. Ungated metrics are reported informationally, never gating.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence

from repro.bench.io import read_result, trajectory_dir
from repro.bench.runner import resolve_specs
from repro.bench.spec import BenchmarkResult, BenchmarkSpec, MetricBudget

#: Per-metric comparison states.
METRIC_OK = "ok"
METRIC_IMPROVED = "improved"
METRIC_REGRESSION = "regression"
METRIC_MISSING = "missing-metric"

#: Per-benchmark states.
BENCH_OK = "ok"
BENCH_REGRESSION = "regression"
BENCH_MISSING_BASELINE = "missing-baseline"
BENCH_MISSING_RESULT = "missing-result"


@dataclass(frozen=True, slots=True)
class MetricComparison:
    """One gated metric, diffed."""

    metric: str
    direction: str
    status: str
    baseline: Optional[float]
    current: Optional[float]
    allowed: Optional[float]

    @property
    def ratio(self) -> Optional[float]:
        """current / baseline (None when either side is missing/zero)."""
        if self.baseline is None or self.current is None or self.baseline == 0:
            return None
        return self.current / self.baseline

    def format(self) -> str:
        arrow = {"lower": "<=", "higher": ">="}[self.direction]
        baseline = "n/a" if self.baseline is None else f"{self.baseline:.6g}"
        current = "n/a" if self.current is None else f"{self.current:.6g}"
        allowed = "n/a" if self.allowed is None else f"{self.allowed:.6g}"
        ratio = "" if self.ratio is None else f" (x{self.ratio:.2f})"
        return (
            f"    {self.status:<12} {self.metric}: {current} vs baseline "
            f"{baseline}{ratio}, required {arrow} {allowed}"
        )


@dataclass
class BenchComparison:
    """One benchmark, diffed against its baseline."""

    benchmark: str
    status: str
    metrics: List[MetricComparison] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricComparison]:
        return [m for m in self.metrics if m.status in (METRIC_REGRESSION, METRIC_MISSING)]

    def format(self) -> str:
        lines = [f"  {self.benchmark}: {self.status}"]
        lines.extend(m.format() for m in self.metrics)
        return "\n".join(lines)


@dataclass
class ComparisonReport:
    """The whole gate: every selected benchmark, classified."""

    comparisons: List[BenchComparison]

    @property
    def regressed(self) -> List[BenchComparison]:
        return [c for c in self.comparisons if c.status == BENCH_REGRESSION]

    @property
    def missing_baselines(self) -> List[BenchComparison]:
        return [c for c in self.comparisons if c.status == BENCH_MISSING_BASELINE]

    @property
    def missing_results(self) -> List[BenchComparison]:
        return [c for c in self.comparisons if c.status == BENCH_MISSING_RESULT]

    def ok(self, fail_on_missing: bool = False) -> bool:
        """Whether the gate passes."""
        if self.regressed:
            return False
        if fail_on_missing and (self.missing_baselines or self.missing_results):
            return False
        return True

    def format(self) -> str:
        lines = ["benchmark regression report"]
        lines.extend(c.format() for c in self.comparisons)
        verdict = (
            f"{len(self.comparisons)} compared, "
            f"{len(self.regressed)} regressed, "
            f"{len(self.missing_baselines)} without baseline, "
            f"{len(self.missing_results)} without result"
        )
        lines.append(verdict)
        return "\n".join(lines)


def compare_result(
    spec: BenchmarkSpec,
    current: Optional[BenchmarkResult],
    baseline: Optional[BenchmarkResult],
) -> BenchComparison:
    """Diff one benchmark's run against its baseline."""
    if current is None:
        return BenchComparison(spec.name, BENCH_MISSING_RESULT)
    if baseline is None:
        return BenchComparison(spec.name, BENCH_MISSING_BASELINE)
    metrics: List[MetricComparison] = []
    regressed = False
    for budget in spec.budgets:
        metrics.append(_compare_metric(budget, baseline, current))
        if metrics[-1].status in (METRIC_REGRESSION, METRIC_MISSING):
            regressed = True
    status = BENCH_REGRESSION if regressed else BENCH_OK
    return BenchComparison(spec.name, status, metrics)


def _compare_metric(
    budget: MetricBudget, baseline: BenchmarkResult, current: BenchmarkResult
) -> MetricComparison:
    base_value = baseline.metrics.get(budget.metric)
    cur_value = current.metrics.get(budget.metric)
    if base_value is None or cur_value is None:
        return MetricComparison(
            metric=budget.metric,
            direction=budget.direction,
            status=METRIC_MISSING,
            baseline=base_value,
            current=cur_value,
            allowed=None if base_value is None else budget.allowed_bound(base_value),
        )
    if budget.is_regression(base_value, cur_value):
        status = METRIC_REGRESSION
    elif budget.is_improvement(base_value, cur_value):
        status = METRIC_IMPROVED
    else:
        status = METRIC_OK
    return MetricComparison(
        metric=budget.metric,
        direction=budget.direction,
        status=status,
        baseline=base_value,
        current=cur_value,
        allowed=budget.allowed_bound(base_value),
    )


def compare_benchmarks(
    results_dir: Path,
    baseline_dir: Path,
    names: Optional[Sequence[str]] = None,
    tier: Optional[str] = None,
) -> ComparisonReport:
    """Diff every selected benchmark's trajectory record vs baseline."""
    run_dir = trajectory_dir(Path(results_dir))
    comparisons = []
    for spec in resolve_specs(names, tier):
        current = read_result(run_dir, spec.name)
        baseline = read_result(Path(baseline_dir), spec.name)
        comparisons.append(compare_result(spec, current, baseline))
    return ComparisonReport(comparisons)
