"""Benchmark orchestration: registry, runner, trajectory, regression gate.

The perf counterpart of :mod:`repro.scenarios`: named, tiered, seeded
benchmark specs (:mod:`repro.bench.library`), one standardized result
schema per run (``benchmarks/results/trajectory/BENCH_<name>.json``)
and a tolerance-envelope comparator against checked-in baselines — the
machinery behind ``repro bench list|run|compare`` and the CI
``perf-smoke`` gate.

Importing the package imports the library, so the registry is complete
immediately (mirroring how scenarios register).
"""

from repro.bench.compare import (
    BenchComparison,
    ComparisonReport,
    MetricComparison,
    compare_benchmarks,
    compare_result,
)
from repro.bench.io import (
    DEFAULT_BASELINE_DIR,
    DEFAULT_RESULTS_DIR,
    TRAJECTORY_LIMIT,
    ResultsDirError,
    append_result,
    default_baseline_dir,
    default_results_dir,
    jsonable,
    read_result,
    read_trajectory,
    trajectory_dir,
    trajectory_path,
    write_report,
    write_result,
)
from repro.bench.registry import (
    UnknownBenchmarkError,
    all_benchmarks,
    benchmark_names,
    get_benchmark,
    register,
)
from repro.bench.runner import (
    BenchmarkCheckError,
    BenchmarkRun,
    engine_metrics,
    environment_fingerprint,
    run_benchmark,
    run_benchmarks,
    run_shim,
)
from repro.bench.spec import (
    SCHEMA_VERSION,
    TIERS,
    BenchmarkResult,
    BenchmarkSpec,
    Measurement,
    MetricBudget,
    SchemaError,
    result_from_payload,
    tier_includes,
)
from repro.bench.workloads import build_workload, clear_workload_cache, workload_names

from repro.bench import library as _library  # noqa: F401  (registers specs)

__all__ = [
    "BenchComparison",
    "BenchmarkCheckError",
    "BenchmarkResult",
    "BenchmarkRun",
    "BenchmarkSpec",
    "ComparisonReport",
    "DEFAULT_BASELINE_DIR",
    "DEFAULT_RESULTS_DIR",
    "Measurement",
    "MetricBudget",
    "MetricComparison",
    "ResultsDirError",
    "SCHEMA_VERSION",
    "SchemaError",
    "TIERS",
    "TRAJECTORY_LIMIT",
    "UnknownBenchmarkError",
    "all_benchmarks",
    "append_result",
    "benchmark_names",
    "build_workload",
    "clear_workload_cache",
    "compare_benchmarks",
    "compare_result",
    "default_baseline_dir",
    "default_results_dir",
    "engine_metrics",
    "environment_fingerprint",
    "get_benchmark",
    "jsonable",
    "read_result",
    "read_trajectory",
    "register",
    "result_from_payload",
    "run_benchmark",
    "run_benchmarks",
    "run_shim",
    "tier_includes",
    "trajectory_dir",
    "trajectory_path",
    "workload_names",
    "write_report",
    "write_result",
]
