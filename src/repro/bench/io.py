"""Result I/O: the one place benchmark files are written and read.

Two kinds of artifacts, one writer each:

* **legacy report twins** — ``benchmarks/results/<name>.txt`` (the
  human, paper-style table) plus ``<name>.json`` (machine-readable
  payload). Before this module existed every ``bench_*.py`` script
  hand-rolled these writers and some drifted into emitting txt only;
  :func:`write_report` always writes both.
* **trajectory records** — ``benchmarks/results/trajectory/BENCH_<name>.json``,
  one standardized :class:`~repro.bench.spec.BenchmarkResult` per
  benchmark per run. Baselines under ``benchmarks/baselines/`` use the
  identical schema and the identical writer, so a baseline update is
  literally a file copy.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Optional

from repro.bench.spec import BenchmarkResult, SchemaError, result_from_payload

#: Default locations, relative to the invoking directory (the repo root
#: in CI and the documented workflows); every CLI entry point takes
#: ``--results-dir`` / ``--baseline-dir`` overrides.
DEFAULT_RESULTS_DIR = Path("benchmarks") / "results"
DEFAULT_BASELINE_DIR = Path("benchmarks") / "baselines"
TRAJECTORY_DIRNAME = "trajectory"


def trajectory_dir(results_dir: Path) -> Path:
    """Where trajectory records live under a results directory."""
    return Path(results_dir) / TRAJECTORY_DIRNAME


def jsonable(value: Any) -> Any:
    """Recursively convert reports/rows into JSON-serializable data.

    Dataclasses become dicts, sequences become lists, and leaf objects
    the paper model uses (IRIs, enums...) fall back to ``str``.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(key): jsonable(item) for key, item in value.items()}
    if isinstance(value, (set, frozenset)):
        # stable order so committed JSON twins diff cleanly across runs
        return sorted((jsonable(item) for item in value), key=repr)
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def write_report(results_dir: Path, name: str, text: str, data: Any = None) -> None:
    """Write the legacy ``<name>.txt`` + ``<name>.json`` report twins.

    The JSON twin is always written — when a benchmark has no richer
    payload the text itself is wrapped — so no result is ever txt-only
    again.
    """
    results_dir = Path(results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / f"{name}.txt").write_text(text + "\n")
    payload = jsonable(data) if data is not None else {"report": text}
    (results_dir / f"{name}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )


def trajectory_path(directory: Path, benchmark: str) -> Path:
    """The ``BENCH_<name>.json`` path for *benchmark* under *directory*."""
    return Path(directory) / f"BENCH_{benchmark}.json"


def write_result(directory: Path, result: BenchmarkResult) -> Path:
    """Serialize one trajectory/baseline record; returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = trajectory_path(directory, result.benchmark)
    path.write_text(json.dumps(result.to_payload(), indent=2, sort_keys=True) + "\n")
    return path


def read_result(directory: Path, benchmark: str) -> Optional[BenchmarkResult]:
    """Load and validate a record; ``None`` when the file is absent.

    A present-but-invalid file raises :class:`SchemaError` — a corrupt
    baseline must fail loudly, not read as "no baseline".
    """
    path = trajectory_path(directory, benchmark)
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise SchemaError(f"{path}: not valid JSON ({exc})") from exc
    return result_from_payload(payload)
