"""Result I/O: the one place benchmark files are written and read.

Two kinds of artifacts, one writer each:

* **legacy report twins** — ``benchmarks/results/<name>.txt`` (the
  human, paper-style table) plus ``<name>.json`` (machine-readable
  payload). Before this module existed every ``bench_*.py`` script
  hand-rolled these writers and some drifted into emitting txt only;
  :func:`write_report` always writes both.
* **trajectory records** — ``benchmarks/results/trajectory/BENCH_<name>.json``,
  a JSON **array** of standardized
  :class:`~repro.bench.spec.BenchmarkResult` payloads, oldest first.
  Every run *appends* exactly one record (:func:`append_result`); that
  is what makes the file a trajectory. The subsystem's first release
  overwrote the file with the latest record instead, so the history —
  the whole point of the trajectory — was silently discarded on every
  run; the reader still accepts that legacy single-object form and
  :func:`append_result` upgrades it in place. Baselines under
  ``benchmarks/baselines/`` are a single record in the identical
  per-record schema, so a baseline update is a copy of the latest
  trajectory entry.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, List, Optional

from repro.bench.spec import BenchmarkResult, SchemaError, result_from_payload
from repro.ioutils import atomic_write_text, find_repo_root

#: Trajectory files keep at most this many records (oldest dropped) so
#: a long-lived checkout cannot grow one without bound.
TRAJECTORY_LIMIT = 1000

#: Default locations as *repo-relative* paths. These are resolved
#: against the repository root by :func:`default_results_dir` /
#: :func:`default_baseline_dir` — the bare constants are kept for
#: callers composing their own roots and for the invoking-directory
#: back-compat case (a cwd that already holds a ``benchmarks/`` tree).
DEFAULT_RESULTS_DIR = Path("benchmarks") / "results"
DEFAULT_BASELINE_DIR = Path("benchmarks") / "baselines"
TRAJECTORY_DIRNAME = "trajectory"


class ResultsDirError(ValueError):
    """Raised when no default benchmarks directory can be resolved."""


def _resolve_default(relative: Path) -> Path:
    """Anchor a repo-relative default directory.

    The invoking directory wins when it already holds a ``benchmarks/``
    tree (the repo root in CI and the documented workflows — unchanged
    behavior). From anywhere else the checkout that the imported package
    lives in is used, so a run from a subdirectory appends to the real
    trajectory instead of silently scattering a fresh ``benchmarks/``
    tree under the cwd. With no detectable root (e.g. an installed
    package outside any checkout) this fails loudly.
    """
    cwd = Path.cwd()
    if (cwd / "benchmarks").is_dir():
        return cwd / relative
    root = find_repo_root()
    if root is not None:
        return root / relative
    raise ResultsDirError(
        f"cannot resolve the default {relative} directory: the current "
        f"directory has no benchmarks/ tree and no repository root was "
        f"found — pass --results-dir / --baseline-dir explicitly"
    )


def default_results_dir() -> Path:
    """The default results directory, anchored at the repo root."""
    return _resolve_default(DEFAULT_RESULTS_DIR)


def default_baseline_dir() -> Path:
    """The default baseline directory, anchored at the repo root."""
    return _resolve_default(DEFAULT_BASELINE_DIR)


def trajectory_dir(results_dir: Path) -> Path:
    """Where trajectory records live under a results directory."""
    return Path(results_dir) / TRAJECTORY_DIRNAME


def jsonable(value: Any) -> Any:
    """Recursively convert reports/rows into JSON-serializable data.

    Dataclasses become dicts, sequences become lists, and leaf objects
    the paper model uses (IRIs, enums...) fall back to ``str``.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(key): jsonable(item) for key, item in value.items()}
    if isinstance(value, (set, frozenset)):
        # stable order so committed JSON twins diff cleanly across runs
        return sorted((jsonable(item) for item in value), key=repr)
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def write_report(results_dir: Path, name: str, text: str, data: Any = None) -> None:
    """Write the legacy ``<name>.txt`` + ``<name>.json`` report twins.

    The JSON twin is always written — when a benchmark has no richer
    payload the text itself is wrapped — so no result is ever txt-only
    again.
    """
    results_dir = Path(results_dir)
    atomic_write_text(results_dir / f"{name}.txt", text + "\n")
    payload = jsonable(data) if data is not None else {"report": text}
    atomic_write_text(
        results_dir / f"{name}.json",
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
    )


def trajectory_path(directory: Path, benchmark: str) -> Path:
    """The ``BENCH_<name>.json`` path for *benchmark* under *directory*."""
    return Path(directory) / f"BENCH_{benchmark}.json"


def write_result(directory: Path, result: BenchmarkResult) -> Path:
    """Serialize one single-record (baseline) file; returns the path.

    Baselines are a *pinned point*, not a history — use
    :func:`append_result` for trajectory files.
    """
    path = trajectory_path(Path(directory), result.benchmark)
    return atomic_write_text(
        path, json.dumps(result.to_payload(), indent=2, sort_keys=True) + "\n"
    )


def _load_payloads(path: Path) -> List[Any]:
    """The record payloads of a trajectory/baseline file, oldest first.

    Accepts the array form and the legacy single-object form (the
    pre-append era wrote one overwritten record per file). Anything
    else is a :class:`SchemaError`.
    """
    if not path.exists():
        return []
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise SchemaError(f"{path}: not valid JSON ({exc})") from exc
    if isinstance(payload, list):
        return payload
    if isinstance(payload, dict):
        return [payload]
    raise SchemaError(
        f"{path}: trajectory must be a JSON array of records (or one "
        f"legacy record object), got {type(payload).__name__}"
    )


def append_result(
    directory: Path, result: BenchmarkResult, limit: int = TRAJECTORY_LIMIT
) -> Path:
    """Append one run record to the benchmark's trajectory; returns the path.

    The file stays a valid, schema-checked JSON array after every
    append (a legacy single-object file is upgraded in place); at most
    *limit* records are kept, oldest dropped first. The rewrite goes
    through :func:`~repro.ioutils.atomic_write_text` — a uniquely-named
    same-directory temp file published with ``os.replace`` — so a run
    killed mid-write never truncates the accumulated history, and two
    concurrent runs never collide on a shared temp name (the previous
    fixed ``.tmp`` name let one writer replace a half-written file of
    the other).
    """
    path = trajectory_path(Path(directory), result.benchmark)
    records = _load_payloads(path)
    records.append(result.to_payload())
    if limit and len(records) > limit:
        records = records[-limit:]
    return atomic_write_text(
        path, json.dumps(records, indent=2, sort_keys=True) + "\n"
    )


def read_trajectory(directory: Path, benchmark: str) -> List[BenchmarkResult]:
    """Every record of a benchmark's trajectory, oldest first.

    Empty when the file is absent; a present-but-invalid file or record
    raises :class:`SchemaError` — a corrupt trajectory must fail
    loudly, not read as "no history".
    """
    path = trajectory_path(Path(directory), benchmark)
    return [result_from_payload(payload) for payload in _load_payloads(path)]


def read_result(directory: Path, benchmark: str) -> Optional[BenchmarkResult]:
    """The latest record of a trajectory (or a baseline's single record).

    ``None`` when the file is absent or the trajectory is empty. A
    present-but-invalid file raises :class:`SchemaError` — a corrupt
    baseline must fail loudly, not read as "no baseline".
    """
    path = trajectory_path(Path(directory), benchmark)
    payloads = _load_payloads(path)
    if not payloads:
        return None
    return result_from_payload(payloads[-1])
