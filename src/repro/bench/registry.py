"""The benchmark registry: named specs, listable and runnable.

Specs register at import of :mod:`repro.bench.library` (the package
``__init__`` does this), so ``benchmark_names()`` is complete as soon
as ``repro.bench`` is imported. The registry is append-only within a
process; re-registering a name is an error — two measurements answering
to one name would make the perf trajectory ambiguous.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.bench.spec import BenchmarkSpec, tier_includes

_REGISTRY: Dict[str, BenchmarkSpec] = {}


class UnknownBenchmarkError(KeyError):
    """Raised when a benchmark name is not registered."""

    def __init__(self, name: str) -> None:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        super().__init__(f"unknown benchmark {name!r}; registered: {known}")
        self.name = name


def register(spec: BenchmarkSpec) -> BenchmarkSpec:
    """Add *spec* to the registry; returns it (decorator-friendly)."""
    if spec.name in _REGISTRY:
        raise ValueError(f"benchmark {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_benchmark(name: str) -> BenchmarkSpec:
    """The registered spec for *name*."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownBenchmarkError(name) from None


def benchmark_names(tier: str | None = None) -> List[str]:
    """Registered names in registration order, optionally tier-filtered.

    ``tier`` selects cumulatively: ``standard`` includes every ``smoke``
    spec, ``full`` includes everything.
    """
    if tier is None:
        return list(_REGISTRY)
    return [name for name, spec in _REGISTRY.items() if tier_includes(tier, spec.tier)]


def all_benchmarks() -> Iterator[BenchmarkSpec]:
    """Iterate over registered specs in registration order."""
    yield from _REGISTRY.values()
