"""Benchmark execution: build the workload, measure, record, check.

:func:`run_benchmark` executes one spec; :func:`run_benchmarks` executes
a tier (or an explicit name list) and writes, per spec,

* the legacy ``benchmarks/results/<report>.{txt,json}`` twins (same
  files the pre-subsystem scripts produced, so existing trajectories
  stay comparable), and
* one standardized record **appended** to the
  ``benchmarks/results/trajectory/BENCH_<name>.json`` trajectory (the
  comparator gates on the latest entry; the history is the point).

``wall_seconds`` is always measured here, around the ``measure`` call
only — workload construction is memoized setup cost. Specs add their
own metrics (throughput, speedups, cache hit rates...); engine-backed
specs should extract them with :func:`engine_metrics` so key names stay
uniform across the trajectory.
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.bench.io import append_result, write_report
from repro.bench.registry import benchmark_names, get_benchmark
from repro.bench.spec import BenchmarkResult, BenchmarkSpec, Measurement
from repro.bench.workloads import build_workload
from repro.engine.stats import EngineStats


class BenchmarkCheckError(AssertionError):
    """A post-measurement shape check failed."""

    def __init__(self, benchmark: str, message: str) -> None:
        super().__init__(f"benchmark {benchmark!r} check failed: {message}")
        self.benchmark = benchmark


def git_sha(cwd: Optional[Path] = None) -> Optional[str]:
    """The current commit sha, or ``None`` outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=cwd,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def environment_fingerprint() -> Dict[str, Any]:
    """Where and with what a result was measured.

    Lands in every trajectory record so "this point is slower" can be
    answered with "different machine / interpreter / commit" before
    anyone blames the code.
    """
    from repro.engine import available_cpu_count

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        # what the process may actually use (cgroup/affinity aware) —
        # the number worker pools are sized from
        "cpus_available": available_cpu_count(),
        "git_sha": git_sha(),
    }


def engine_metrics(stats: EngineStats, prefix: str = "") -> Dict[str, float]:
    """Flatten an :class:`EngineStats` into standard trajectory metrics."""
    return {
        f"{prefix}pairs_compared": stats.pairs_compared,
        f"{prefix}pairs_per_second": stats.pairs_per_second,
        f"{prefix}engine_seconds": stats.elapsed_seconds,
        f"{prefix}cache_hits": stats.cache_hits,
        f"{prefix}cache_misses": stats.cache_misses,
        f"{prefix}cache_hit_rate": stats.cache_hit_rate,
        f"{prefix}chunk_count": stats.chunk_count,
        f"{prefix}batch_profiles": stats.batch_profiles,
        f"{prefix}batch_pair_hits": stats.batch_pair_hits,
        f"{prefix}batch_pair_misses": stats.batch_pair_misses,
        f"{prefix}index_build_seconds": stats.index_build_seconds,
        f"{prefix}index_probe_seconds": stats.index_probe_seconds,
        f"{prefix}index_features": stats.index_features,
        f"{prefix}index_postings": stats.index_postings,
    }


@dataclass
class BenchmarkRun:
    """One executed spec: the schema record plus the rich measurement."""

    spec: BenchmarkSpec
    result: BenchmarkResult
    measurement: Measurement
    trajectory_file: Optional[Path] = None


def run_benchmark(
    spec: BenchmarkSpec, fresh_workload: bool = False, run_checks: bool = True
) -> BenchmarkRun:
    """Execute one spec: workload (unmeasured), measure, checks."""
    workload = build_workload(spec.workload, fresh=fresh_workload)
    started = time.perf_counter()
    try:
        measurement = spec.measure(workload)
    except AssertionError as exc:
        # inline equivalence/identity assertions inside measure code get
        # the same clean reporting as declared checks
        raise BenchmarkCheckError(spec.name, str(exc) or repr(exc)) from exc
    wall = time.perf_counter() - started
    metrics = {"wall_seconds": wall, **measurement.metrics}
    if run_checks:
        for check in spec.checks:
            try:
                check(measurement)
            except AssertionError as exc:
                raise BenchmarkCheckError(spec.name, str(exc) or repr(exc)) from exc
    result = BenchmarkResult(
        benchmark=spec.name,
        tier=spec.tier,
        metrics=metrics,
        environment=environment_fingerprint(),
    )
    return BenchmarkRun(spec=spec, result=result, measurement=measurement)


def resolve_specs(
    names: Optional[Sequence[str]] = None, tier: Optional[str] = None
) -> List[BenchmarkSpec]:
    """The specs an invocation selects: explicit names, or a tier."""
    if names:
        return [get_benchmark(name) for name in names]
    return [get_benchmark(name) for name in benchmark_names(tier or "full")]


def run_benchmarks(
    names: Optional[Sequence[str]] = None,
    tier: Optional[str] = None,
    results_dir: Optional[Path] = None,
    run_checks: bool = True,
) -> List[BenchmarkRun]:
    """Run a selection of benchmarks, writing results as we go.

    When *results_dir* is given, every run writes its legacy report
    twins there and its trajectory record under
    ``<results_dir>/trajectory/``; with ``None`` nothing touches disk
    (tests, exploratory runs).
    """
    from repro.bench.io import trajectory_dir

    runs: List[BenchmarkRun] = []
    for spec in resolve_specs(names, tier):
        run = run_benchmark(spec, run_checks=run_checks)
        if results_dir is not None:
            if run.measurement.text:
                write_report(
                    Path(results_dir),
                    spec.legacy_report,
                    run.measurement.text,
                    run.measurement.data,
                )
            run.trajectory_file = append_result(
                trajectory_dir(Path(results_dir)), run.result
            )
        runs.append(run)
    return runs


def run_shim(*names: str) -> int:
    """Entry point for the thin ``benchmarks/bench_*.py`` scripts.

    Runs the named specs with the default results directory resolved
    relative to the script's repo layout (``benchmarks/results``) and
    prints each report — the same behavior the standalone scripts had,
    now one line each.
    """
    from repro.bench.io import default_results_dir

    runs = run_benchmarks(names=list(names), results_dir=default_results_dir())
    for run in runs:
        if run.measurement.text:
            print(run.measurement.text)
            print()
        print(f"[{run.spec.name}] wall {run.result.metrics['wall_seconds']:.2f}s "
              f"-> {run.trajectory_file}")
    return 0
