"""The benchmark library: every registered spec.

Nine **smoke** benchmarks run on the small presets in seconds — they
are the CI perf gate (``repro bench run --tier smoke``). The **standard**
tier absorbs the paper-scale measurements the old standalone
``bench_*.py`` scripts made (those scripts are now one-line shims onto
this registry); **full** adds the multi-catalog scalability sweep and
the whole scenario matrix.

Every absorbed spec keeps its legacy report name, so the txt/json twins
under ``benchmarks/results/`` stay continuous with pre-subsystem runs,
and carries the old scripts' reproduction-shape assertions as
``checks`` — which now actually execute on every run (the pytest
harness never collected the ``bench_*.py`` files, so those assertions
had been dead code).

Measure functions take the built workload as their first argument and
expose their knobs as keyword defaults, so tests can drive them on tiny
workloads without paying paper-scale generation.
"""

from __future__ import annotations

import itertools
import random
import time
from typing import List

from repro.bench.registry import register
from repro.bench.spec import BenchmarkSpec, Measurement, MetricBudget
from repro.bench.workloads import workload_factory

SUPPORT = 0.002

#: Generous-but-sub-2x envelope for wall-clock metrics: machines and
#: load differ (so the bound is as wide as it can be), but a genuine 2x
#: slowdown must always trip the gate. The machine-robust signal lives
#: in the ratio budgets (speedups, hit rates) — those are tight.
WALL_TOLERANCE = 0.9
WALL = MetricBudget("wall_seconds", direction="lower", rel_tolerance=WALL_TOLERANCE)


@workload_factory("null")
def _null_workload():
    """For specs that build their own materials (scalability sweeps)."""
    return None


def _best_of(fn, rounds=3):
    """(best wall seconds, last result) over *rounds* runs."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


# ----------------------------------------------------------------------
# smoke tier — the CI perf gate
# ----------------------------------------------------------------------
def measure_smoke_learner(catalog, support_threshold=SUPPORT, rounds=3) -> Measurement:
    """End-to-end Algorithm 1 learn on the small catalog."""
    from repro.core import LearnerConfig, RuleLearner
    from repro.datagen.catalog import PART_NUMBER

    training_set = catalog.to_training_set()
    learner = RuleLearner(
        LearnerConfig(properties=(PART_NUMBER,), support_threshold=support_threshold)
    )
    learn_seconds, rules = _best_of(lambda: learner.learn(training_set), rounds=rounds)
    return Measurement(
        metrics={
            "learn_seconds": learn_seconds,
            "rules": len(rules),
            "training_links": len(training_set),
        },
        text=(
            "smoke: rule learner on the small catalog\n"
            f"|TS| = {len(training_set)}, rules = {len(rules)}, "
            f"best learn {learn_seconds * 1000:.1f} ms"
        ),
    )


def measure_smoke_linking(catalog, sizes=(200, 400), seed=4242) -> Measurement:
    """Provider batches through the serial engine (A5 at smoke scale)."""
    from repro.bench.runner import engine_metrics
    from repro.datagen.catalog import MANUFACTURER, PART_NUMBER
    from repro.engine import JobConfig, LinkingJob
    from repro.experiments.throughput import provider_batch
    from repro.linking import (
        FieldComparator,
        RecordComparator,
        RecordStore,
        StandardBlocking,
        ThresholdMatcher,
    )

    field_map = {"pn": PART_NUMBER, "maker": MANUFACTURER}
    local = RecordStore.from_graph(catalog.local_graph, field_map)
    blocking = StandardBlocking.on_field_prefix("pn", length=4)
    comparator = RecordComparator(
        [FieldComparator("pn", weight=2.0), FieldComparator("maker")]
    )
    matcher = ThresholdMatcher(match_threshold=0.9)
    config = JobConfig(executor="serial", chunk_size=512)
    lines = ["smoke: serial engine linking throughput"]
    metrics = {}
    f1 = 0.0
    for size in sizes:
        graph, truth = provider_batch(catalog, size, seed=seed)
        external = RecordStore.from_graph(graph, field_map)
        result = LinkingJob(blocking, comparator, matcher, config).run(external, local)
        f1 = result.matching_quality(truth).f1
        metrics = engine_metrics(result.stats)
        metrics["f1"] = f1
        lines.append(
            f"|S_E|={size}: {result.compared} pairs, "
            f"{result.stats.pairs_per_second:,.0f} pairs/s, "
            f"cache {result.stats.cache_hit_rate:.1%}, F1 {f1:.3f}"
        )
    # metrics keep the largest batch (the stable, least noisy point)
    return Measurement(metrics=metrics, text="\n".join(lines))


def _overlapping_deltas(catalog, pool_size=400, n_deltas=8, delta_size=200, seed=7):
    """Overlapping provider feeds: fresh ids per transmission, repeated
    values — the cross-delta redundancy real re-sent files exhibit."""
    from repro.datagen.catalog import MANUFACTURER, PART_NUMBER
    from repro.experiments.throughput import provider_batch
    from repro.linking import RecordStore
    from repro.linking.records import Record

    field_map = {"pn": PART_NUMBER, "maker": MANUFACTURER}
    graph, _ = provider_batch(catalog, pool_size, seed=4242)
    pool = list(RecordStore.from_graph(graph, field_map))
    rng = random.Random(seed)
    deltas = []
    for index in range(n_deltas):
        picks = rng.sample(pool, min(delta_size, len(pool)))
        deltas.append(
            [Record(id=f"{record.id}/tx{index}", fields=record.fields) for record in picks]
        )
    local = RecordStore.from_graph(catalog.local_graph, field_map)
    return deltas, local


def measure_streaming_cache_reuse(catalog, rounds=3, **delta_kwargs) -> Measurement:
    """The cross-delta similarity-cache win, measured end to end.

    The same overlapping delta stream is ingested twice: once with
    ``shared_cache=False`` (cold per-delta caches, the pre-memoization
    behavior) and once with the stream-owned shared cache. Outcomes
    must be identical — memoization only skips recomputation — and the
    shared leg must be measurably faster.
    """
    from repro.engine import JobConfig
    from repro.engine.streaming import StreamingLinkingJob
    from repro.linking import (
        FieldComparator,
        RecordComparator,
        StandardBlocking,
        ThresholdMatcher,
    )

    deltas, local = _overlapping_deltas(catalog, **delta_kwargs)

    def run(shared: bool):
        comparator = RecordComparator(
            [FieldComparator("pn", weight=2.0), FieldComparator("maker")]
        )
        job = StreamingLinkingJob(
            local,
            comparator,
            ThresholdMatcher(match_threshold=0.9),
            JobConfig(executor="serial", chunk_size=256),
            blocking=StandardBlocking.on_field_prefix("pn", length=4),
            # the cold leg opts out of the stream-owned cache: every
            # per-delta job builds its own — the pre-memoization behavior
            shared_cache=shared,
        )
        for delta in deltas:
            job.ingest(delta)
        return job.result()

    cold_seconds, cold = _best_of(lambda: run(shared=False), rounds=rounds)
    shared_seconds, warm = _best_of(lambda: run(shared=True), rounds=rounds)
    assert warm.match_pairs == cold.match_pairs  # memoization is invisible
    speedup = cold_seconds / shared_seconds if shared_seconds else float("inf")
    metrics = {
        "cold_seconds": cold_seconds,
        "shared_seconds": shared_seconds,
        "speedup": speedup,
        "cold_hit_rate": cold.stats.cache_hit_rate,
        "shared_hit_rate": warm.stats.cache_hit_rate,
        "matches": len(warm.matches),
        "pairs_compared": warm.stats.pairs_compared,
    }
    text = "\n".join(
        [
            "smoke: cross-delta similarity-cache reuse (streaming engine)",
            f"{len(deltas)} overlapping deltas, {warm.stats.pairs_compared} pairs",
            f"cold per-delta caches  {cold_seconds * 1000:8.1f} ms   "
            f"hit rate {cold.stats.cache_hit_rate:.1%}",
            f"stream-shared cache    {shared_seconds * 1000:8.1f} ms   "
            f"hit rate {warm.stats.cache_hit_rate:.1%}",
            f"-> x{speedup:.2f}, identical matches",
        ]
    )
    return Measurement(metrics=metrics, text=text)


def measure_shard_executor(catalog, size=400, seed=4242, workers=2) -> Measurement:
    """The shard executor vs the serial path: byte-identity plus timing.

    One provider batch is linked twice — serially and with the
    block-parallel ``shard`` executor — and the outcomes must be
    byte-identical (same matches, same possible band, same candidate
    pairs in the same order, same serialized sameAs graph). The wall
    times land in the trajectory so shard overhead/speedup is tracked
    per machine; identity, not speed, is the gate (a 1-CPU CI runner
    pays pool bringup for no parallelism).
    """
    from repro.bench.runner import engine_metrics
    from repro.datagen.catalog import MANUFACTURER, PART_NUMBER
    from repro.engine import JobConfig, LinkingJob
    from repro.experiments.throughput import provider_batch
    from repro.linking import (
        FieldComparator,
        RecordComparator,
        RecordStore,
        StandardBlocking,
        ThresholdMatcher,
    )
    from repro.rdf import serialize_ntriples

    field_map = {"pn": PART_NUMBER, "maker": MANUFACTURER}
    local = RecordStore.from_graph(catalog.local_graph, field_map)
    graph, _ = provider_batch(catalog, size, seed=seed)
    external = RecordStore.from_graph(graph, field_map)
    comparator = RecordComparator(
        [FieldComparator("pn", weight=2.0), FieldComparator("maker")]
    )
    matcher = ThresholdMatcher(match_threshold=0.9)

    def run(executor):
        blocking = StandardBlocking.on_field_prefix("pn", length=4)
        config = JobConfig(executor=executor, chunk_size=512, workers=workers)
        return LinkingJob(blocking, comparator, matcher, config).run(external, local)

    serial = run("serial")
    shard = run("shard")
    # metric-backed, like `identical` below: a pool that cannot start
    # degrades the run to serial, whose output is trivially identical —
    # the gate must see that the run actually sharded, asserts or not
    sharded = (
        shard.stats.executor == "shard"
        and shard.stats.fallback_reason is None
        and shard.stats.shard_count == workers
    )
    identical = (
        shard.matches == serial.matches
        and shard.possible == serial.possible
        and shard.candidate_pairs == serial.candidate_pairs
        and shard.compared == serial.compared
        and serialize_ntriples(shard.sameas_graph())
        == serialize_ntriples(serial.sameas_graph())
    )
    metrics = engine_metrics(shard.stats, prefix="shard_")
    metrics.update(
        serial_seconds=serial.stats.elapsed_seconds,
        shard_seconds=shard.stats.elapsed_seconds,
        shard_workers=workers,
        pairs_compared=serial.stats.pairs_compared,
        matches=len(serial.matches),
        # the metrics carry the real verdicts so the registered budgets
        # and checks gate them even when asserts are compiled out (-O)
        sharded=1.0 if sharded else 0.0,
        identical=1.0 if identical else 0.0,
    )
    assert sharded, f"shard run silently degraded: {shard.stats.format()}"
    assert identical, "shard executor diverged from the serial path"
    text = "\n".join(
        [
            "smoke: shard executor byte-identity vs serial (standard blocking)",
            f"|S_E|={len(external)}, |S_L|={len(local)}, "
            f"{serial.compared} pairs, {len(serial.matches)} matches",
            f"serial {serial.stats.elapsed_seconds * 1000:8.1f} ms",
            f"shard  {shard.stats.elapsed_seconds * 1000:8.1f} ms   "
            f"({workers} shards, byte-identical)",
        ]
    )
    return Measurement(metrics=metrics, text=text)


def measure_worker_protocol(
    catalog, size=200, local_size=600, seed=4242, workers=2
) -> Measurement:
    """The worker executor vs the serial path: wire round trip + identity.

    One provider batch is linked twice — serially and with the
    ``worker`` executor, which serializes every shard into a versioned
    work-unit envelope, round-trips it through a ``repro worker
    run-unit`` subprocess and folds the result envelopes back by their
    ordinal sort keys. The gates: byte-identity with the serial run,
    and proof that every shard actually crossed the wire (a degraded
    run reports ``work_units == 0`` and would pass the identity check
    vacuously). The per-unit wall cost — interpreter spawn plus both
    envelope round trips — lands in the trajectory with a generous
    budget, so a protocol change that bloats envelopes or adds a
    serialization pass shows up without the gate flaking on loaded
    runners.
    """
    from repro.bench.runner import engine_metrics
    from repro.datagen.catalog import MANUFACTURER, PART_NUMBER
    from repro.engine import JobConfig, LinkingJob
    from repro.experiments.throughput import provider_batch
    from repro.linking import (
        FieldComparator,
        QGramBlocking,
        RecordComparator,
        RecordStore,
        ThresholdMatcher,
    )
    from repro.rdf import serialize_ntriples

    field_map = {"pn": PART_NUMBER, "maker": MANUFACTURER}
    # a slice of the catalog keeps the inline-store envelopes CI-sized:
    # the wire path is identical, only the payload weight is trimmed
    local = RecordStore(
        itertools.islice(
            RecordStore.from_graph(catalog.local_graph, field_map), local_size
        )
    )
    graph, _ = provider_batch(catalog, size, seed=seed)
    external = RecordStore.from_graph(graph, field_map)
    comparator = RecordComparator(
        [FieldComparator("pn", weight=2.0), FieldComparator("maker")]
    )
    matcher = ThresholdMatcher(match_threshold=0.9)

    def run(executor):
        blocking = QGramBlocking("pn", q=2, threshold=0.6)
        config = JobConfig(
            executor=executor, chunk_size=512, workers=workers, shards=workers
        )
        return LinkingJob(blocking, comparator, matcher, config).run(external, local)

    serial = run("serial")
    worker = run("worker")
    # metric-backed, like `identical` below: a missing interpreter or a
    # broken subprocess degrades the run to serial, whose output is
    # trivially identical — the gate must see that every shard crossed
    # the serialize→subprocess→deserialize boundary, asserts or not
    ran_worker = (
        worker.stats.executor == "worker"
        and worker.stats.fallback_reason is None
        and worker.stats.work_units == workers
        and worker.stats.work_unit_bytes > 0
    )
    identical = (
        worker.matches == serial.matches
        and worker.possible == serial.possible
        and worker.candidate_pairs == serial.candidate_pairs
        and worker.compared == serial.compared
        and serialize_ntriples(worker.sameas_graph())
        == serialize_ntriples(serial.sameas_graph())
    )
    units = max(worker.stats.work_units, 1)
    metrics = engine_metrics(worker.stats, prefix="worker_")
    metrics.update(
        serial_seconds=serial.stats.elapsed_seconds,
        worker_seconds=worker.stats.elapsed_seconds,
        work_units=worker.stats.work_units,
        work_unit_kb=worker.stats.work_unit_bytes / 1024.0,
        unit_overhead_seconds=worker.stats.elapsed_seconds / units,
        pairs_compared=serial.stats.pairs_compared,
        matches=len(serial.matches),
        # the metrics carry the real verdicts so the registered budgets
        # and checks gate them even when asserts are compiled out (-O)
        ran_worker=1.0 if ran_worker else 0.0,
        identical=1.0 if identical else 0.0,
    )
    assert ran_worker, f"worker run silently degraded: {worker.stats.format()}"
    assert identical, "worker executor diverged from the serial path"
    text = "\n".join(
        [
            "smoke: worker protocol byte-identity vs serial (q-gram blocking)",
            f"|S_E|={len(external)}, |S_L|={len(local)}, "
            f"{serial.compared} pairs, {len(serial.matches)} matches",
            f"serial {serial.stats.elapsed_seconds * 1000:8.1f} ms",
            f"worker {worker.stats.elapsed_seconds * 1000:8.1f} ms   "
            f"({worker.stats.work_units} units, "
            f"{worker.stats.work_unit_bytes / 1024.0:.1f} KiB round-tripped, "
            "byte-identical)",
        ]
    )
    return Measurement(metrics=metrics, text=text)


def _skewed_provider(catalog, pool_size=300, size=300, seed=4242):
    """A provider batch with a skewed key distribution.

    The provider pool is re-sampled Zipf-style under fresh ids: a few
    hot part-number families dominate the batch, so q-gram sub-list
    blocks, window neighbourhoods and canopies are heavily unbalanced —
    exactly the shape the shard plan's LPT balancing and the per-class
    ownership rules have to cope with.
    """
    from repro.datagen.catalog import MANUFACTURER, PART_NUMBER
    from repro.experiments.throughput import provider_batch
    from repro.linking import RecordStore
    from repro.linking.records import Record
    from repro.rdf.terms import IRI

    field_map = {"pn": PART_NUMBER, "maker": MANUFACTURER}
    local = RecordStore.from_graph(catalog.local_graph, field_map)
    graph, _ = provider_batch(catalog, pool_size, seed=seed)
    pool = list(RecordStore.from_graph(graph, field_map))
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) for rank in range(len(pool))]
    records = [
        Record(id=IRI(f"{record.id}/sk{index}"), fields=record.fields)
        for index, record in enumerate(
            rng.choices(pool, weights=weights, k=size)
        )
    ]
    return RecordStore(records), local


def measure_shard_blocking(catalog, size=300, seed=4242, workers=2, rounds=1) -> Measurement:
    """Shard-native q-gram / window / canopy blocking vs the serial path.

    Each of the three key-interleaving blocking classes links the same
    skewed provider batch twice — serially and with the ``shard``
    executor — and every shard leg must (a) actually run sharded (no
    per-class degradation: these classes used to fall back to the
    process executor) and (b) be byte-identical to its serial twin,
    down to the serialized sameAs graph. The aggregate pairs/sec
    speedup is gated at >1.5x only on machines that can parallelize
    (``os.cpu_count() >= 2``) — a 1-CPU runner pays pool bring-up for
    no parallelism, so there the verdicts and the baseline-relative
    budgets are the gate while the trajectory tracks the real ratio.
    """
    import os

    from repro.bench.runner import engine_metrics
    from repro.engine import JobConfig, LinkingJob
    from repro.linking import (
        CanopyBlocking,
        FieldComparator,
        QGramBlocking,
        RecordComparator,
        SortedNeighbourhood,
        ThresholdMatcher,
    )
    from repro.rdf import serialize_ntriples

    external, local = _skewed_provider(catalog, size=size, seed=seed)
    comparator = RecordComparator(
        [FieldComparator("pn", weight=2.0), FieldComparator("maker")]
    )
    matcher = ThresholdMatcher(match_threshold=0.9)
    methods = (
        ("qgram", lambda: QGramBlocking("pn", q=2, threshold=0.8)),
        ("window", lambda: SortedNeighbourhood.on_field("pn", window_size=7)),
        ("canopy", lambda: CanopyBlocking("pn", loose=0.5, tight=0.9)),
    )

    def run(make_blocking, executor):
        config = JobConfig(executor=executor, chunk_size=512, workers=workers)
        return LinkingJob(make_blocking(), comparator, matcher, config).run(
            external, local
        )

    cpus = os.cpu_count() or 1
    metrics = {"shard_workers": workers, "cpus": cpus}
    lines = [
        "smoke: shard-native q-gram/window/canopy blocking vs serial "
        "(skewed keys)",
        f"|S_E|={len(external)}, |S_L|={len(local)}, "
        f"{workers} shards, {cpus} cpu(s)",
    ]
    all_sharded = True
    all_identical = True
    serial_total = 0.0
    shard_total = 0.0
    for name, make_blocking in methods:
        serial_seconds, serial = _best_of(
            lambda: run(make_blocking, "serial"), rounds=rounds
        )
        shard_seconds, shard = _best_of(
            lambda: run(make_blocking, "shard"), rounds=rounds
        )
        sharded = (
            shard.stats.executor == "shard"
            and shard.stats.fallback_reason is None
            and shard.stats.shard_count == workers
        )
        identical = (
            shard.matches == serial.matches
            and shard.possible == serial.possible
            and shard.candidate_pairs == serial.candidate_pairs
            and shard.compared == serial.compared
            and serialize_ntriples(shard.sameas_graph())
            == serialize_ntriples(serial.sameas_graph())
        )
        all_sharded = all_sharded and sharded
        all_identical = all_identical and identical
        serial_total += serial_seconds
        shard_total += shard_seconds
        speedup = serial_seconds / shard_seconds if shard_seconds else float("inf")
        metrics.update(
            {
                f"{name}_serial_seconds": serial_seconds,
                f"{name}_shard_seconds": shard_seconds,
                f"{name}_speedup": speedup,
                f"{name}_pairs": serial.compared,
            }
        )
        if name == "qgram":
            metrics.update(engine_metrics(shard.stats, prefix="qgram_shard_"))
        lines.append(
            f"{name:<8} serial {serial_seconds * 1000:8.1f} ms / "
            f"shard {shard_seconds * 1000:8.1f} ms   x{speedup:.2f}   "
            f"{serial.compared} pairs"
            f"{'' if identical else '   DIVERGED'}"
        )
    pps_speedup = serial_total / shard_total if shard_total else float("inf")
    metrics.update(
        serial_seconds=serial_total,
        shard_seconds=shard_total,
        pps_speedup=pps_speedup,
        ran_sharded=1.0 if all_sharded else 0.0,
        identical=1.0 if all_identical else 0.0,
    )
    assert all_sharded, "a blocking class silently degraded out of shard"
    assert all_identical, "a shard leg diverged from its serial twin"
    lines.append(
        f"-> aggregate x{pps_speedup:.2f} pairs/s, all byte-identical"
    )
    return Measurement(metrics=metrics, text="\n".join(lines))


def _redundant_feed(catalog, pool_size=400, n_tx=20, tx_size=200, seed=7):
    """A multi-column provider feed re-sent across transmissions.

    Each transmission re-sends a sample of the same provider file under
    fresh transmission ids — the redundancy pattern the batched scorer's
    profile memo is built for. Records carry the two graph-backed
    columns plus two derived ones (series code, vendor grade), the
    multi-attribute shape real provider files have: pairwise scoring
    pays per-field normalization and cache probes on every pair, while
    the batched path collapses repeated records to one profile.
    """
    from repro.datagen.catalog import MANUFACTURER, PART_NUMBER
    from repro.experiments.throughput import provider_batch
    from repro.linking import RecordStore
    from repro.linking.records import Record
    from repro.rdf.terms import IRI

    def enrich(record):
        pn = record.values("pn")[0] if record.values("pn") else ""
        maker = record.values("maker")[0] if record.values("maker") else ""
        fields = dict(record.fields)
        fields["series"] = (pn[:4],)
        fields["grade"] = (maker[:4],)
        return Record(id=record.id, fields=fields)

    field_map = {"pn": PART_NUMBER, "maker": MANUFACTURER}
    local = RecordStore(
        [enrich(record) for record in RecordStore.from_graph(catalog.local_graph, field_map)]
    )
    graph, _ = provider_batch(catalog, pool_size, seed=4242)
    pool = [enrich(record) for record in RecordStore.from_graph(graph, field_map)]
    rng = random.Random(seed)
    records = []
    for index in range(n_tx):
        for record in rng.sample(pool, min(tx_size, len(pool))):
            records.append(
                Record(id=IRI(f"{record.id}/tx{index}"), fields=record.fields)
            )
    return RecordStore(records), local


def measure_batched_scoring(catalog, rounds=5, **feed_kwargs) -> Measurement:
    """Batched columnar scoring vs the pairwise path: identity + speedup.

    The same redundant provider feed is linked twice — with the default
    pairwise scorer and with ``scoring="batched"`` — and the outcomes
    must be byte-identical (same matches, same possible band, same
    candidate pairs in the same order, same serialized sameAs graph).
    The speedup is gated loosely (machines differ; the differential
    test harness, not this benchmark, is the correctness gate) but the
    trajectory tracks the real ratio per machine.
    """
    from repro.bench.runner import engine_metrics
    from repro.engine import JobConfig, LinkingJob
    from repro.linking import (
        FieldComparator,
        RecordComparator,
        StandardBlocking,
        ThresholdMatcher,
    )
    from repro.rdf import serialize_ntriples

    external, local = _redundant_feed(catalog, **feed_kwargs)
    comparator = RecordComparator(
        [
            FieldComparator("pn", weight=2.0),
            FieldComparator("maker"),
            FieldComparator("series"),
            FieldComparator("grade"),
        ]
    )
    matcher = ThresholdMatcher(match_threshold=0.9)
    # one blocking method for every round of both legs: the key index is
    # version-cached, so neither leg's ratio is diluted by index builds
    blocking = StandardBlocking.on_field_prefix("pn", length=4)

    def run(scoring):
        config = JobConfig(executor="serial", chunk_size=512, scoring=scoring)
        return LinkingJob(blocking, comparator, matcher, config).run(external, local)

    pairwise_seconds, pairwise = _best_of(lambda: run("pairwise"), rounds=rounds)
    batched_seconds, batched = _best_of(lambda: run("batched"), rounds=rounds)
    stats = batched.stats
    # metric-backed verdicts, like smoke-shard: the gate must see that
    # the run actually scored batched (no silent pairwise degradation)
    ran_batched = (
        stats.scoring == "batched"
        and stats.fallback_reason is None
        and stats.batch_profiles > 0
        and stats.batch_pair_misses > 0
        # batched runs never consult the similarity cache — its counters
        # reporting activity would mean the run silently went pairwise
        and stats.cache_hits == 0
        and stats.cache_misses == 0
    )
    identical = (
        batched.matches == pairwise.matches
        and batched.possible == pairwise.possible
        and batched.candidate_pairs == pairwise.candidate_pairs
        and batched.compared == pairwise.compared
        and serialize_ntriples(batched.sameas_graph())
        == serialize_ntriples(pairwise.sameas_graph())
    )
    # throughput from the best-of walls over the identical pair count —
    # a single run's EngineStats snapshot is too noisy to gate on
    pairwise_pps = pairwise.compared / pairwise_seconds if pairwise_seconds else 0.0
    batched_pps = batched.compared / batched_seconds if batched_seconds else 0.0
    pps_speedup = pairwise_seconds / batched_seconds if batched_seconds else float("inf")
    metrics = engine_metrics(stats, prefix="batched_")
    metrics.update(
        pairwise_seconds=pairwise_seconds,
        batched_seconds=batched_seconds,
        pairwise_pairs_per_second=pairwise_pps,
        batched_pairs_per_second=batched_pps,
        pps_speedup=pps_speedup,
        batch_reuse_rate=stats.batch_reuse_rate,
        matches=len(pairwise.matches),
        ran_batched=1.0 if ran_batched else 0.0,
        identical=1.0 if identical else 0.0,
    )
    assert ran_batched, f"batched run silently degraded: {stats.format()}"
    assert identical, "batched scoring diverged from the pairwise path"
    text = "\n".join(
        [
            "smoke: batched columnar scoring byte-identity + speedup vs pairwise",
            f"|S_E|={len(external)}, |S_L|={len(local)}, "
            f"{pairwise.compared} pairs, {len(pairwise.matches)} matches",
            f"pairwise {pairwise_seconds * 1000:8.1f} ms   "
            f"{pairwise_pps:>10,.0f} pairs/s",
            f"batched  {batched_seconds * 1000:8.1f} ms   "
            f"{batched_pps:>10,.0f} pairs/s   "
            f"({stats.batch_profiles} profiles, reuse {stats.batch_reuse_rate:.1%})",
            f"-> x{pps_speedup:.2f} pairs/s, byte-identical",
        ]
    )
    return Measurement(metrics=metrics, text=text)


def measure_serve_daemon(
    _workload, items=120, requests=20, burst=8, workers=4, warm_items=120
) -> Measurement:
    """The warm-start daemon vs per-request engine construction.

    A bundle is built once (the expensive, amortized work: catalog
    generation, store construction, key-index builds, cache warming);
    a daemon serves it. The cold leg is one full one-shot construction
    — exactly what every ``repro link`` invocation pays — and the warm
    leg answers the same request over HTTP. Warm latency is sampled
    sequentially (queue-free p50/p99); throughput comes from a separate
    concurrent burst. Every warm response, sequential and concurrent,
    must equal the cold response byte for byte — that verdict, not the
    speedup, is the correctness gate.
    """
    import shutil
    import statistics
    import tempfile
    from concurrent.futures import ThreadPoolExecutor
    from pathlib import Path

    from repro.index.artifacts import record_store_to_payload
    from repro.serve import build_bundle, cold_reference, request_json, serve_bundle

    tmp = Path(tempfile.mkdtemp(prefix="repro-serve-bench-"))
    daemon = None
    try:
        build_started = time.perf_counter()
        manifest = build_bundle(
            tmp / "bundle", preset="small", blocking="prefix", warm_items=warm_items
        )
        build_seconds = time.perf_counter() - build_started
        bundle_bytes = sum(
            entry["bytes"] for entry in manifest["components"].values()
        )

        daemon = serve_bundle(tmp / "bundle")
        host, port = daemon.start()
        external, cold, cold_seconds = cold_reference(
            daemon.session.bundle.config, items
        )
        payload = record_store_to_payload(external)

        latencies = []
        responses = []
        for _ in range(requests):
            started = time.perf_counter()
            responses.append(request_json(host, port, "POST", "/link", payload))
            latencies.append(time.perf_counter() - started)
        ordered = sorted(latencies)
        warm_p50 = statistics.median(ordered)
        warm_p99 = ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]

        burst_started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=workers) as pool:
            burst_responses = list(
                pool.map(
                    lambda _: request_json(host, port, "POST", "/link", payload),
                    range(burst),
                )
            )
        burst_seconds = time.perf_counter() - burst_started
        requests_per_second = burst / burst_seconds if burst_seconds else 0.0

        identical = all(
            response == cold for response in responses + burst_responses
        )
        warm_speedup = cold_seconds / warm_p50 if warm_p50 else float("inf")
        metrics = {
            "bundle_build_seconds": build_seconds,
            "bundle_bytes": bundle_bytes,
            "cold_seconds": cold_seconds,
            "warm_p50_seconds": warm_p50,
            "warm_p99_seconds": warm_p99,
            "warm_speedup_p50": warm_speedup,
            "requests_per_second": requests_per_second,
            "cache_hit_rate": daemon.session.comparator.cache_hit_rate,
            "matches": cold["matches"],
            "identical_to_cli": 1.0 if identical else 0.0,
        }
        assert identical, "a warm daemon response diverged from the one-shot path"
        assert warm_speedup >= 5.0, (
            f"warm requests only x{warm_speedup:.1f} vs cold construction"
        )
        text = "\n".join(
            [
                "smoke: warm-start daemon vs one-shot engine construction",
                f"bundle {bundle_bytes:,} bytes, built in "
                f"{build_seconds * 1000:.0f} ms",
                f"cold one-shot        {cold_seconds * 1000:8.1f} ms",
                f"warm request p50/p99 {warm_p50 * 1000:8.1f} / "
                f"{warm_p99 * 1000:.1f} ms   -> x{warm_speedup:.1f}",
                f"concurrent burst     {requests_per_second:8.1f} req/s "
                f"({burst} requests, {workers} clients)",
                f"{requests + burst} responses byte-identical to the cold path, "
                f"{cold['matches']} matches each",
            ]
        )
        return Measurement(metrics=metrics, text=text)
    finally:
        if daemon is not None:
            daemon.shutdown()
        shutil.rmtree(tmp, ignore_errors=True)


def measure_serve_load(
    _workload,
    clients=8,
    link_items=80,
    beta_items=40,
    warm_items=80,
    overload_probes=4,
) -> Measurement:
    """Sustained mixed traffic against a multi-bundle daemon, plus a
    deterministic overload probe.

    One daemon hosts two bundles (``alpha``: small preset, prefix;
    ``beta``: tiny preset, q-gram). *clients* threads each run a fixed
    script of ``/link`` requests against both bundles interleaved with
    two ``/delta`` ingests into a private stream — the production mix
    the ROADMAP names. Every response is identity-checked against a
    cold reference (links) or a pre-storm sequential reference stream
    (deltas); throughput and p50/p99 latency come from the storm.

    The overload leg runs on a second daemon sized ``workers=1,
    depth=1``: its single worker is parked on an event, the one queue
    slot is filled, and *overload_probes* concurrent requests are
    fired — every one must come back as a well-formed 503 with a
    ``Retry-After`` header, the rejections must show up in the queue
    counters, and the daemon must answer normally after release. That
    verdict is deterministic (no timing races), so it gates at zero
    tolerance.
    """
    import shutil
    import statistics
    import tempfile
    import threading
    from concurrent.futures import ThreadPoolExecutor
    from pathlib import Path

    from repro.index.artifacts import record_store_to_payload
    from repro.serve import (
        build_bundle,
        cold_reference,
        request_json,
        request_raw,
        response_identity,
        serve_bundle,
        serve_bundles,
    )

    tmp = Path(tempfile.mkdtemp(prefix="repro-serve-load-"))
    daemon = None
    overload_daemon = None
    try:
        build_bundle(
            tmp / "alpha", preset="small", blocking="prefix", warm_items=warm_items
        )
        build_bundle(tmp / "beta", preset="tiny", blocking="qgram", warm_items=30)

        daemon = serve_bundles(
            {"alpha": tmp / "alpha", "beta": tmp / "beta"},
            queue_workers=4,
            queue_depth=max(32, clients * 8),
        )
        host, port = daemon.start()

        # cold references: the identity comparand for every /link
        alpha_config = daemon.registry.session("alpha").bundle.config
        beta_config = daemon.registry.session("beta").bundle.config
        alpha_external, alpha_cold, _ = cold_reference(alpha_config, link_items)
        beta_external, beta_cold, _ = cold_reference(beta_config, beta_items)
        alpha_payload = record_store_to_payload(alpha_external)
        beta_payload = record_store_to_payload(beta_external)
        alpha_identity = response_identity(alpha_cold)
        beta_identity = response_identity(beta_cold)

        # delta reference: one sequential stream before the storm; every
        # client replays the same splits into a private stream, so each
        # concurrent delta response must match this reference ordinally
        records = alpha_payload["records"]
        middle = len(records) // 2
        splits = (records[:middle], records[middle:])
        delta_identities = [
            response_identity(
                request_json(
                    host,
                    port,
                    "POST",
                    "/delta",
                    {"bundle": "alpha", "stream": "ref", "records": split},
                )
            )
            for split in splits
        ]

        latencies: list = []
        mismatches = [0]
        lock = threading.Lock()

        def timed(path, payload, expected):
            started = time.perf_counter()
            response = request_json(host, port, "POST", path, payload)
            elapsed = time.perf_counter() - started
            ok = response_identity(response) == expected
            with lock:
                latencies.append(elapsed)
                if not ok:
                    mismatches[0] += 1

        def client_script(index: int) -> None:
            stream = f"load-{index}"
            timed("/link", {**alpha_payload, "bundle": "alpha"}, alpha_identity)
            timed(
                "/delta",
                {"bundle": "alpha", "stream": stream, "records": splits[0]},
                {**delta_identities[0], "stream": stream},
            )
            timed("/link", {**beta_payload, "bundle": "beta"}, beta_identity)
            timed(
                "/delta",
                {"bundle": "alpha", "stream": stream, "records": splits[1]},
                {**delta_identities[1], "stream": stream},
            )
            timed("/link", {**alpha_payload, "bundle": "alpha"}, alpha_identity)

        storm_started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=clients) as pool:
            list(pool.map(client_script, range(clients)))
        storm_seconds = time.perf_counter() - storm_started

        total_requests = len(latencies)
        ordered = sorted(latencies)
        p50 = statistics.median(ordered)
        p99 = ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]
        requests_per_second = (
            total_requests / storm_seconds if storm_seconds else 0.0
        )
        identical = mismatches[0] == 0
        queue_stats = daemon.queue.stats()

        # ---- deterministic overload probe -------------------------------
        overload_daemon = serve_bundle(
            tmp / "beta", queue_workers=1, queue_depth=1, retry_after=0.5
        )
        overload_host, overload_port = overload_daemon.start()
        release = threading.Event()
        occupiers = [
            threading.Thread(
                target=lambda: overload_daemon.queue.submit(release.wait),
                daemon=True,
            )
            for _ in range(2)  # one runs, one fills the single queue slot
        ]
        overload_ok = True
        try:
            occupiers[0].start()
            deadline = time.perf_counter() + 10.0
            while overload_daemon.queue.stats()["in_flight"] < 1:
                if time.perf_counter() > deadline:
                    raise AssertionError("overload worker never went busy")
                time.sleep(0.005)
            occupiers[1].start()
            while overload_daemon.queue.stats()["queued"] < 1:
                if time.perf_counter() > deadline:
                    raise AssertionError("overload queue slot never filled")
                time.sleep(0.005)

            def probe(_: int):
                return request_raw(
                    overload_host,
                    overload_port,
                    "POST",
                    "/link",
                    payload=beta_payload,
                )

            with ThreadPoolExecutor(max_workers=overload_probes) as pool:
                probes = list(pool.map(probe, range(overload_probes)))
            for status, headers, body in probes:
                if status != 503:
                    overload_ok = False
                if "Retry-After" not in headers:
                    overload_ok = False
                if not isinstance(body, dict) or "error" not in body:
                    overload_ok = False
        finally:
            release.set()
            for thread in occupiers:
                thread.join(timeout=10.0)
        overload_stats = overload_daemon.queue.stats()
        if overload_stats["rejected"] < overload_probes:
            overload_ok = False
        # and the daemon recovers: the next request is answered in full
        recovered = request_json(
            overload_host, overload_port, "POST", "/link", beta_payload
        )
        if response_identity(recovered) != beta_identity:
            overload_ok = False

        metrics = {
            "clients": clients,
            "requests_total": total_requests,
            "requests_per_second": requests_per_second,
            "p50_seconds": p50,
            "p99_seconds": p99,
            "storm_seconds": storm_seconds,
            "queue_rejected": queue_stats["rejected"],
            "overload_rejections": overload_stats["rejected"],
            "identical": 1.0 if identical else 0.0,
            "overload_ok": 1.0 if overload_ok else 0.0,
        }
        assert identical, (
            f"{mismatches[0]}/{total_requests} concurrent responses "
            "diverged from their references"
        )
        assert overload_ok, "overload did not answer clean 503s"
        text = "\n".join(
            [
                "serve-load: mixed /link + /delta traffic, "
                f"{clients} concurrent clients",
                f"{total_requests} requests in {storm_seconds:.2f}s "
                f"-> {requests_per_second:8.1f} req/s",
                f"latency p50/p99 {p50 * 1000:8.1f} / {p99 * 1000:.1f} ms",
                f"storm rejections {queue_stats['rejected']} "
                f"(depth {queue_stats['depth']})",
                f"overload probe: {overload_stats['rejected']} rejected "
                f"as 503 + Retry-After, recovery verified",
                "all responses byte-identical to their references",
            ]
        )
        return Measurement(metrics=metrics, text=text)
    finally:
        if daemon is not None:
            daemon.shutdown()
        if overload_daemon is not None:
            overload_daemon.shutdown()
        shutil.rmtree(tmp, ignore_errors=True)


def measure_smoke_index_passes(catalog, support_threshold=SUPPORT, rounds=3) -> Measurement:
    """Index-backed frequency passes vs the scan learn (I1 at smoke
    scale) — the same measurement as ``measure_index_learner``, minus
    the threshold sweep."""
    return measure_index_learner(
        catalog, support_threshold=support_threshold, sweep_thresholds=(), rounds=rounds
    )


register(
    BenchmarkSpec(
        name="smoke-learner",
        description="Algorithm 1 end to end on the small catalog",
        tier="smoke",
        workload="small-catalog",
        measure=measure_smoke_learner,
        budgets=(WALL, MetricBudget("learn_seconds", "lower", WALL_TOLERANCE)),
    )
)

register(
    BenchmarkSpec(
        name="smoke-linking",
        description="serial engine throughput on small provider batches",
        tier="smoke",
        workload="small-catalog",
        measure=measure_smoke_linking,
        budgets=(
            WALL,
            MetricBudget("engine_seconds", "lower", WALL_TOLERANCE),
            MetricBudget("pairs_per_second", "higher", 0.65),
        ),
    )
)

register(
    BenchmarkSpec(
        name="smoke-streaming-cache",
        description="cross-delta similarity-cache reuse vs cold per-delta caches",
        tier="smoke",
        workload="small-catalog",
        measure=measure_streaming_cache_reuse,
        budgets=(
            WALL,
            MetricBudget("shared_seconds", "lower", WALL_TOLERANCE),
            MetricBudget("speedup", "higher", 0.45),
            MetricBudget("shared_hit_rate", "higher", 0.3),
        ),
        checks=(
            lambda m: _assert(
                m.metrics["speedup"] > 1.2,
                f"shared cache not faster: x{m.metrics['speedup']:.2f}",
            ),
            lambda m: _assert(
                m.metrics["shared_hit_rate"] > m.metrics["cold_hit_rate"],
                "shared cache did not raise the hit rate",
            ),
        ),
    )
)

register(
    BenchmarkSpec(
        name="smoke-shard",
        description="shard executor byte-identical to serial, timing tracked",
        tier="smoke",
        workload="small-catalog",
        measure=measure_shard_executor,
        budgets=(
            WALL,
            MetricBudget("serial_seconds", "lower", WALL_TOLERANCE),
            MetricBudget("shard_seconds", "lower", WALL_TOLERANCE),
            # both verdicts are binary: any drop below 1.0 regresses
            MetricBudget("sharded", "higher", 0.0),
            MetricBudget("identical", "higher", 0.0),
        ),
        checks=(
            lambda m: _assert(
                m.metrics["sharded"] == 1.0,
                "shard run silently degraded (fallback or wrong executor)",
            ),
            lambda m: _assert(
                m.metrics["identical"] == 1.0,
                "shard executor output diverged from serial",
            ),
        ),
        report_name="smoke_shard",
    )
)

register(
    BenchmarkSpec(
        name="smoke-shard-blocking",
        description="q-gram/window/canopy blocking shard-native vs serial on skewed keys",
        tier="smoke",
        workload="small-catalog",
        measure=measure_shard_blocking,
        budgets=(
            WALL,
            MetricBudget("serial_seconds", "lower", WALL_TOLERANCE),
            MetricBudget("shard_seconds", "lower", WALL_TOLERANCE),
            # machine-relative: the trajectory tracks the real ratio; a
            # genuine regression against this machine's baseline trips it
            MetricBudget("pps_speedup", "higher", 0.5),
            # binary verdicts: any drop below 1.0 regresses
            MetricBudget("ran_sharded", "higher", 0.0),
            MetricBudget("identical", "higher", 0.0),
        ),
        checks=(
            lambda m: _assert(
                m.metrics["ran_sharded"] == 1.0,
                "a blocking class silently degraded out of the shard executor",
            ),
            lambda m: _assert(
                m.metrics["identical"] == 1.0,
                "a shard leg diverged from its serial twin",
            ),
            # the speedup gate needs real parallelism to be meaningful:
            # on a 1-CPU runner the shard pool shares one core with the
            # parent, so only multi-CPU machines enforce the 1.5x floor
            lambda m: _assert(
                m.metrics["cpus"] < 2 or m.metrics["pps_speedup"] > 1.5,
                f"sharded blocking not faster: x{m.metrics['pps_speedup']:.2f}",
            ),
        ),
        report_name="smoke_shard_blocking",
    )
)

register(
    BenchmarkSpec(
        name="smoke-worker-protocol",
        description="worker executor round-trips every shard through the wire, byte-identical to serial",
        tier="smoke",
        workload="small-catalog",
        measure=measure_worker_protocol,
        budgets=(
            WALL,
            MetricBudget("serial_seconds", "lower", WALL_TOLERANCE),
            MetricBudget("worker_seconds", "lower", WALL_TOLERANCE),
            # per-unit cost = interpreter spawn + both envelope round
            # trips; extra-generous envelope because subprocess bringup
            # is the noisiest thing CI measures, but a protocol change
            # that triples it (envelope bloat, an extra serialization
            # pass) must still trip the gate
            MetricBudget("unit_overhead_seconds", "lower", 2.0),
            # binary verdicts: any drop below 1.0 regresses
            MetricBudget("ran_worker", "higher", 0.0),
            MetricBudget("identical", "higher", 0.0),
        ),
        checks=(
            lambda m: _assert(
                m.metrics["ran_worker"] == 1.0,
                "worker run silently degraded (fallback or no units on the wire)",
            ),
            lambda m: _assert(
                m.metrics["identical"] == 1.0,
                "worker executor output diverged from serial",
            ),
            lambda m: _assert(
                m.metrics["work_unit_kb"] > 0,
                "transport counter reports an empty wire",
            ),
        ),
        report_name="smoke_worker_protocol",
    )
)

register(
    BenchmarkSpec(
        name="smoke-batched-scoring",
        description="batched columnar scoring byte-identical to pairwise, speedup tracked",
        tier="smoke",
        workload="small-catalog",
        measure=measure_batched_scoring,
        budgets=(
            WALL,
            MetricBudget("batched_seconds", "lower", WALL_TOLERANCE),
            MetricBudget("batched_pairs_per_second", "higher", 0.65),
            # the ratio is machine-robust but still noisy on loaded CI
            # runners — the floor trips on a real regression, not jitter
            MetricBudget("pps_speedup", "higher", 0.5),
            # binary verdicts: any drop below 1.0 regresses
            MetricBudget("ran_batched", "higher", 0.0),
            MetricBudget("identical", "higher", 0.0),
        ),
        checks=(
            lambda m: _assert(
                m.metrics["ran_batched"] == 1.0,
                "batched run silently degraded to pairwise scoring",
            ),
            lambda m: _assert(
                m.metrics["identical"] == 1.0,
                "batched scoring output diverged from pairwise",
            ),
            lambda m: _assert(
                m.metrics["pps_speedup"] > 1.5,
                f"batched scoring not faster: x{m.metrics['pps_speedup']:.2f}",
            ),
        ),
        report_name="smoke_batched_scoring",
    )
)

register(
    BenchmarkSpec(
        name="smoke-serve",
        description="warm-start daemon latency vs one-shot construction, byte-identical",
        tier="smoke",
        workload="null",
        measure=measure_serve_daemon,
        budgets=(
            WALL,
            MetricBudget("warm_p50_seconds", "lower", WALL_TOLERANCE),
            MetricBudget("warm_p99_seconds", "lower", WALL_TOLERANCE),
            # machine-relative ratio: both legs run on the same box, so
            # a real warm-path regression moves it even on loaded runners
            MetricBudget("warm_speedup_p50", "higher", 0.5),
            MetricBudget("requests_per_second", "higher", 0.65),
            # binary verdict: any drop below 1.0 regresses
            MetricBudget("identical_to_cli", "higher", 0.0),
        ),
        checks=(
            lambda m: _assert(
                m.metrics["identical_to_cli"] == 1.0,
                "a warm daemon response diverged from the one-shot path",
            ),
            lambda m: _assert(
                m.metrics["warm_speedup_p50"] >= 5.0,
                f"warm requests only x{m.metrics['warm_speedup_p50']:.1f} "
                "vs cold construction",
            ),
        ),
        report_name="smoke_serve",
    )
)

register(
    BenchmarkSpec(
        name="serve-load",
        description="sustained mixed /link+/delta traffic, 8 clients, + overload 503s",
        tier="serve-load",
        workload="null",
        measure=measure_serve_load,
        budgets=(
            WALL,
            MetricBudget("p50_seconds", "lower", WALL_TOLERANCE),
            MetricBudget("p99_seconds", "lower", WALL_TOLERANCE),
            # machine-relative: both the storm and the baseline ran on
            # the recording box; a real serving regression moves this
            # even when absolute latency is noisy
            MetricBudget("requests_per_second", "higher", 0.65),
            # binary verdicts: any drop below 1.0 regresses
            MetricBudget("identical", "higher", 0.0),
            MetricBudget("overload_ok", "higher", 0.0),
        ),
        checks=(
            lambda m: _assert(
                m.metrics["identical"] == 1.0,
                "a concurrent response diverged from its reference",
            ),
            lambda m: _assert(
                m.metrics["overload_ok"] == 1.0,
                "overload was not answered with clean 503 + Retry-After",
            ),
            lambda m: _assert(
                m.metrics["overload_rejections"] >= 1,
                "the overload probe never tripped a queue rejection",
            ),
        ),
        report_name="serve_load",
    )
)

register(
    BenchmarkSpec(
        name="smoke-index-passes",
        description="index-backed frequency passes vs scan learn, small catalog",
        tier="smoke",
        workload="small-catalog",
        measure=measure_smoke_index_passes,
        budgets=(WALL, MetricBudget("passes_speedup", "higher", 0.45)),
        checks=(
            lambda m: _assert(
                m.metrics["passes_speedup"] > 1.5,
                f"frequency passes slower than expected: x{m.metrics['passes_speedup']:.2f}",
            ),
        ),
    )
)


def _assert(condition: bool, message: str) -> None:
    if not condition:
        raise AssertionError(message)


# ----------------------------------------------------------------------
# standard tier — the absorbed paper-scale scripts
# ----------------------------------------------------------------------
def measure_table1(catalog, support_threshold=SUPPORT) -> Measurement:
    from repro.experiments.table1 import run_table1

    report = run_table1(catalog, support_threshold=support_threshold)
    return Measurement(
        metrics={
            "rules": report.total_rules,
            "eligible_items": report.eligible_items,
            "top_band_precision": report.rows[0].precision,
            "top_band_recall": report.rows[0].recall,
            "bottom_band_precision": report.rows[-1].precision,
            "bottom_band_recall": report.rows[-1].recall,
        },
        text=report.format(),
        data=report,
    )


def _check_table1(measurement: Measurement) -> None:
    report = measurement.data
    assert report.row(1.0).precision > 0.999, "top band must be perfect"
    precisions = [row.precision for row in report.rows]
    recalls = [row.recall for row in report.rows]
    assert all(a >= b - 1e-9 for a, b in zip(precisions, precisions[1:]))
    assert all(a <= b + 1e-9 for a, b in zip(recalls, recalls[1:]))
    assert 0.70 <= report.row(0.4).precision <= 0.97
    assert 0.18 <= report.row(1.0).recall <= 0.40


register(
    BenchmarkSpec(
        name="table1",
        description="regenerate the paper's Table 1 at paper scale",
        tier="standard",
        workload="thales-catalog",
        measure=measure_table1,
        budgets=(WALL,),
        checks=(_check_table1,),
    )
)


def measure_intext_stats(catalog, support_threshold=SUPPORT) -> Measurement:
    from repro.experiments.stats import run_stats

    stats = run_stats(catalog, support_threshold=support_threshold)
    return Measurement(
        metrics={
            "distinct_segments": stats.distinct_segments,
            "segment_occurrences": stats.segment_occurrences,
            "frequent_classes": stats.frequent_classes,
            "rules": stats.rule_count,
            "confidence_one_rules": stats.confidence_one_rules,
        },
        text=stats.format(),
        data=stats,
    )


def _check_intext_stats(measurement: Measurement) -> None:
    from repro.experiments.stats import PAPER_STATS

    stats = measurement.data
    assert (
        PAPER_STATS["distinct_segments"] * 0.7
        <= stats.distinct_segments
        <= PAPER_STATS["distinct_segments"] * 1.3
    )
    assert PAPER_STATS["rules"] * 0.6 <= stats.rule_count <= PAPER_STATS["rules"] * 1.4
    assert abs(stats.frequent_classes - PAPER_STATS["frequent_classes"]) <= 10
    assert 0 < stats.selected_occurrences < stats.segment_occurrences


register(
    BenchmarkSpec(
        name="intext-stats",
        description="the paper's in-text paragraph 5 statistics",
        tier="standard",
        workload="thales-catalog",
        measure=measure_intext_stats,
        budgets=(WALL,),
        checks=(_check_intext_stats,),
        report_name="intext_stats",
    )
)


def measure_support_sweep(
    catalog, thresholds=(0.0005, 0.001, 0.002, 0.005, 0.01)
) -> Measurement:
    from repro.experiments.sweeps import run_support_sweep

    rows = run_support_sweep(catalog, thresholds=thresholds)
    header = (
        "A1 support-threshold sweep (paper fixes th = 0.002)\n"
        f"{'th':<10}{'#rules':<8}{'#freq.cls':<10}{'#dec.':<8}"
        f"{'prec.':>7} {'recall':>7}"
    )
    return Measurement(
        metrics={
            "thresholds": len(rows),
            "min_rules": min(row.n_rules for row in rows),
            "max_rules": max(row.n_rules for row in rows),
        },
        text="\n".join([header] + [row.format() for row in rows]),
        data={"rows": rows},
    )


def _check_support_sweep(measurement: Measurement) -> None:
    rows = measurement.data["rows"]
    counts = [row.n_rules for row in rows]
    assert counts == sorted(counts, reverse=True), "rule count must fall with th"
    by_th = {row.support_threshold: row for row in rows}
    low, high = by_th[min(by_th)], by_th[max(by_th)]
    assert high.precision >= low.precision
    assert low.recall >= high.recall


register(
    BenchmarkSpec(
        name="support-sweep",
        description="A1: the support-threshold precision/recall trade-off",
        tier="standard",
        workload="thales-catalog",
        measure=measure_support_sweep,
        budgets=(WALL,),
        checks=(_check_support_sweep,),
    )
)


def measure_segmentation(catalog, support_threshold=SUPPORT) -> Measurement:
    from repro.experiments.sweeps import run_segmentation_ablation

    rows = run_segmentation_ablation(catalog, support_threshold=support_threshold)
    header = (
        "A2 segmentation ablation (paper uses the separator strategy)\n"
        f"{'strategy':<14}{'distinct':<10}{'occur.':<10}{'#rules':<8}"
        f"{'#dec.':<8}{'prec.':>7} {'recall':>7}"
    )
    return Measurement(
        metrics={"strategies": len(rows)},
        text="\n".join([header] + [row.format() for row in rows]),
        data={"rows": rows},
    )


def _check_segmentation(measurement: Measurement) -> None:
    by_name = {row.strategy: row for row in measurement.data["rows"]}
    assert by_name["bigram"].segment_occurrences > (
        by_name["separator"].segment_occurrences * 2
    )
    assert by_name["separator"].precision > by_name["bigram"].precision
    assert by_name["token"].recall < by_name["separator"].recall


register(
    BenchmarkSpec(
        name="segmentation",
        description="A2: separator vs n-gram vs token segmentation",
        tier="standard",
        workload="thales-catalog",
        measure=measure_segmentation,
        budgets=(WALL,),
        checks=(_check_segmentation,),
    )
)


def measure_ordering(catalog) -> Measurement:
    from repro.experiments.ordering_ablation import run_ordering_ablation

    rows = run_ordering_ablation(catalog)
    header = (
        "A5 rule-ordering ablation (top decision per item)\n"
        f"{'strategy':<12}{'#decided':<10}{'accuracy':>8} {'pairs':>12} {'factor':>9}"
    )
    return Measurement(
        metrics={"strategies": len(rows)},
        text="\n".join([header] + [row.format() for row in rows]),
        data={"rows": rows},
    )


def _check_ordering(measurement: Measurement) -> None:
    rows = measurement.data["rows"]
    assert len({row.decided_items for row in rows}) == 1, "coverage must not vary"
    by_name = {row.strategy: row for row in rows}
    assert by_name["subspace"].reduced_pairs <= by_name["paper"].reduced_pairs
    assert by_name["paper"].top_decision_accuracy >= (
        by_name["subspace"].top_decision_accuracy - 0.02
    )


register(
    BenchmarkSpec(
        name="ordering",
        description="paragraph 4.4 rule-ordering ablation (paper vs CBA vs subspace)",
        tier="standard",
        workload="thales-catalog",
        measure=measure_ordering,
        budgets=(WALL,),
        checks=(_check_ordering,),
    )
)


def measure_generalization(catalog, max_depth_lift=4) -> Measurement:
    from repro.experiments.generalization import run_generalization

    report = run_generalization(catalog, max_depth_lift=max_depth_lift)
    return Measurement(
        metrics={
            "base_rules": report.n_base_rules,
            "generalized_rules": report.n_generalized_rules,
            "base_recall": report.base_recall,
            "extended_recall": report.extended_recall,
        },
        text=report.format(),
        data=report,
    )


def _check_generalization(measurement: Measurement) -> None:
    report = measurement.data
    assert report.extended_recall >= report.base_recall - 1e-9


register(
    BenchmarkSpec(
        name="generalization",
        description="X1: subsumption generalization recall/lift trade-off",
        tier="standard",
        workload="thales-catalog",
        measure=measure_generalization,
        budgets=(WALL,),
        checks=(_check_generalization,),
    )
)


def measure_generality(gazetteer) -> Measurement:
    from repro.experiments.generality import run_generality

    report = run_generality(gazetteer)
    return Measurement(
        metrics={
            "rules": report.total_rules,
            "top_band_precision": report.rows[0].precision,
            "top_band_recall": report.rows[0].recall,
        },
        text=report.format(),
        data=report,
    )


def _check_generality(measurement: Measurement) -> None:
    report = measurement.data
    assert report.total_rules > 10
    assert report.rows[0].precision > 0.999
    assert report.rows[0].recall > 0.5


register(
    BenchmarkSpec(
        name="generality",
        description="X2: the identical pipeline on the toponym domain",
        tier="standard",
        workload="gazetteer",
        measure=measure_generality,
        budgets=(WALL,),
        checks=(_check_generality,),
    )
)


def measure_blocking_comparison(
    catalog, n_test_items=300, support_threshold=0.004
) -> Measurement:
    from repro.experiments.blocking_comparison import (
        BLOCKING_COMPARISON_HEADER,
        run_blocking_comparison,
    )

    rows = run_blocking_comparison(
        catalog, n_test_items=n_test_items, support_threshold=support_threshold
    )
    header = (
        "A3 blocking comparison (out-of-sample provider batch)\n"
        + BLOCKING_COMPARISON_HEADER
    )
    strict = next(row for row in rows if row.method == "rule-based (strict)")
    return Measurement(
        metrics={
            "methods": len(rows),
            "strict_reduction_ratio": strict.reduction_ratio,
            "strict_pairs_completeness": strict.pairs_completeness,
        },
        text="\n".join([header] + [row.format() for row in rows]),
        data={"rows": rows},
    )


def _check_blocking_comparison(measurement: Measurement) -> None:
    rows = measurement.data["rows"]
    by_name = {row.method: row for row in rows}
    assert all(row.reduction_ratio >= 0.0 for row in rows)
    assert by_name["rule-based (strict)"].reduction_ratio > 0.7
    assert by_name["rule-based (paper)"].pairs_completeness > 0.9


register(
    BenchmarkSpec(
        name="blocking-comparison",
        description="A3: rule-based reduction vs classic blocking baselines",
        tier="standard",
        workload="small-catalog",
        measure=measure_blocking_comparison,
        budgets=(WALL,),
        checks=(_check_blocking_comparison,),
        report_name="blocking_comparison",
    )
)


def measure_index_learner(
    catalog,
    support_threshold=SUPPORT,
    sweep_thresholds=(0.0005, 0.001, 0.002, 0.005, 0.01),
    rounds=3,
) -> Measurement:
    """I1: the shared inverted feature index vs the scan passes."""
    from repro.core import LearnerConfig, RuleLearner
    from repro.datagen.catalog import PART_NUMBER

    training_set = catalog.to_training_set()
    config = LearnerConfig(properties=(PART_NUMBER,), support_threshold=support_threshold)
    learner = RuleLearner(config)

    scan_seconds, scan_rules = _best_of(
        lambda: learner.learn_scan(training_set), rounds=rounds
    )
    build_seconds, index = _best_of(
        lambda: learner.build_index(training_set), rounds=rounds
    )
    passes_seconds, index_rules = _best_of(
        lambda: learner.learn(training_set, index=index), rounds=rounds
    )
    assert index_rules.rules == scan_rules.rules  # equivalence is non-negotiable

    def sweep_scan():
        return [
            RuleLearner(
                LearnerConfig(properties=(PART_NUMBER,), support_threshold=th)
            ).learn_scan(training_set)
            for th in sweep_thresholds
        ]

    def sweep_indexed():
        shared = learner.build_index(training_set)
        return [
            RuleLearner(
                LearnerConfig(properties=(PART_NUMBER,), support_threshold=th)
            ).learn(training_set, index=shared)
            for th in sweep_thresholds
        ]

    stats = index.stats()
    passes_speedup = scan_seconds / passes_seconds if passes_seconds else float("inf")
    data = {
        "total_links": index.rows,
        "rules": len(index_rules),
        "scan_learn_seconds": scan_seconds,
        "index_build_seconds": build_seconds,
        "index_passes_seconds": passes_seconds,
        "passes_speedup_vs_scan": passes_speedup,
        "posting_features": stats.features,
        "posting_entries": stats.postings,
        "mean_posting_length": stats.mean_posting_length,
        "byte_identical_rules": True,
    }
    metrics = {
        "scan_learn_seconds": scan_seconds,
        "index_build_seconds": build_seconds,
        "index_passes_seconds": passes_seconds,
        "passes_speedup": passes_speedup,
        "posting_entries": stats.postings,
        "rules": len(index_rules),
    }
    lines = [
        "I1 shared inverted feature index vs scan-based Algorithm 1",
        f"|TS| = {index.rows}, rules = {len(index_rules)}, "
        f"postings = {stats.postings} over {stats.features} features "
        f"(mean {stats.mean_posting_length:.1f})",
        f"scan learn           {scan_seconds * 1000:8.1f} ms",
        f"index build (pass 0) {build_seconds * 1000:8.1f} ms",
        f"frequency passes     {passes_seconds * 1000:8.1f} ms   "
        f"-> x{passes_speedup:.1f} vs scan learn",
    ]

    if sweep_thresholds:
        sweep_scan_seconds, sweep_scan_rules = _best_of(sweep_scan, rounds=1)
        sweep_index_seconds, sweep_index_rules = _best_of(sweep_indexed, rounds=1)
        for scan_set, index_set in zip(sweep_scan_rules, sweep_index_rules):
            assert index_set.rules == scan_set.rules
        sweep_speedup = (
            sweep_scan_seconds / sweep_index_seconds
            if sweep_index_seconds
            else float("inf")
        )
        data.update(
            sweep_thresholds=list(sweep_thresholds),
            sweep_scan_seconds=sweep_scan_seconds,
            sweep_indexed_seconds=sweep_index_seconds,
            sweep_speedup_vs_scan=sweep_speedup,
        )
        metrics["sweep_speedup"] = sweep_speedup
        lines.append(
            f"{len(sweep_thresholds)}-threshold sweep    "
            f"scan {sweep_scan_seconds * 1000:8.1f} ms / "
            f"indexed {sweep_index_seconds * 1000:8.1f} ms   "
            f"-> x{sweep_speedup:.1f}"
        )

    return Measurement(metrics=metrics, text="\n".join(lines), data=data)


def _check_index_learner(measurement: Measurement) -> None:
    # generous floors — typical is ~10x and ~6x
    assert measurement.metrics["passes_speedup"] > 1.5
    if "sweep_speedup" in measurement.metrics:
        assert measurement.metrics["sweep_speedup"] > 1.0


register(
    BenchmarkSpec(
        name="index-learner",
        description="I1: inverted feature index vs scan frequency passes",
        tier="standard",
        workload="thales-catalog",
        measure=measure_index_learner,
        budgets=(WALL, MetricBudget("passes_speedup", "higher", 0.5)),
        checks=(_check_index_learner,),
        report_name="index",
    )
)


def measure_classifier_probe(catalog, support_threshold=SUPPORT, rounds=3) -> Measurement:
    """I2: batch prediction through the rule probe table vs per-rule scan."""
    from repro.core import LearnerConfig, RuleClassifier, RuleLearner
    from repro.datagen.catalog import PART_NUMBER
    from repro.experiments.throughput import provider_batch

    training_set = catalog.to_training_set()
    config = LearnerConfig(properties=(PART_NUMBER,), support_threshold=support_threshold)
    rules = RuleLearner(config).learn(training_set)
    graph, truth = provider_batch(catalog, 500, seed=99)
    items = [external for external, _ in truth]
    classifier = RuleClassifier(rules)

    scan_seconds, scanned = _best_of(
        lambda: {item: classifier.predict(item, graph) for item in items}, rounds=rounds
    )
    probe_seconds, probed = _best_of(
        lambda: classifier.predict_many(items, graph), rounds=rounds
    )
    assert probed == scanned
    speedup = scan_seconds / probe_seconds if probe_seconds else float("inf")
    data = {
        "items": len(items),
        "rules": len(rules),
        "scan_seconds": scan_seconds,
        "probe_seconds": probe_seconds,
        "speedup": speedup,
        "identical_predictions": True,
    }
    text = "\n".join(
        [
            "I2 classifier: rule probe table vs per-rule scan",
            f"{len(items)} items x {len(rules)} rules",
            f"scan  {scan_seconds * 1000:8.1f} ms",
            f"probe {probe_seconds * 1000:8.1f} ms   -> x{speedup:.1f}",
        ]
    )
    return Measurement(
        metrics={
            "items": len(items),
            "rules": len(rules),
            "scan_seconds": scan_seconds,
            "probe_seconds": probe_seconds,
            "speedup": speedup,
        },
        text=text,
        data=data,
    )


register(
    BenchmarkSpec(
        name="classifier-probe",
        description="I2: predict_many probe table vs per-item rule scan",
        tier="standard",
        workload="thales-catalog",
        measure=measure_classifier_probe,
        budgets=(WALL,),
        report_name="classifier_index",
    )
)


def measure_linking_throughput(catalog, sizes=(200, 400, 800)) -> Measurement:
    """A5: provider batches through the engine, serial baseline."""
    from repro.experiments.throughput import THROUGHPUT_HEADER, run_linking_throughput

    rows = run_linking_throughput(catalog, sizes=sizes)
    last = rows[-1]
    return Measurement(
        metrics={
            "pairs_per_second": last.pairs_per_second,
            "cache_hit_rate": last.cache_hit_rate,
            "compared": last.compared,
            "f1": last.f1,
        },
        text="\n".join([THROUGHPUT_HEADER] + [row.format() for row in rows]),
        data={"rows": rows},
    )


def _check_linking_throughput(measurement: Measurement) -> None:
    for row in measurement.data["rows"]:
        assert row.pairs_per_second > 0
        assert 0.0 <= row.cache_hit_rate <= 1.0
        assert row.chunk_count >= 1


register(
    BenchmarkSpec(
        name="linking-throughput",
        description="A5: engine linking throughput on growing provider batches",
        tier="standard",
        workload="small-catalog",
        measure=measure_linking_throughput,
        budgets=(WALL, MetricBudget("pairs_per_second", "higher", 0.65)),
        checks=(_check_linking_throughput,),
        report_name="linking_throughput",
    )
)


def measure_parallel_identity(gazetteer, executors=("thread", "process")) -> Measurement:
    """Chunked parallel execution must be byte-identical to serial."""
    from repro.engine import JobConfig, LinkingJob
    from repro.experiments.throughput import toponym_linking_setup
    from repro.rdf import serialize_ntriples

    blocking, comparator, matcher, external, local, truth = toponym_linking_setup(
        gazetteer=gazetteer
    )
    serial = LinkingJob(blocking, comparator, matcher, JobConfig(executor="serial")).run(
        external, local
    )
    serial_bytes = serialize_ntriples(serial.sameas_graph()).encode()
    metrics = {
        "serial_seconds": serial.stats.elapsed_seconds,
        "pairs_compared": serial.stats.pairs_compared,
    }
    lines = [
        "E1 executor identity: parallel chunked vs serial (toponym domain)",
        f"serial   {serial.stats.elapsed_seconds:8.3f}s "
        f"{serial.stats.pairs_per_second:>11,.0f} pairs/s",
    ]
    for executor in executors:
        parallel = LinkingJob(
            blocking,
            comparator,
            matcher,
            JobConfig(executor=executor, workers=2, chunk_size=64),
        ).run(external, local)
        assert parallel.stats.executor == executor, "silent serial fallback"
        assert parallel.stats.fallback_reason is None
        assert parallel.match_pairs == serial.match_pairs
        parallel_bytes = serialize_ntriples(parallel.sameas_graph()).encode()
        assert parallel_bytes == serial_bytes, f"{executor} diverged from serial"
        metrics[f"{executor}_seconds"] = parallel.stats.elapsed_seconds
        lines.append(
            f"{executor:<8} {parallel.stats.elapsed_seconds:8.3f}s "
            f"{parallel.stats.pairs_per_second:>11,.0f} pairs/s   byte-identical"
        )
    assert serial.matching_quality(truth).precision > 0.8
    return Measurement(metrics=metrics, text="\n".join(lines))


register(
    BenchmarkSpec(
        name="parallel-identity",
        description="thread/process executors byte-identical to serial",
        tier="standard",
        workload="gazetteer-linking",
        measure=measure_parallel_identity,
        budgets=(WALL,),
        report_name="parallel_identity",
    )
)


# ----------------------------------------------------------------------
# full tier — multi-catalog sweeps and the scenario matrix
# ----------------------------------------------------------------------
def measure_learning_scalability(
    _workload, sizes=(1000, 2500, 5000, 10265), base_config=None
) -> Measurement:
    """A4: learning / classification wall time as |TS| grows."""
    from repro.experiments.sweeps import run_scalability

    rows = run_scalability(sizes=sizes, base_config=base_config)
    header = (
        "A4 scalability: learning / classification time vs |TS|\n"
        f"{'|TS|':<8}{'learn(s)':<10}{'classify(s)':<12}{'#rules':<8}"
    )
    small, large = rows[0], rows[-1]
    growth = (
        large.learn_seconds / small.learn_seconds
        if small.learn_seconds > 0.001
        else 0.0
    )
    return Measurement(
        metrics={
            "sizes": len(rows),
            "largest_learn_seconds": large.learn_seconds,
            "largest_classify_seconds": large.classify_seconds,
            "learn_growth_factor": growth,
        },
        text="\n".join([header] + [row.format() for row in rows]),
        data={"rows": rows},
    )


def _check_learning_scalability(measurement: Measurement) -> None:
    # 10x links must cost well under 100x learn time (generous bound)
    growth = measurement.metrics["learn_growth_factor"]
    assert growth == 0.0 or growth < 60


register(
    BenchmarkSpec(
        name="learning-scalability",
        description="A4: learn/classify cost versus training-set size",
        tier="full",
        workload="null",
        measure=measure_learning_scalability,
        budgets=(WALL,),
        checks=(_check_learning_scalability,),
        report_name="scalability",
    )
)


def measure_scenarios(_workload) -> Measurement:
    """S1: the whole scenario matrix, batch vs streaming."""
    from repro.scenarios import run_all, scenario_names

    reports = run_all()
    assert len(reports) == len(scenario_names()) >= 8
    for report in reports:
        assert report.streaming_identical, report.name
        assert not report.envelope_violations, (report.name, report.envelope_violations)

    rows: List[dict] = []
    lines = [
        "S1 scenario matrix: batch vs streaming engine",
        f"{'scenario':<28}{'|S_E|':>6}{'|S_L|':>7}{'pairs':>8}{'F1':>7}"
        f"{'PC':>7}{'RR':>7}{'batch':>9}{'stream':>9}{'overhead':>9}",
    ]
    for report in reports:
        overhead = (
            report.streaming_seconds / report.batch_seconds - 1.0
            if report.batch_seconds
            else 0.0
        )
        rows.append(
            {
                "scenario": report.name,
                "domain": report.domain,
                "tags": list(report.tags),
                "external_records": report.external_records,
                "local_records": report.local_records,
                "compared": report.compared,
                "matches": report.matches,
                "rules": report.rules,
                "precision": report.precision,
                "recall": report.recall,
                "f1": report.f1,
                "pairs_completeness": report.pairs_completeness,
                "reduction_ratio": report.reduction_ratio,
                "batch_seconds": report.batch_seconds,
                "streaming_seconds": report.streaming_seconds,
                "streaming_deltas": report.streaming_deltas,
                "streaming_overhead": overhead,
                "streaming_identical": report.streaming_identical,
                "match_digest": report.match_digest,
            }
        )
        lines.append(
            f"{report.name:<28}{report.external_records:>6}{report.local_records:>7}"
            f"{report.compared:>8}{report.f1:>7.3f}"
            f"{report.pairs_completeness:>7.3f}{report.reduction_ratio:>7.3f}"
            f"{report.batch_seconds:>8.2f}s{report.streaming_seconds:>8.2f}s"
            f"{overhead:>8.1%}"
        )
    lines.append(
        f"{len(reports)} scenarios, all streaming legs byte-identical to batch"
    )
    mean_overhead = sum(row["streaming_overhead"] for row in rows) / len(rows)
    return Measurement(
        metrics={
            "scenarios": len(reports),
            "batch_seconds_total": sum(r.batch_seconds for r in reports),
            "streaming_seconds_total": sum(r.streaming_seconds for r in reports),
            "mean_streaming_overhead": mean_overhead,
            "min_f1": min(r.f1 for r in reports),
        },
        text="\n".join(lines),
        data=rows,
    )


register(
    BenchmarkSpec(
        name="scenarios",
        description="S1: every registered scenario, batch vs streaming",
        tier="full",
        workload="null",
        measure=measure_scenarios,
        budgets=(WALL,),
    )
)
