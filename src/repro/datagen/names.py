"""Name pools for the synthetic electronics catalog.

Everything here is deterministic data — the random choices happen in the
generator. The first leaf names echo the classes the paper mentions
(Fixed-film resistance, Tantalum capacitor) so examples read like §5.
"""

from __future__ import annotations

#: Top-level product families; also the unit-segment families.
FAMILY_NAMES = (
    "Resistors",
    "Capacitors",
    "Inductors",
    "Diodes",
    "Transistors",
    "Integrated Circuits",
    "Connectors",
    "Relays",
    "Switches",
    "Crystals and Oscillators",
    "Fuses",
    "Transformers",
)

#: Unit segments per family — the shared, family-indicative vocabulary
#: ("measure units can be used to determine the category of the
#: products ('ohm', 'Kg', 'meter')").
FAMILY_UNITS = (
    ("ohm", "kohm", "mohm", "5w"),
    ("uf", "nf", "pf", "63v", "esr"),
    ("uh", "mh", "nh", "idc"),
    ("vrrm", "ifav", "trr"),
    ("hfe", "vceo", "icmax"),
    ("mhz", "lqfp", "sram", "gpio"),
    ("pos", "pitch", "awg"),
    ("coil", "vdc", "spdt"),
    ("dpdt", "latch", "mom"),
    ("khz", "ppm", "xtal"),
    ("amp", "slow", "fast"),
    ("vain", "vaout", "turns"),
)

#: Qualifiers used to name intermediate hierarchy levels.
QUALIFIERS = (
    "Fixed",
    "Variable",
    "Precision",
    "Power",
    "Surface Mount",
    "Through Hole",
    "High Voltage",
    "Low Noise",
    "Miniature",
    "Industrial",
    "Automotive",
    "Military",
    "General Purpose",
    "High Frequency",
    "Shielded",
)

#: Leaf names seeded with the classes the paper names explicitly.
SEED_LEAF_NAMES = (
    "Fixed-film resistance",
    "Tantalum capacitor",
    "Wirewound resistor",
    "Ceramic capacitor",
    "Electrolytic capacitor",
    "Zener diode",
    "Schottky diode",
    "Power inductor",
    "Signal relay",
    "Crystal oscillator",
)

#: Prefix pool for class-indicative series codes (CRCW0805-like).
SERIES_PREFIXES = (
    "CRCW", "T", "MAX", "LM", "BC", "IRF", "WSL", "ERJ", "GRM", "C0G",
    "RN", "MKT", "TPS", "AD", "NE", "UF", "BZX", "MMBT", "SS", "RC",
)

#: Manufacturer pool ("almost all manufacturers provide products that
#: belong to distinct classes" — so manufacturers are deliberately
#: uninformative about the class).
MANUFACTURERS = (
    "Vishay", "Murata", "TDK", "Kemet", "Panasonic", "Yageo", "Bourns",
    "AVX", "Nichicon", "Rubycon", "Texas Instruments", "Analog Devices",
    "STMicro", "Infineon", "NXP", "ON Semi", "Rohm", "Diodes Inc",
    "Littelfuse", "TE Connectivity", "Molex", "Amphenol", "Omron",
    "Epson", "Abracon", "Susumu", "KOA", "Walsin", "Samsung EM", "Taiyo Yuden",
)

#: Provider-side decorative suffixes occasionally appended to part numbers.
PROVIDER_SUFFIXES = ("rohs", "tr", "reel", "bulk", "ct", "pbfree")
