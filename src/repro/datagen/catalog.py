"""The complete synthetic catalog: S_L, S_E, TS and ground truth.

:class:`ElectronicCatalogGenerator` assembles everything the experiments
need, fully seeded:

* the product ontology (exact class/leaf counts) with every catalog item
  typed by its leaf class;
* the local graph ``S_L`` — catalog items with ``partNumber``,
  ``manufacturer`` and ``rdfs:label``;
* the external graph ``S_E`` — provider records: corrupted part numbers
  (plus manufacturer), schema-less from the learner's point of view;
* the expert training set ``TS`` — one ``sameAs`` link per provider
  record to its catalog original (the generator knows the truth, playing
  the paper's domain expert).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.training import SameAsLink, TrainingSet
from repro.datagen import names
from repro.datagen.config import CatalogConfig
from repro.datagen.corruption import CorruptionConfig, Corruptor
from repro.datagen.grammar import LeafProfile, PartNumberGrammar
from repro.datagen.ontology_gen import CATALOG, generate_product_ontology
from repro.ontology.model import Ontology
from repro.rdf.dataset import Dataset
from repro.rdf.graph import Graph
from repro.rdf.namespace import OWL, RDF, RDFS
from repro.rdf.terms import IRI, Literal, Term
from repro.rdf.triples import Triple

#: Data-type property carrying the part number (the expert's choice).
PART_NUMBER = CATALOG.term("partNumber")
#: Manufacturer property (deliberately uninformative about the class).
MANUFACTURER = CATALOG.term("manufacturer")


@dataclass(frozen=True, slots=True)
class CatalogItem:
    """One generated catalog product."""

    iri: IRI
    leaf: IRI
    part_number: str
    manufacturer: str
    label: str


@dataclass
class GeneratedCatalog:
    """Everything one generator run produced."""

    config: CatalogConfig
    ontology: Ontology
    grammar: PartNumberGrammar
    items: List[CatalogItem]
    local_graph: Graph
    external_graph: Graph
    links: List[SameAsLink]
    #: external IRI -> true local IRI (== the links, as a dict)
    truth: Dict[Term, Term] = field(default_factory=dict)

    @property
    def truth_pairs(self) -> List[Tuple[Term, Term]]:
        """Ground truth as (external, local) pairs."""
        return [(link.external, link.local) for link in self.links]

    def to_training_set(self) -> TrainingSet:
        """The expert-validated ``TS`` over this catalog."""
        return TrainingSet(
            self.links, external=self.external_graph, ontology=self.ontology
        )

    def to_dataset(self) -> Dataset:
        """Provenance dataset: local / external / links named graphs."""
        dataset = Dataset()
        dataset.local.add_all(self.local_graph.triples())
        dataset.external.add_all(self.external_graph.triples())
        links = dataset.graph("links")
        for link in self.links:
            links.add(Triple(link.external, OWL.sameAs, link.local))
        return dataset

    def __repr__(self) -> str:
        return (
            f"<GeneratedCatalog items={len(self.items)} "
            f"links={len(self.links)} classes={len(self.ontology)}>"
        )


class ElectronicCatalogGenerator:
    """Seeded generator of the full synthetic benchmark.

    >>> catalog = ElectronicCatalogGenerator(CatalogConfig.thales_like()).generate()
    >>> ts = catalog.to_training_set()
    >>> len(ts)
    10265
    """

    def __init__(
        self,
        config: CatalogConfig | None = None,
        corruption: CorruptionConfig | None = None,
    ) -> None:
        self.config = config or CatalogConfig()
        self.corruptor = Corruptor(corruption)

    def generate(self) -> GeneratedCatalog:
        """Run the full generation pipeline (deterministic per seed)."""
        config = self.config
        rng = random.Random(config.seed)

        ontology, leaf_iris = generate_product_ontology(config)
        grammar = PartNumberGrammar(config, leaf_iris, ontology)

        # 1. catalog items, Zipf-distributed over leaves
        sizes = grammar.class_sizes(config.catalog_size, rng)
        items: List[CatalogItem] = []
        local_graph = Graph(identifier="local")
        item_counter = 0
        for leaf in leaf_iris:
            profile = grammar.profile_of(leaf)
            label_base = ontology.label(leaf)
            for _ in range(sizes[leaf]):
                iri = CATALOG.term(f"product/p{item_counter}")
                item_counter += 1
                part_number = grammar.sample_part_number(profile, rng)
                manufacturer = rng.choice(names.MANUFACTURERS)
                label = f"{label_base} {part_number}"
                items.append(
                    CatalogItem(
                        iri=iri,
                        leaf=leaf,
                        part_number=part_number,
                        manufacturer=manufacturer,
                        label=label,
                    )
                )
                ontology.add_instance(iri, leaf)
                local_graph.add(Triple(iri, RDF.type, leaf))
                local_graph.add(Triple(iri, PART_NUMBER, Literal(part_number)))
                local_graph.add(Triple(iri, MANUFACTURER, Literal(manufacturer)))
                local_graph.add(Triple(iri, RDFS.label, Literal(label)))

        # 2. expert links: sample |TS| catalog items (uniformly, which
        # preserves the Zipf class skew) and emit corrupted provider twins
        linked_items = rng.sample(items, config.n_links)
        external_graph = Graph(identifier="external")
        links: List[SameAsLink] = []
        truth: Dict[Term, Term] = {}
        for i, item in enumerate(linked_items):
            ext_iri = CATALOG.term(f"provider/e{i}")
            provider_pn = self.corruptor.corrupt(item.part_number, rng)
            external_graph.add(Triple(ext_iri, PART_NUMBER, Literal(provider_pn)))
            external_graph.add(
                Triple(ext_iri, MANUFACTURER, Literal(item.manufacturer))
            )
            links.append(SameAsLink(external=ext_iri, local=item.iri))
            truth[ext_iri] = item.iri

        return GeneratedCatalog(
            config=config,
            ontology=ontology,
            grammar=grammar,
            items=items,
            local_graph=local_graph,
            external_graph=external_graph,
            links=links,
            truth=truth,
        )
