"""A second evaluation domain: toponyms (geographic places).

The paper's conclusion: "To show the generality of our approach we plan
to test it on data from other domains." Its introduction motivates the
method with toponyms — "toponyms found in rdfs:label often contain
types of geographical places ('Dresden Elbe Valley', 'Place de la
Concorde', 'Copacabana Beach')".

This generator builds that domain: a small geographic ontology, place
labels whose *type words* (valley, beach, museum, ...) indicate the
class with varying reliability, name words drawn from a large pool (the
noise), and an expert-link training set — structurally the same
benchmark as the electronics catalog, over ``rdfs:label`` with token
segmentation instead of part numbers with separator segmentation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.training import SameAsLink, TrainingSet
from repro.datagen.grammar import zipf_counts
from repro.ontology.model import Ontology
from repro.rdf.graph import Graph
from repro.rdf.namespace import RDF, RDFS, Namespace
from repro.rdf.terms import IRI, Literal, Term
from repro.rdf.triples import Triple

GEO = Namespace("http://example.org/geo/")

#: Place categories with their type words. The first words are strongly
#: indicative (appear only for the class); the ``shared`` words are
#: ambiguous across sibling classes (e.g. "park" for gardens & reserves).
_CATEGORIES: Dict[str, dict] = {
    "Valley": dict(parent="Landform", words=("valley", "vale", "glen")),
    "Mountain": dict(parent="Landform", words=("mount", "mountain", "peak")),
    "Beach": dict(parent="Coast", words=("beach", "sands")),
    "Cliff": dict(parent="Coast", words=("cliff", "cliffs", "head")),
    "Square": dict(parent="UrbanSpace", words=("square", "place", "plaza")),
    "Park": dict(parent="UrbanSpace", words=("park", "garden", "gardens")),
    "Museum": dict(parent="Building", words=("museum", "gallery")),
    "Church": dict(parent="Building", words=("church", "cathedral", "basilica")),
    "Castle": dict(parent="Building", words=("castle", "fort", "fortress")),
    "Bridge": dict(parent="Structure", words=("bridge", "viaduct")),
    "Tower": dict(parent="Structure", words=("tower",)),
    "Lake": dict(parent="Water", words=("lake", "loch", "lagoon")),
    "River": dict(parent="Water", words=("river", "creek")),
    "Island": dict(parent="Water", words=("island", "isle")),
}

#: Words shared across classes of the same parent — ambiguity source.
_SHARED_BY_PARENT: Dict[str, Tuple[str, ...]] = {
    "Landform": ("upper", "great"),
    "Coast": ("point", "bay"),
    "UrbanSpace": ("royal", "central"),
    "Building": ("saint", "old"),
    "Structure": ("grand",),
    "Water": ("blue", "north"),
}

_NAME_STEMS = (
    "avon", "bern", "cala", "dore", "elbe", "faro", "gath", "hild",
    "ister", "jura", "kant", "loire", "mira", "nero", "ostra", "pavo",
    "quil", "rhone", "sava", "tagus", "ural", "visla", "wend", "xira",
    "yar", "zala",
)
_NAME_SUFFIXES = ("", "ia", "ona", "berg", "ville", "stad", "mor", "wick")


@dataclass(frozen=True, slots=True)
class ToponymConfig:
    """Knobs of the toponym benchmark.

    * ``n_links`` — |TS|;
    * ``catalog_size`` — local gazetteer size;
    * ``p_type_word`` — probability the label carries the class's type
      word (the indicative signal);
    * ``p_shared_word`` — probability of a parent-shared ambiguous word;
    * ``class_zipf_s`` — class-size skew.
    """

    n_links: int = 2000
    catalog_size: int = 5000
    p_type_word: float = 0.75
    p_shared_word: float = 0.35
    class_zipf_s: float = 0.8
    seed: int = 7

    def __post_init__(self) -> None:
        if self.catalog_size < self.n_links:
            raise ValueError("catalog must be at least as large as |TS|")
        for name in ("p_type_word", "p_shared_word"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")


@dataclass
class GeneratedGazetteer:
    """The toponym benchmark: ontology, graphs, links and truth."""

    config: ToponymConfig
    ontology: Ontology
    local_graph: Graph
    external_graph: Graph
    links: List[SameAsLink]
    truth: Dict[Term, Term]

    def to_training_set(self) -> TrainingSet:
        """The expert ``TS`` over the gazetteer."""
        return TrainingSet(
            self.links, external=self.external_graph, ontology=self.ontology
        )


def _build_geo_ontology() -> Tuple[Ontology, List[IRI]]:
    onto = Ontology(name="geo")
    root = GEO.term("Place")
    onto.add_class(root, label="Place")
    leaves: List[IRI] = []
    for name, spec in _CATEGORIES.items():
        parent = GEO.term(spec["parent"])
        onto.add_subclass(parent, root)
        leaf = GEO.term(name)
        onto.add_subclass(leaf, parent)
        leaves.append(leaf)
    return onto, leaves


def _sample_name(rng: random.Random) -> str:
    stem = rng.choice(_NAME_STEMS)
    suffix = rng.choice(_NAME_SUFFIXES)
    return f"{stem}{suffix}"


def _sample_label(leaf_name: str, parent: str, config: ToponymConfig, rng: random.Random) -> str:
    words: List[str] = [_sample_name(rng)]
    if rng.random() < config.p_type_word:
        words.append(rng.choice(_CATEGORIES[leaf_name]["words"]))
    if rng.random() < config.p_shared_word:
        words.append(rng.choice(_SHARED_BY_PARENT[parent]))
    rng.shuffle(words)
    return " ".join(words).title()


def _corrupt_label(label: str, rng: random.Random) -> str:
    """Provider-side label noise: case, word drop, filler words."""
    words = label.split()
    if len(words) > 1 and rng.random() < 0.10:
        words.pop(rng.randrange(len(words)))
    if rng.random() < 0.15:
        words.insert(rng.randrange(len(words) + 1), rng.choice(("the", "of", "le")))
    text = " ".join(words)
    roll = rng.random()
    if roll < 0.2:
        return text.upper()
    if roll < 0.4:
        return text.lower()
    return text


def generate_gazetteer(config: ToponymConfig | None = None) -> GeneratedGazetteer:
    """Generate the toponym benchmark (deterministic per seed)."""
    config = config or ToponymConfig()
    rng = random.Random(config.seed)
    onto, leaves = _build_geo_ontology()

    counts = zipf_counts(config.catalog_size, len(leaves), config.class_zipf_s, rng)
    order = list(range(len(leaves)))
    rng.shuffle(order)

    local_graph = Graph(identifier="local")
    items: List[Tuple[IRI, IRI, str]] = []
    item_counter = 0
    for slot, leaf_index in enumerate(order):
        leaf = leaves[leaf_index]
        leaf_name = leaf.local_name
        parent = _CATEGORIES[leaf_name]["parent"]
        for _ in range(counts[slot]):
            iri = GEO.term(f"place/g{item_counter}")
            item_counter += 1
            label = _sample_label(leaf_name, parent, config, rng)
            onto.add_instance(iri, leaf)
            local_graph.add(Triple(iri, RDF.type, leaf))
            local_graph.add(Triple(iri, RDFS.label, Literal(label)))
            items.append((iri, leaf, label))

    linked = rng.sample(items, config.n_links)
    external_graph = Graph(identifier="external")
    links: List[SameAsLink] = []
    truth: Dict[Term, Term] = {}
    for i, (local_iri, _leaf, label) in enumerate(linked):
        ext = GEO.term(f"provider/t{i}")
        external_graph.add(
            Triple(ext, RDFS.label, Literal(_corrupt_label(label, rng)))
        )
        links.append(SameAsLink(external=ext, local=local_iri))
        truth[ext] = local_iri

    return GeneratedGazetteer(
        config=config,
        ontology=onto,
        local_graph=local_graph,
        external_graph=external_graph,
        links=links,
        truth=truth,
    )
