"""Per-class part-number grammars.

Every leaf class gets a :class:`LeafProfile` describing how its part
numbers are assembled:

* the paper's *indicative* leaves own dedicated **series codes**
  ("CRCW0805", "T83") — clean codes appear in no other class and become
  the confidence-1 rules; *leaky* codes occasionally stray into other
  classes' part numbers and land in the [0.8, 1) band;
* every leaf belongs to a **unit family** (``rank mod n_unit_families``)
  whose unit segments ("ohm", "uf", "63v") are shared across the
  family's leaves — the family's biggest class dominates, producing
  mid-confidence rules, while smaller family members yield the
  low-confidence tail;
* **value segments** (sizes, tolerances, ratings) are drawn either from
  the leaf family's slice of the pool (family-biased) or globally with a
  Zipf skew — frequent but unspecific;
* **serial segments** are near-unique per item — the noise that support
  thresholding exists to kill.

Class sizes follow a Zipf distribution over leaf *ranks* (rank 1 = the
biggest class); ranks are assigned to leaves by a seeded shuffle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.datagen import names
from repro.datagen.config import CatalogConfig
from repro.rdf.terms import IRI

#: Separators used when joining part-number segments (all are split
#: points for the paper's non-alphanumeric segmentation).
SEPARATORS = ("-", ".", "/", " ", "_")


@dataclass(frozen=True, slots=True)
class LeafProfile:
    """The generative profile of one leaf class."""

    iri: IRI
    rank: int
    series_codes: Tuple[str, ...]
    family: int
    units: Tuple[str, ...]

    @property
    def indicative(self) -> bool:
        """Whether this leaf owns dedicated series codes."""
        return bool(self.series_codes)


def zipf_counts(total: int, n_ranks: int, s: float, rng: random.Random) -> List[int]:
    """Split *total* items over *n_ranks* ranks by a Zipf(s) law.

    Largest-remainder rounding keeps the sum exact; every rank keeps at
    least 0 (small totals leave tail ranks empty).
    """
    weights = [1.0 / (k ** s) for k in range(1, n_ranks + 1)]
    norm = sum(weights)
    raw = [total * w / norm for w in weights]
    counts = [int(x) for x in raw]
    remainder = total - sum(counts)
    fractional = sorted(
        range(n_ranks), key=lambda k: raw[k] - counts[k], reverse=True
    )
    for k in fractional[:remainder]:
        counts[k] += 1
    return counts


def _family_units(family: int, rng: random.Random) -> Tuple[str, ...]:
    """Unit vocabulary of a family: curated for the first 12, synthesized
    (electronics-flavored suffix codes) beyond."""
    if family < len(names.FAMILY_UNITS):
        return names.FAMILY_UNITS[family]
    consonants = "bcdfgjklmnpqrstvwz"
    stem = consonants[family % len(consonants)]
    count = rng.randint(2, 4)
    return tuple(f"{stem}{family}{suffix}" for suffix in ("x", "r", "k", "t")[:count])


class PartNumberGrammar:
    """Builds leaf profiles and samples part numbers from them.

    When an ontology is supplied, unit families follow the hierarchy:
    leaves sharing a depth-``FAMILY_DEPTH`` ancestor share a unit pool,
    so mid-confidence rules' conclusions are hierarchy siblings and the
    generalization extension has meaningful least common subsumers.
    Without an ontology, families fall back to ``rank mod n``.

    >>> grammar = PartNumberGrammar(config, leaf_iris, ontology)
    >>> profile = grammar.profile_for_rank(1)
    >>> grammar.sample_part_number(profile, rng)
    'crcw0805-10k-4722'
    """

    #: Hierarchy depth whose subtrees define the unit families.
    FAMILY_DEPTH = 4

    def __init__(
        self,
        config: CatalogConfig,
        leaf_iris: Sequence[IRI],
        ontology=None,
    ) -> None:
        self._config = config
        rng = random.Random(config.seed + 202)

        # rank assignment: shuffle leaves, rank = position + 1
        shuffled = list(leaf_iris)
        rng.shuffle(shuffled)
        self._rank_of: Dict[IRI, int] = {
            iri: rank for rank, iri in enumerate(shuffled, start=1)
        }

        n_families = config.n_unit_families
        self._unit_pools: List[Tuple[str, ...]] = [
            _family_units(f, rng) for f in range(n_families)
        ]
        self._family_of: Dict[IRI, int] = self._assign_families(
            leaf_iris, ontology, n_families
        )

        # value pool: a family-specific slice plus a global remainder
        self._family_values: List[Tuple[str, ...]] = []
        pool = self._build_value_pool(config.value_pool)
        cursor = 0
        for _ in range(n_families):
            slice_ = tuple(pool[cursor:cursor + config.values_per_family])
            self._family_values.append(slice_)
            cursor += config.values_per_family
        self._global_values = pool[cursor:] or pool
        self._global_weights = [
            1.0 / (k ** config.value_zipf_s)
            for k in range(1, len(self._global_values) + 1)
        ]

        # serial pool
        self._serials = [str(1000 + i) for i in range(config.serial_pool)]

        # per-leaf profiles with rank-dependent code counts
        self._profiles: Dict[IRI, LeafProfile] = {}
        self._leaky_codes: List[str] = []
        used_codes: set[str] = set()
        low, high = config.codes_per_class
        for iri, rank in self._rank_of.items():
            family = self._family_of[iri]
            # the biggest classes carry no units: keeps family/unit rules
            # pointed at smaller classes, hence high mid-band lift
            if rank <= config.n_unitless_top:
                units: Tuple[str, ...] = ()
            else:
                units = self._unit_pools[family]
            codes: Tuple[str, ...] = ()
            if rank <= config.n_indicative_leaves:
                # bigger classes can sustain more codes above the support
                # threshold; interpolate max..min across the ranks
                span = max(1, config.n_indicative_leaves - 1)
                n_codes = round(high - (high - low) * (rank - 1) / span)
                pool_: List[str] = []
                while len(pool_) < n_codes:
                    prefix = rng.choice(names.SERIES_PREFIXES)
                    code = f"{prefix}{rng.randint(10, 9999)}".casefold()
                    if code not in used_codes:
                        used_codes.add(code)
                        pool_.append(code)
                        if rng.random() < config.p_leaky_code:
                            self._leaky_codes.append(code)
                codes = tuple(pool_)
            self._profiles[iri] = LeafProfile(
                iri=iri, rank=rank, series_codes=codes, family=family, units=units
            )

        self._by_rank: Dict[int, LeafProfile] = {
            p.rank: p for p in self._profiles.values()
        }

    def _assign_families(
        self, leaf_iris: Sequence[IRI], ontology, n_families: int
    ) -> Dict[IRI, int]:
        """Family per leaf: hierarchy subtree when possible, rank otherwise."""
        if ontology is None:
            return {
                iri: (self._rank_of[iri] - 1) % n_families for iri in leaf_iris
            }
        hierarchy = ontology.hierarchy
        anchor_index: Dict[IRI, int] = {}
        families: Dict[IRI, int] = {}
        for iri in leaf_iris:
            # the leaf's ancestor at FAMILY_DEPTH (or its deepest strict
            # ancestor when the taxonomy is shallower)
            ancestors = sorted(
                hierarchy.ancestors(iri),
                key=lambda a: (hierarchy.depth(a), a.value),
            )
            anchor = iri
            for candidate in ancestors:
                if hierarchy.depth(candidate) <= self.FAMILY_DEPTH:
                    anchor = candidate
            if anchor not in anchor_index:
                anchor_index[anchor] = len(anchor_index)
            families[iri] = anchor_index[anchor] % n_families
        return families

    @staticmethod
    def _build_value_pool(size: int) -> List[str]:
        """Realistic shared value segments: sizes, ratings, tolerances."""
        seeds = [
            "0805", "0603", "1206", "2512", "10k", "100", "220", "470",
            "1k", "4k7", "100n", "10u", "25v", "63v", "x7r", "npo",
            "50v", "2a", "3a3", "500mw",
        ]
        pool = list(seeds)
        i = 0
        while len(pool) < size:
            pool.append(f"v{i:03d}")
            i += 1
        return pool[:size]

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    @property
    def profiles(self) -> Dict[IRI, LeafProfile]:
        """Profile per leaf IRI."""
        return dict(self._profiles)

    @property
    def leaky_codes(self) -> Tuple[str, ...]:
        """Series codes allowed to stray into other classes."""
        return tuple(self._leaky_codes)

    def profile_of(self, leaf: IRI) -> LeafProfile:
        """Profile of a leaf class."""
        return self._profiles[leaf]

    def profile_for_rank(self, rank: int) -> LeafProfile:
        """Profile of the leaf holding Zipf rank *rank* (1-based)."""
        return self._by_rank[rank]

    def rank_of(self, leaf: IRI) -> int:
        """Zipf rank of a leaf class."""
        return self._rank_of[leaf]

    def class_sizes(self, total: int, rng: random.Random) -> Dict[IRI, int]:
        """Zipf split of *total* items over the leaves, by rank."""
        counts = zipf_counts(
            total, len(self._rank_of), self._config.class_zipf_s, rng
        )
        return {
            iri: counts[rank - 1] for iri, rank in self._rank_of.items()
        }

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def sample_value_segment(self, profile: LeafProfile, rng: random.Random) -> str:
        """One shared value segment (family slice or global Zipf)."""
        config = self._config
        family_slice = self._family_values[profile.family % len(self._family_values)]
        if family_slice and rng.random() < config.p_value_family_bias:
            return rng.choice(family_slice)
        return rng.choices(self._global_values, weights=self._global_weights, k=1)[0]

    def sample_part_number(self, profile: LeafProfile, rng: random.Random) -> str:
        """One catalog part number for an item of *profile*'s class."""
        config = self._config
        segments: List[str] = []
        if profile.indicative and rng.random() < config.p_series:
            segments.append(rng.choice(profile.series_codes))
        elif self._leaky_codes and rng.random() < config.p_stray_code:
            # a stray series code from somebody else's (leaky) series
            segments.append(rng.choice(self._leaky_codes))
        if profile.units and rng.random() < config.p_unit:
            segments.append(rng.choice(profile.units))
        if rng.random() < config.p_value:
            segments.append(self.sample_value_segment(profile, rng))
        segments.append(rng.choice(self._serials))
        if rng.random() < config.p_second_serial:
            segments.append(rng.choice(self._serials))
        rng.shuffle(segments)
        separator = rng.choice(SEPARATORS)
        return separator.join(segments)
