"""Provider-side corruption of catalog part numbers.

Provider files describe the same physical products with real-world mess:
different case, different separator conventions, occasional typos and
decorative suffixes. The corruption model is deliberately gentle on the
*informative* structure (series codes survive most of the time — they are
what providers copy carefully) and harsher on serials, mirroring why the
paper's rules work on provider data at all.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass

from repro.datagen import names
from repro.datagen.grammar import SEPARATORS

_SPLIT_RE = re.compile(r"([^0-9a-zA-Z]+)")


class CorruptionError(ValueError):
    """Raised for invalid corruption configurations."""


@dataclass(frozen=True, slots=True)
class CorruptionConfig:
    """Per-part-number corruption probabilities."""

    p_separator_swap: float = 0.35
    p_case_change: float = 0.30
    p_typo: float = 0.06
    p_drop_segment: float = 0.04
    p_suffix: float = 0.15

    def __post_init__(self) -> None:
        for name in (
            "p_separator_swap",
            "p_case_change",
            "p_typo",
            "p_drop_segment",
            "p_suffix",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise CorruptionError(f"{name} must be a probability, got {value}")


class Corruptor:
    """Applies the corruption model with a caller-provided RNG.

    >>> corruptor = Corruptor(CorruptionConfig())
    >>> corruptor.corrupt("CRCW0805-10K-4722", rng)
    'crcw0805.10k.4723'
    """

    def __init__(self, config: CorruptionConfig | None = None) -> None:
        self.config = config or CorruptionConfig()

    def corrupt(self, part_number: str, rng: random.Random) -> str:
        """Return the provider's rendition of *part_number*."""
        config = self.config
        pieces = _SPLIT_RE.split(part_number)
        segments = pieces[0::2]
        separators = pieces[1::2]

        if len(segments) > 2 and rng.random() < config.p_drop_segment:
            # drop a random *serial-looking* segment (never the first —
            # providers keep the leading series code)
            victim = rng.randrange(1, len(segments))
            del segments[victim]
            if separators:
                del separators[min(victim - 1, len(separators) - 1)]

        if rng.random() < config.p_typo:
            index = rng.randrange(len(segments))
            segment = segments[index]
            if segment:
                pos = rng.randrange(len(segment))
                replacement = rng.choice("0123456789abcdefghijklmnopqrstuvwxyz")
                segments[index] = segment[:pos] + replacement + segment[pos + 1:]

        if rng.random() < config.p_suffix:
            segments.append(rng.choice(names.PROVIDER_SUFFIXES))
            separators.append(rng.choice(SEPARATORS))

        if rng.random() < config.p_separator_swap:
            swap = rng.choice(SEPARATORS)
            separators = [swap] * len(separators)

        rebuilt = segments[0]
        for separator, segment in zip(separators, segments[1:]):
            rebuilt += separator + segment

        if rng.random() < config.p_case_change:
            rebuilt = rebuilt.upper() if rng.random() < 0.5 else rebuilt.lower()
        return rebuilt
