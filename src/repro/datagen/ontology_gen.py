"""Generate a product ontology with exact class/leaf counts.

The paper's ontology has 566 classes of which 226 are leaves — i.e. 340
internal classes, a *deep* taxonomy (more internal nodes than leaves).
:func:`generate_hierarchy` builds such a tree for any valid (classes,
leaves) pair:

1. build an internal skeleton of ``n_internal`` nodes by breadth-first
   fanout, choosing the largest fanout whose childless-node count does
   not exceed ``n_leaves`` (falls back to a chain, fanout 1);
2. attach one leaf to every childless skeleton node (so every internal
   node really is internal), then distribute the remaining leaves
   round-robin over the skeleton bottom.
"""

from __future__ import annotations

import random
import re
from typing import List, Sequence, Tuple

from repro.datagen import names
from repro.datagen.config import CatalogConfig, ConfigError
from repro.ontology.model import Ontology
from repro.rdf.namespace import Namespace
from repro.rdf.terms import IRI

#: Namespace of all generated catalog resources.
CATALOG = Namespace("http://example.org/catalog/")


def _skeleton_childless(n_internal: int, fanout: int) -> int:
    """How many childless nodes a BFS skeleton of that fanout has."""
    if n_internal <= 1:
        return n_internal
    parents_needed = 0
    remaining = n_internal - 1  # children to place under earlier nodes
    placed = 1
    index = 0
    children_of: List[int] = [0]
    while remaining > 0:
        take = min(fanout, remaining)
        children_of[index] = take
        remaining -= take
        placed += take
        children_of.extend([0] * take)
        index += 1
    return sum(1 for c in children_of if c == 0)


def _build_skeleton(n_internal: int, fanout: int) -> List[int]:
    """Return parent indexes: parent[i] for node i (node 0 = root)."""
    parent = [-1]
    remaining = n_internal - 1
    frontier = 0
    while remaining > 0:
        take = min(fanout, remaining)
        for _ in range(take):
            parent.append(frontier)
        remaining -= take
        frontier += 1
    return parent


def generate_hierarchy(n_classes: int, n_leaves: int) -> Tuple[List[int], List[bool]]:
    """Build a tree with exactly *n_classes* nodes, *n_leaves* leaves.

    Returns ``(parent, is_leaf)`` where ``parent[i]`` is the parent index
    of node ``i`` (root has -1). Internal nodes come first (indexes
    ``0..n_internal-1``), then leaf nodes.
    """
    if n_leaves >= n_classes or n_leaves < 1:
        raise ConfigError(
            f"invalid hierarchy spec: {n_classes} classes / {n_leaves} leaves"
        )
    n_internal = n_classes - n_leaves

    fanout = 1
    for candidate in (6, 5, 4, 3, 2):
        if _skeleton_childless(n_internal, candidate) <= n_leaves:
            fanout = candidate
            break

    parent = _build_skeleton(n_internal, fanout)
    children_count = [0] * n_internal
    for node, par in enumerate(parent):
        if par >= 0:
            children_count[par] += 1

    childless = [i for i in range(n_internal) if children_count[i] == 0]
    assert len(childless) <= n_leaves, "fanout selection violated its invariant"

    is_leaf = [False] * n_internal
    attach_order: List[int] = list(childless)
    extra = n_leaves - len(childless)
    # distribute surplus leaves round-robin over the skeleton bottom
    # (childless first, then deepest internal nodes)
    pool = childless if childless else list(range(n_internal))
    i = 0
    while extra > 0:
        attach_order.append(pool[i % len(pool)])
        i += 1
        extra -= 1

    for host in attach_order:
        parent.append(host)
        is_leaf.append(True)

    assert len(parent) == n_classes
    assert sum(is_leaf) == n_leaves
    return parent, is_leaf


_SLUG_RE = re.compile(r"[^0-9A-Za-z]+")


def _slug(name: str) -> str:
    return _SLUG_RE.sub("_", name).strip("_")


def _internal_name(index: int, depth: int, rng: random.Random) -> str:
    if index == 0:
        return "Electronic Component"
    if depth == 1 and index - 1 < len(names.FAMILY_NAMES):
        return names.FAMILY_NAMES[index - 1]
    qualifier = names.QUALIFIERS[(index * 7) % len(names.QUALIFIERS)]
    family = names.FAMILY_NAMES[index % len(names.FAMILY_NAMES)]
    return f"{qualifier} {family} {index}"


def _leaf_name(leaf_index: int) -> str:
    if leaf_index < len(names.SEED_LEAF_NAMES):
        return names.SEED_LEAF_NAMES[leaf_index]
    family = names.FAMILY_NAMES[leaf_index % len(names.FAMILY_NAMES)]
    qualifier = names.QUALIFIERS[(leaf_index * 5) % len(names.QUALIFIERS)]
    singular = family.rstrip("s")
    return f"{qualifier} {singular} {leaf_index}"


def generate_product_ontology(config: CatalogConfig) -> Tuple[Ontology, List[IRI]]:
    """Build the ontology; return it plus the leaf class IRIs in order.

    Naming is deterministic given the config seed. Leaf IRIs are returned
    in leaf-index order — the grammar assigns Zipf ranks over this list.
    """
    rng = random.Random(config.seed + 101)
    parent, is_leaf = generate_hierarchy(config.n_classes, config.n_leaves)

    depths = [0] * len(parent)
    for node in range(1, len(parent)):
        depths[node] = depths[parent[node]] + 1

    onto = Ontology(name="synthetic-electronics")
    iris: List[IRI] = []
    leaf_iris: List[IRI] = []
    leaf_counter = 0
    used_slugs: set[str] = set()
    for node, par in enumerate(parent):
        if is_leaf[node]:
            label = _leaf_name(leaf_counter)
            leaf_counter += 1
        else:
            label = _internal_name(node, depths[node], rng)
        slug = _slug(label)
        if slug in used_slugs:
            slug = f"{slug}_{node}"
        used_slugs.add(slug)
        iri = CATALOG.term("class/" + slug)
        iris.append(iri)
        onto.add_class(iri, label=label)
        if is_leaf[node]:
            leaf_iris.append(iri)
        if par >= 0:
            onto.add_subclass(iri, iris[par])

    return onto, leaf_iris
