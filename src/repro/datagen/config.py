"""Configuration of the synthetic catalog generator.

The defaults are calibrated (analytically, then empirically — see
EXPERIMENTS.md) so that the Thales-scale preset lands in the paper's
ballpark: ~7.8k distinct segments / ~26k occurrences over TS, ~68
frequent classes, ~144 rules at ``th = 0.002``, with the Table 1 shape.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


class ConfigError(ValueError):
    """Raised for inconsistent generator configurations."""


@dataclass(frozen=True, slots=True)
class CatalogConfig:
    """Knobs of the synthetic catalog.

    Structure:

    * ``n_classes`` / ``n_leaves`` — ontology size (paper: 566 / 226);
    * ``n_links`` — |TS|, expert reconciliations (paper: 10 265);
    * ``catalog_size`` — |S_L|; the paper's catalog has millions of
      instances, the default keeps laptop benches snappy while leaving
      the TS a strict subset;
    * ``class_zipf_s`` — skew of the class-size distribution; 1.1 yields
      ~68 classes with more than 20 TS instances;

    Segment mix (per part number):

    * ``n_indicative_leaves`` — leaves owning dedicated series codes
      (paper found interesting segments for 16 classes);
    * ``codes_per_class`` — (min, max) dedicated codes per such leaf
      (bigger classes get the max, smaller ones the min);
    * ``p_series`` — probability an item of an indicative leaf carries
      one of its series codes;
    * ``p_leaky_code`` / ``p_stray_code`` — a leaky code occasionally
      strays into other classes' part numbers, moving its rule from the
      confidence-1 band into [0.8, 1) — the generator's source of
      high-but-imperfect rules;
    * ``n_unit_families`` — unit-vocabulary families; leaves join family
      ``rank mod n``, so each family is dominated by its biggest member
      (mid-confidence rules);
    * ``n_unitless_top`` — the biggest classes carry no unit segments,
      keeping the mid-band rules pointed at smaller classes (the paper's
      average lift exceeds 20 in *every* confidence band);
    * ``p_unit`` — probability of a family unit segment;
    * ``p_value`` / ``p_value_family_bias`` — probability of a shared
      value segment, and how often it is drawn from the leaf family's
      slice of the pool rather than globally (low-confidence rules);
    * ``value_pool`` / ``values_per_family`` / ``value_zipf_s`` —
      shared-value vocabulary shape;
    * ``serial_pool`` — serial vocabulary size (drives the distinct-
      segment count); a second serial appears with ``p_second_serial``.
    """

    # structure
    n_classes: int = 566
    n_leaves: int = 226
    n_links: int = 10265
    catalog_size: int = 25000
    class_zipf_s: float = 1.1
    # segment mix (defaults calibrated against the paper's §5 statistics;
    # see EXPERIMENTS.md for the calibration record)
    n_indicative_leaves: int = 18
    codes_per_class: tuple[int, int] = (2, 7)
    p_series: float = 0.60
    p_leaky_code: float = 0.22
    p_stray_code: float = 0.025
    n_unit_families: int = 16
    n_unitless_top: int = 4
    p_unit: float = 0.42
    p_value: float = 0.50
    p_value_family_bias: float = 0.35
    value_pool: int = 800
    values_per_family: int = 6
    value_zipf_s: float = 1.6
    serial_pool: int = 8000
    p_second_serial: float = 0.35
    # misc
    seed: int = 20120326  # the workshop date

    def __post_init__(self) -> None:
        if self.n_leaves >= self.n_classes:
            raise ConfigError("n_leaves must be smaller than n_classes")
        if self.n_leaves < 1 or self.n_classes < 2:
            raise ConfigError("need at least 2 classes and 1 leaf")
        if self.catalog_size < self.n_links:
            raise ConfigError("catalog must be at least as large as |TS|")
        if self.n_indicative_leaves > self.n_leaves:
            raise ConfigError("cannot have more indicative leaves than leaves")
        low, high = self.codes_per_class
        if not 1 <= low <= high:
            raise ConfigError("codes_per_class must satisfy 1 <= min <= max")
        for name in (
            "p_series",
            "p_leaky_code",
            "p_stray_code",
            "p_unit",
            "p_value",
            "p_value_family_bias",
            "p_second_serial",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be a probability, got {value}")
        if self.n_unit_families < 1 or self.values_per_family < 0:
            raise ConfigError("family parameters must be positive")
        if self.class_zipf_s < 0 or self.value_zipf_s < 0:
            raise ConfigError("zipf exponents must be non-negative")
        if self.value_pool < 1 or self.serial_pool < 1:
            raise ConfigError("pools must be positive")

    # ------------------------------------------------------------------
    # presets
    # ------------------------------------------------------------------
    @classmethod
    def thales_like(cls, seed: int = 20120326) -> "CatalogConfig":
        """The paper-scale preset (566 classes, |TS| = 10 265)."""
        return cls(seed=seed)

    @classmethod
    def small(cls, seed: int = 7) -> "CatalogConfig":
        """A fast preset for tests and examples (~1k links)."""
        return cls(
            n_classes=60,
            n_leaves=24,
            n_links=1000,
            catalog_size=2500,
            n_indicative_leaves=6,
            value_pool=120,
            serial_pool=900,
            seed=seed,
        )

    @classmethod
    def tiny(cls, seed: int = 7) -> "CatalogConfig":
        """A minimal preset for unit tests (~200 links)."""
        return cls(
            n_classes=16,
            n_leaves=8,
            n_links=200,
            catalog_size=400,
            n_indicative_leaves=3,
            value_pool=40,
            serial_pool=150,
            seed=seed,
        )

    def with_links(self, n_links: int, catalog_size: int | None = None) -> "CatalogConfig":
        """Copy with a different |TS| (scaling sweeps)."""
        return replace(
            self,
            n_links=n_links,
            catalog_size=max(catalog_size or self.catalog_size, n_links),
        )

    def with_seed(self, seed: int) -> "CatalogConfig":
        """Copy with a different random seed."""
        return replace(self, seed=seed)
