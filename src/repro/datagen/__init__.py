"""Synthetic Thales-like electronic-product catalog generation.

The paper's evaluation data is proprietary (Thales Corporate Service's
catalog: millions of instances, a domain ontology of 566 classes with 226
leaves, and 10 265 expert reconciliations). This package simulates it:

* :func:`generate_hierarchy` / :func:`generate_product_ontology` — a
  product ontology with *exactly* the paper's class counts;
* :class:`PartNumberGrammar` — per-class part-number grammars mixing
  class-indicative series codes ("CRCW0805", "T83"), family unit segments
  ("ohm", "uf", "63v"), shared value segments and per-item serials, at
  calibrated proportions (see DESIGN.md §4);
* :class:`Corruptor` — provider-side noise (case, separators, typos,
  dropped/added segments);
* :class:`ElectronicCatalogGenerator` — the whole package: catalog
  (``S_L``), provider records (``S_E``), expert links (``TS``) and ground
  truth, fully seeded and reproducible.

What the substitution preserves: the learner only sees (value, class)
co-occurrence statistics. The generator's knobs control exactly the
distributions that drive Table 1 — how many classes have dedicated
segments (→ confidence-1 rules), how unit segments are shared inside
product families (→ mid-confidence rules), how heavy the serial/value
noise is (→ support filtering).
"""

from repro.datagen.config import CatalogConfig
from repro.datagen.ontology_gen import generate_hierarchy, generate_product_ontology
from repro.datagen.grammar import PartNumberGrammar, LeafProfile
from repro.datagen.corruption import Corruptor, CorruptionConfig
from repro.datagen.catalog import ElectronicCatalogGenerator, GeneratedCatalog

__all__ = [
    "CatalogConfig",
    "generate_hierarchy",
    "generate_product_ontology",
    "PartNumberGrammar",
    "LeafProfile",
    "Corruptor",
    "CorruptionConfig",
    "ElectronicCatalogGenerator",
    "GeneratedCatalog",
]
