"""The ontology model: classes, labels, disjointness and instance typing.

:class:`Ontology` wraps a :class:`~repro.ontology.hierarchy.ClassHierarchy`
with the services Algorithm 1 and the linking pipeline consume:

* ``classes_of(instance)`` / ``most_specific_classes_of(instance)`` against
  an instance-typing map maintained by :meth:`add_instance`;
* ``instances_of(cls)`` with or without subclass inference — the linking
  subspace of a predicted class `c` is exactly ``instances_of(c)``;
* disjointness bookkeeping used by the logical-filtering baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, Set

from repro.ontology.hierarchy import ClassHierarchy, HierarchyError
from repro.rdf.terms import IRI, Term


class OntologyError(ValueError):
    """Raised on invalid ontology operations (unknown class, bad axiom)."""


@dataclass(frozen=True, slots=True)
class OntClass:
    """A class declaration: IRI plus an optional human-readable label."""

    iri: IRI
    label: str | None = None

    def __str__(self) -> str:
        return self.label or self.iri.local_name


class Ontology:
    """An OWL-lite ontology: classes, subsumption, disjointness, instances.

    >>> onto = Ontology()
    >>> onto.add_class(EX.Resistor, label="Resistor")
    >>> onto.add_subclass(EX.FixedFilm, EX.Resistor)
    >>> onto.add_instance(EX.p1, EX.FixedFilm)
    >>> onto.instances_of(EX.Resistor, include_subclasses=True)
    frozenset({IRI('http://example.org/p1')})
    """

    def __init__(self, name: str | None = None) -> None:
        #: Optional display name of the ontology.
        self.name = name
        self._hierarchy = ClassHierarchy()
        self._declarations: Dict[IRI, OntClass] = {}
        self._disjoint: Dict[IRI, Set[IRI]] = {}
        self._instance_classes: Dict[Term, Set[IRI]] = {}
        self._class_instances: Dict[IRI, Set[Term]] = {}

    # ------------------------------------------------------------------
    # schema construction
    # ------------------------------------------------------------------
    def add_class(self, iri: IRI, label: str | None = None) -> OntClass:
        """Declare a class (idempotent; a later label wins)."""
        self._hierarchy.add_class(iri)
        declared = OntClass(iri, label or self._label_of(iri))
        self._declarations[iri] = declared
        self._disjoint.setdefault(iri, set())
        return declared

    def _label_of(self, iri: IRI) -> str | None:
        existing = self._declarations.get(iri)
        return existing.label if existing else None

    def add_subclass(self, sub: IRI, sup: IRI) -> None:
        """State ``sub rdfs:subClassOf sup``, declaring both as needed."""
        self.add_class(sub)
        self.add_class(sup)
        try:
            self._hierarchy.add_edge(sub, sup)
        except HierarchyError as exc:
            raise OntologyError(str(exc)) from exc

    def add_disjoint(self, a: IRI, b: IRI) -> None:
        """State ``a owl:disjointWith b`` (symmetric)."""
        if a == b:
            raise OntologyError(f"a class cannot be disjoint with itself: {a}")
        self.add_class(a)
        self.add_class(b)
        self._disjoint[a].add(b)
        self._disjoint[b].add(a)

    # ------------------------------------------------------------------
    # schema queries
    # ------------------------------------------------------------------
    @property
    def hierarchy(self) -> ClassHierarchy:
        """The underlying subsumption DAG."""
        return self._hierarchy

    def __contains__(self, iri: IRI) -> bool:
        return iri in self._hierarchy

    def __len__(self) -> int:
        return len(self._hierarchy)

    def classes(self) -> Iterator[OntClass]:
        """Iterate over class declarations."""
        for iri in self._hierarchy.classes():
            yield self._declarations[iri]

    def class_iris(self) -> Iterator[IRI]:
        """Iterate over class IRIs."""
        yield from self._hierarchy.classes()

    def declaration(self, iri: IRI) -> OntClass:
        """Return the :class:`OntClass` for *iri*, raising if unknown."""
        try:
            return self._declarations[iri]
        except KeyError:
            raise OntologyError(f"unknown class: {iri}") from None

    def label(self, iri: IRI) -> str:
        """Human-readable label (falls back to the IRI local name)."""
        return str(self.declaration(iri))

    def leaves(self) -> FrozenSet[IRI]:
        """Leaf classes — where the paper's indicative segments live."""
        return self._hierarchy.leaves()

    def roots(self) -> FrozenSet[IRI]:
        """Top-level classes."""
        return self._hierarchy.roots()

    def is_subclass_of(self, sub: IRI, sup: IRI) -> bool:
        """Reflexive-transitive subsumption test."""
        return self._hierarchy.is_subclass_of(sub, sup)

    def are_disjoint(self, a: IRI, b: IRI) -> bool:
        """Disjointness test, inherited down the hierarchy.

        If ``A owl:disjointWith B`` is stated, every subclass pair
        (A' ⊑ A, B' ⊑ B) is disjoint too.
        """
        if a not in self._hierarchy or b not in self._hierarchy:
            return False
        ups_a = self._hierarchy.ancestors(a) | {a}
        ups_b = self._hierarchy.ancestors(b) | {b}
        for x in ups_a:
            stated = self._disjoint.get(x)
            if stated and stated & ups_b:
                return True
        return False

    def most_specific(self, classes: Iterable[IRI]) -> FrozenSet[IRI]:
        """Filter *classes* down to the most specific ones."""
        return self._hierarchy.most_specific(classes)

    # ------------------------------------------------------------------
    # instances (the A-box)
    # ------------------------------------------------------------------
    def add_instance(self, instance: Term, cls: IRI) -> None:
        """Assert ``instance rdf:type cls``."""
        if cls not in self._hierarchy:
            raise OntologyError(f"unknown class: {cls}")
        self._instance_classes.setdefault(instance, set()).add(cls)
        self._class_instances.setdefault(cls, set()).add(instance)

    def classes_of(self, instance: Term) -> FrozenSet[IRI]:
        """Asserted classes of *instance* (no inference)."""
        return frozenset(self._instance_classes.get(instance, ()))

    def inferred_classes_of(self, instance: Term) -> FrozenSet[IRI]:
        """Asserted classes plus all their superclasses."""
        result: Set[IRI] = set()
        for cls in self._instance_classes.get(instance, ()):
            result.add(cls)
            result.update(self._hierarchy.ancestors(cls))
        return frozenset(result)

    def most_specific_classes_of(self, instance: Term) -> FrozenSet[IRI]:
        """The most specific asserted classes of *instance*."""
        return self._hierarchy.most_specific(self.classes_of(instance))

    def instances_of(self, cls: IRI, include_subclasses: bool = False) -> FrozenSet[Term]:
        """Instances asserted in *cls* (optionally in its subclasses too).

        This is the paper's *linking subspace* for a predicted class.
        """
        if cls not in self._hierarchy:
            raise OntologyError(f"unknown class: {cls}")
        result: Set[Term] = set(self._class_instances.get(cls, ()))
        if include_subclasses:
            for sub in self._hierarchy.descendants(cls):
                result.update(self._class_instances.get(sub, ()))
        return frozenset(result)

    def instances(self) -> Iterator[Term]:
        """Iterate over all typed instances."""
        yield from self._instance_classes

    def instance_count(self) -> int:
        """Number of distinct typed instances."""
        return len(self._instance_classes)

    def __repr__(self) -> str:
        name = f" {self.name!r}" if self.name else ""
        return (
            f"<Ontology{name} classes={len(self)} "
            f"leaves={len(self.leaves())} instances={self.instance_count()}>"
        )
