"""A forward-chaining reasoner for the RDFS subset the paper relies on.

Implemented entailment rules (names follow the RDFS spec where they exist):

* **rdfs9** — ``i rdf:type C`` and ``C rdfs:subClassOf D`` entail
  ``i rdf:type D`` (type inheritance);
* **rdfs11** — transitivity of ``rdfs:subClassOf``;
* **rdfs2** — ``p rdfs:domain C`` and ``s p o`` entail ``s rdf:type C``;
* **rdfs3** — ``p rdfs:range C`` and ``s p o`` entail ``o rdf:type C``
  (only when ``o`` is not a literal);
* **disjointness check** — ``a owl:disjointWith b`` plus an instance typed
  in both raises an inconsistency report rather than inferring new facts.

The reasoner materializes entailments into the graph; it is deliberately
naive (semi-naive iteration to fixpoint) — the ontologies here have a few
hundred classes, so clarity beats sophistication.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set, Tuple

from repro.rdf.graph import Graph
from repro.rdf.namespace import OWL, RDF, RDFS
from repro.rdf.terms import IRI, Literal, Term
from repro.rdf.triples import Triple


@dataclass
class InconsistencyReport:
    """Typing conflicts found against ``owl:disjointWith`` axioms."""

    conflicts: List[Tuple[Term, IRI, IRI]] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        """True when no instance is typed by two disjoint classes."""
        return not self.conflicts

    def __str__(self) -> str:
        if self.consistent:
            return "consistent"
        lines = [
            f"{instance} typed by disjoint classes {a.local_name} / {b.local_name}"
            for instance, a, b in self.conflicts
        ]
        return "; ".join(lines)


class RDFSReasoner:
    """Materializes RDFS entailments in a graph, to fixpoint.

    >>> reasoner = RDFSReasoner()
    >>> added = reasoner.materialize(graph)
    >>> report = reasoner.check_consistency(graph)
    """

    def materialize(self, graph: Graph) -> int:
        """Apply rdfs2/3/9/11 until fixpoint; return #new triples."""
        added_total = 0
        while True:
            new_triples = self._round(graph)
            fresh = graph.add_all(new_triples)
            added_total += fresh
            if fresh == 0:
                return added_total

    def _round(self, graph: Graph) -> List[Triple]:
        out: List[Triple] = []

        # rdfs11: subClassOf transitivity
        sub_edges = [
            (t.subject, t.object)
            for t in graph.triples(None, RDFS.subClassOf, None)
            if isinstance(t.subject, IRI) and isinstance(t.object, IRI)
        ]
        supers: dict[IRI, Set[IRI]] = {}
        for sub, sup in sub_edges:
            supers.setdefault(sub, set()).add(sup)
        for sub, direct in supers.items():
            for mid in list(direct):
                for far in supers.get(mid, ()):
                    if far != sub:
                        out.append(Triple(sub, RDFS.subClassOf, far))

        # rdfs9: type inheritance through subClassOf
        for t in graph.triples(None, RDF.type, None):
            cls = t.object
            if not isinstance(cls, IRI):
                continue
            for sup in supers.get(cls, ()):
                out.append(Triple(t.subject, RDF.type, sup))

        # rdfs2 / rdfs3: domain and range typing
        for dom in graph.triples(None, RDFS.domain, None):
            if not isinstance(dom.object, IRI):
                continue
            prop = dom.subject
            if not isinstance(prop, IRI):
                continue
            for usage in graph.triples(None, prop, None):
                out.append(Triple(usage.subject, RDF.type, dom.object))
        for rng in graph.triples(None, RDFS.range, None):
            if not isinstance(rng.object, IRI):
                continue
            prop = rng.subject
            if not isinstance(prop, IRI):
                continue
            for usage in graph.triples(None, prop, None):
                if not isinstance(usage.object, Literal):
                    out.append(Triple(usage.object, RDF.type, rng.object))

        return out

    def check_consistency(self, graph: Graph) -> InconsistencyReport:
        """Report instances typed by two (stated) disjoint classes.

        Call :meth:`materialize` first if inherited types should count.
        """
        report = InconsistencyReport()
        disjoint_pairs = [
            (t.subject, t.object)
            for t in graph.triples(None, OWL.disjointWith, None)
            if isinstance(t.subject, IRI) and isinstance(t.object, IRI)
        ]
        if not disjoint_pairs:
            return report
        types_of: dict[Term, Set[IRI]] = {}
        for t in graph.triples(None, RDF.type, None):
            if isinstance(t.object, IRI):
                types_of.setdefault(t.subject, set()).add(t.object)
        for instance, classes in types_of.items():
            for a, b in disjoint_pairs:
                if a in classes and b in classes:
                    report.conflicts.append((instance, a, b))
        return report
