"""Load an :class:`~repro.ontology.model.Ontology` from RDF and back.

Recognized vocabulary (the RDFS/OWL subset the paper's setting needs):

* ``c rdf:type owl:Class`` / ``c rdf:type rdfs:Class`` — class declaration;
* ``sub rdfs:subClassOf sup`` — subsumption;
* ``a owl:disjointWith b`` — disjointness;
* ``c rdfs:label "..."`` — display label;
* ``i rdf:type c`` for non-class ``c`` — instance typing.
"""

from __future__ import annotations

from repro.ontology.model import Ontology
from repro.rdf.graph import Graph
from repro.rdf.namespace import OWL, RDF, RDFS
from repro.rdf.terms import IRI, Literal
from repro.rdf.triples import Triple


def ontology_from_graph(graph: Graph, name: str | None = None) -> Ontology:
    """Build an ontology from the RDFS/OWL triples in *graph*.

    Typing triples whose object turns out to be a declared class become
    instance assertions; ``rdf:type owl:Class`` etc. become declarations.
    """
    onto = Ontology(name=name)

    class_iris = set()
    for marker in (OWL.Class, RDFS.Class):
        for triple in graph.triples(None, RDF.type, marker):
            if isinstance(triple.subject, IRI):
                class_iris.add(triple.subject)
    # subClassOf implies both sides are classes even without declarations
    for triple in graph.triples(None, RDFS.subClassOf, None):
        if isinstance(triple.subject, IRI):
            class_iris.add(triple.subject)
        if isinstance(triple.object, IRI):
            class_iris.add(triple.object)
    for triple in graph.triples(None, OWL.disjointWith, None):
        if isinstance(triple.subject, IRI):
            class_iris.add(triple.subject)
        if isinstance(triple.object, IRI):
            class_iris.add(triple.object)

    for cls in class_iris:
        label_term = graph.value(cls, RDFS.label)
        label = label_term.lexical if isinstance(label_term, Literal) else None
        onto.add_class(cls, label=label)

    for triple in graph.triples(None, RDFS.subClassOf, None):
        if isinstance(triple.subject, IRI) and isinstance(triple.object, IRI):
            onto.add_subclass(triple.subject, triple.object)

    for triple in graph.triples(None, OWL.disjointWith, None):
        if isinstance(triple.subject, IRI) and isinstance(triple.object, IRI):
            onto.add_disjoint(triple.subject, triple.object)

    for triple in graph.triples(None, RDF.type, None):
        obj = triple.object
        if isinstance(obj, IRI) and obj in onto and obj not in (OWL.Class, RDFS.Class):
            onto.add_instance(triple.subject, obj)

    return onto


def ontology_to_graph(onto: Ontology) -> Graph:
    """Serialize the schema and instance assertions of *onto* as RDF."""
    graph = Graph()
    for declared in onto.classes():
        graph.add(Triple(declared.iri, RDF.type, OWL.Class))
        if declared.label:
            graph.add(Triple(declared.iri, RDFS.label, Literal(declared.label)))
        for parent in onto.hierarchy.parents(declared.iri):
            graph.add(Triple(declared.iri, RDFS.subClassOf, parent))
    emitted_disjoint = set()
    for declared in onto.classes():
        for other in onto.class_iris():
            pair = tuple(sorted((declared.iri.value, other.value)))
            if pair in emitted_disjoint or declared.iri == other:
                continue
            # only serialize directly stated axioms, not inherited ones:
            # we over-approximate by checking are_disjoint on roots of the
            # statement, which is acceptable for round-tripping generated
            # ontologies whose axioms are stated at the top level.
            if other in onto._disjoint.get(declared.iri, ()):  # noqa: SLF001
                graph.add(Triple(declared.iri, OWL.disjointWith, other))
                emitted_disjoint.add(pair)
    for instance in onto.instances():
        for cls in onto.classes_of(instance):
            graph.add(Triple(instance, RDF.type, cls))
    return graph
