"""Subsumption hierarchy: a DAG of classes under ``rdfs:subClassOf``.

The hierarchy is kept acyclic (cycle attempts raise), supports multiple
inheritance, and precomputes nothing — ancestor/descendant queries are
BFS traversals with memoization that is invalidated on mutation, which is
plenty fast for ontologies of a few thousand classes (the paper's has 566).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, Iterator, Set

from repro.rdf.terms import IRI


class HierarchyError(ValueError):
    """Raised on structurally invalid hierarchy mutations (e.g. cycles)."""


class ClassHierarchy:
    """A DAG over class IRIs with subsumption queries.

    Edges point child -> parent (``add_edge(sub, sup)`` states
    ``sub rdfs:subClassOf sup``).
    """

    def __init__(self) -> None:
        self._parents: Dict[IRI, Set[IRI]] = {}
        self._children: Dict[IRI, Set[IRI]] = {}
        self._ancestor_cache: Dict[IRI, FrozenSet[IRI]] = {}
        self._descendant_cache: Dict[IRI, FrozenSet[IRI]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_class(self, cls: IRI) -> None:
        """Register *cls* as a node (idempotent)."""
        self._parents.setdefault(cls, set())
        self._children.setdefault(cls, set())

    def add_edge(self, sub: IRI, sup: IRI) -> None:
        """State ``sub rdfs:subClassOf sup``; reject self-loops and cycles."""
        if sub == sup:
            raise HierarchyError(f"self-subsumption is not allowed: {sub}")
        self.add_class(sub)
        self.add_class(sup)
        if self.is_subclass_of(sup, sub):
            raise HierarchyError(
                f"adding {sub} subClassOf {sup} would create a cycle"
            )
        self._parents[sub].add(sup)
        self._children[sup].add(sub)
        self._ancestor_cache.clear()
        self._descendant_cache.clear()

    # ------------------------------------------------------------------
    # membership / basic structure
    # ------------------------------------------------------------------
    def __contains__(self, cls: IRI) -> bool:
        return cls in self._parents

    def __len__(self) -> int:
        return len(self._parents)

    def classes(self) -> Iterator[IRI]:
        """Iterate over all class IRIs."""
        yield from self._parents

    def parents(self, cls: IRI) -> FrozenSet[IRI]:
        """Direct superclasses of *cls*."""
        self._require(cls)
        return frozenset(self._parents[cls])

    def children(self, cls: IRI) -> FrozenSet[IRI]:
        """Direct subclasses of *cls*."""
        self._require(cls)
        return frozenset(self._children[cls])

    def roots(self) -> FrozenSet[IRI]:
        """Classes with no superclass."""
        return frozenset(c for c, ps in self._parents.items() if not ps)

    def leaves(self) -> FrozenSet[IRI]:
        """Classes with no subclass — the paper's "leaves of the ontology"."""
        return frozenset(c for c, ch in self._children.items() if not ch)

    def is_leaf(self, cls: IRI) -> bool:
        """True when *cls* has no subclass."""
        self._require(cls)
        return not self._children[cls]

    def _require(self, cls: IRI) -> None:
        if cls not in self._parents:
            raise HierarchyError(f"unknown class: {cls}")

    # ------------------------------------------------------------------
    # transitive queries
    # ------------------------------------------------------------------
    def ancestors(self, cls: IRI) -> FrozenSet[IRI]:
        """All strict superclasses of *cls* (transitive closure)."""
        self._require(cls)
        cached = self._ancestor_cache.get(cls)
        if cached is not None:
            return cached
        result = self._closure(cls, self._parents)
        self._ancestor_cache[cls] = result
        return result

    def descendants(self, cls: IRI) -> FrozenSet[IRI]:
        """All strict subclasses of *cls* (transitive closure)."""
        self._require(cls)
        cached = self._descendant_cache.get(cls)
        if cached is not None:
            return cached
        result = self._closure(cls, self._children)
        self._descendant_cache[cls] = result
        return result

    @staticmethod
    def _closure(start: IRI, edges: Dict[IRI, Set[IRI]]) -> FrozenSet[IRI]:
        seen: Set[IRI] = set()
        queue = deque(edges[start])
        while queue:
            node = queue.popleft()
            if node in seen:
                continue
            seen.add(node)
            queue.extend(edges[node])
        return frozenset(seen)

    def is_subclass_of(self, sub: IRI, sup: IRI) -> bool:
        """Reflexive-transitive subsumption test (``sub ⊑ sup``)."""
        if sub == sup:
            return sub in self._parents
        if sub not in self._parents or sup not in self._parents:
            return False
        return sup in self.ancestors(sub)

    def depth(self, cls: IRI) -> int:
        """Longest path from a root down to *cls* (roots have depth 0)."""
        self._require(cls)
        best = 0
        stack = [(cls, 0)]
        seen_at: Dict[IRI, int] = {}
        while stack:
            node, d = stack.pop()
            if seen_at.get(node, -1) >= d:
                continue
            seen_at[node] = d
            best = max(best, d)
            for parent in self._parents[node]:
                stack.append((parent, d + 1))
        return best

    def most_specific(self, classes: Iterable[IRI]) -> FrozenSet[IRI]:
        """Drop every class that subsumes another class of the input.

        For an instance typed ``{Component, Resistor, FixedFilmResistor}``
        this returns ``{FixedFilmResistor}`` — the paper computes class
        frequency only on such most-specific classes.
        """
        pool = {c for c in classes if c in self._parents}
        redundant: Set[IRI] = set()
        for cls in pool:
            redundant.update(self.ancestors(cls) & pool)
        return frozenset(pool - redundant)

    def least_common_subsumers(self, a: IRI, b: IRI) -> FrozenSet[IRI]:
        """Minimal elements of the common (reflexive) ancestors of *a*, *b*.

        Used by the rule-generalization extension: the best superclass to
        lift two sibling rules to.
        """
        self._require(a)
        self._require(b)
        common = (self.ancestors(a) | {a}) & (self.ancestors(b) | {b})
        return self.most_specific(common)

    def topological_order(self) -> list[IRI]:
        """Classes ordered parents-before-children (Kahn's algorithm)."""
        in_degree = {c: len(ps) for c, ps in self._parents.items()}
        queue = deque(sorted((c for c, d in in_degree.items() if d == 0),
                             key=lambda c: c.value))
        order: list[IRI] = []
        while queue:
            node = queue.popleft()
            order.append(node)
            for child in sorted(self._children[node], key=lambda c: c.value):
                in_degree[child] -= 1
                if in_degree[child] == 0:
                    queue.append(child)
        if len(order) != len(self._parents):
            raise HierarchyError("hierarchy contains a cycle")  # defensive
        return order

    def __repr__(self) -> str:
        return (
            f"<ClassHierarchy classes={len(self)} "
            f"roots={len(self.roots())} leaves={len(self.leaves())}>"
        )
