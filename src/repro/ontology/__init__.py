"""Ontology substrate: class model, subsumption hierarchy and reasoning.

The paper assumes the local source ``S_L`` conforms to an OWL ontology
``O_L`` (566 classes, 226 of them leaves, in the Thales evaluation). The
learning algorithm needs exactly these ontology services:

* the set of classes and the subsumption (``rdfs:subClassOf``) hierarchy;
* the *leaves* of the hierarchy and, for a redundantly typed instance,
  its *most specific* classes (Algorithm 1 counts class frequency "only
  for the most specific classes of the ontology O_L");
* disjointness axioms (the related-work filtering baseline of Saïs et
  al. 2009 prunes pairs from disjoint classes);
* the future-work extension generalizes rules along subsumption, which
  needs ancestor/descendant navigation and least common subsumers.
"""

from repro.ontology.model import OntClass, Ontology, OntologyError
from repro.ontology.hierarchy import ClassHierarchy
from repro.ontology.loader import ontology_from_graph, ontology_to_graph
from repro.ontology.reasoner import RDFSReasoner

__all__ = [
    "OntClass",
    "Ontology",
    "OntologyError",
    "ClassHierarchy",
    "ontology_from_graph",
    "ontology_to_graph",
    "RDFSReasoner",
]
