"""The end-to-end linking pipeline: block, compare, match, link.

This is the "linking method" the paper assumes downstream of its space
reduction: candidate pairs from a :class:`BlockingMethod` are compared
with a :class:`RecordComparator` and decided by a matcher; confirmed
matches become ``owl:sameAs`` links.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Protocol, Sequence, Tuple

from repro.linking.blocking import BlockingMethod
from repro.linking.comparators import ComparisonVector, RecordComparator
from repro.linking.evaluation import (
    BlockingQuality,
    MatchingQuality,
    evaluate_blocking,
    evaluate_matching,
)
from repro.linking.matchers import MatchDecision, MatchStatus
from repro.linking.records import RecordStore
from repro.rdf.graph import Graph
from repro.rdf.namespace import OWL
from repro.rdf.terms import Term
from repro.rdf.triples import Triple

Pair = Tuple[Term, Term]


class _Decider(Protocol):
    """Anything with ``decide(vector) -> MatchDecision``."""

    def decide(self, vector: ComparisonVector) -> MatchDecision: ...


@dataclass
class LinkingResult:
    """Everything a linking run produced.

    ``matches`` are confirmed links, ``possible`` the Fellegi-Sunter
    clerical-review band, ``compared`` the number of candidate pairs
    actually compared (the cost the paper's method reduces).
    """

    matches: List[MatchDecision] = field(default_factory=list)
    possible: List[MatchDecision] = field(default_factory=list)
    compared: int = 0
    naive_pairs: int = 0

    @property
    def match_pairs(self) -> List[Pair]:
        """Confirmed (external, local) id pairs."""
        return [
            (d.vector.left.id, d.vector.right.id) for d in self.matches
        ]

    def sameas_graph(self) -> Graph:
        """The confirmed links as an ``owl:sameAs`` RDF graph."""
        graph = Graph(identifier="links")
        for ext_id, local_id in self.match_pairs:
            graph.add(Triple(ext_id, OWL.sameAs, local_id))
        return graph

    def blocking_quality(self, truth: Sequence[Pair]) -> BlockingQuality:
        """Blocking metrics of this run against the expert truth."""
        covered = set(self._candidate_pairs) & set(truth)
        return BlockingQuality(
            candidate_pairs=self.compared,
            naive_pairs=self.naive_pairs,
            true_matches=len(set(truth)),
            matches_covered=len(covered),
        )

    def matching_quality(self, truth: Sequence[Pair]) -> MatchingQuality:
        """Matching metrics of this run against the expert truth."""
        return evaluate_matching(self.match_pairs, truth)

    # internal: candidate pairs kept for blocking_quality
    _candidate_pairs: List[Pair] = field(default_factory=list, repr=False)


class LinkingPipeline:
    """Compose blocking, comparison and matching into one run.

    >>> pipeline = LinkingPipeline(blocking, comparator, matcher)
    >>> result = pipeline.run(external_store, local_store)
    >>> result.matching_quality(truth).f1
    0.97
    """

    def __init__(
        self,
        blocking: BlockingMethod,
        comparator: RecordComparator,
        matcher: _Decider,
        best_match_only: bool = True,
    ) -> None:
        """``best_match_only`` keeps, per external record, only the top-
        scoring confirmed match — the Unique Name Assumption of the
        paper's integration setting (each provider product corresponds to
        at most one catalog product)."""
        self._blocking = blocking
        self._comparator = comparator
        self._matcher = matcher
        self._best_only = best_match_only

    def run(self, external: RecordStore, local: RecordStore) -> LinkingResult:
        """Execute the pipeline over the two stores."""
        result = LinkingResult(naive_pairs=len(external) * len(local))
        best: Dict[Term, MatchDecision] = {}
        for ext_id, local_id in self._blocking.candidate_pairs(external, local):
            left = external.get(ext_id)
            right = local.get(local_id)
            if left is None or right is None:
                continue
            result.compared += 1
            result._candidate_pairs.append((ext_id, local_id))
            decision = self._matcher.decide(self._comparator.compare(left, right))
            if decision.status is MatchStatus.MATCH:
                if self._best_only:
                    incumbent = best.get(ext_id)
                    if incumbent is None or decision.score > incumbent.score:
                        best[ext_id] = decision
                else:
                    result.matches.append(decision)
            elif decision.status is MatchStatus.POSSIBLE:
                result.possible.append(decision)
        if self._best_only:
            result.matches.extend(best.values())
        return result
