"""The end-to-end linking pipeline: block, compare, match, link.

This is the "linking method" the paper assumes downstream of its space
reduction: candidate pairs from a :class:`BlockingMethod` are compared
with a :class:`RecordComparator` and decided by a matcher; confirmed
matches become ``owl:sameAs`` links.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Protocol, Sequence, Tuple

from repro.linking.blocking import BlockingMethod
from repro.linking.comparators import ComparisonVector, RecordComparator
from repro.linking.evaluation import (
    BlockingQuality,
    MatchingQuality,
    evaluate_blocking,
    evaluate_matching,
)
from repro.linking.matchers import MatchDecision
from repro.linking.records import RecordStore
from repro.rdf.graph import Graph
from repro.rdf.namespace import OWL
from repro.rdf.terms import Term
from repro.rdf.triples import Triple

if TYPE_CHECKING:  # engine imports this module; keep the cycle lazy
    from repro.engine.job import JobConfig
    from repro.engine.stats import EngineStats

Pair = Tuple[Term, Term]


class _Decider(Protocol):
    """Anything with ``decide(vector) -> MatchDecision``."""

    def decide(self, vector: ComparisonVector) -> MatchDecision: ...


@dataclass
class LinkingResult:
    """Everything a linking run produced.

    ``matches`` are confirmed links, ``possible`` the Fellegi-Sunter
    clerical-review band, ``compared`` the number of candidate pairs
    actually compared (the cost the paper's method reduces). ``stats``
    carries the engine's execution report (throughput, cache hit rate,
    chunking) when the run went through :class:`repro.engine.LinkingJob`.
    """

    matches: List[MatchDecision] = field(default_factory=list)
    possible: List[MatchDecision] = field(default_factory=list)
    compared: int = 0
    naive_pairs: int = 0
    stats: "EngineStats | None" = None

    @property
    def match_pairs(self) -> List[Pair]:
        """Confirmed (external, local) id pairs."""
        return [
            (d.vector.left.id, d.vector.right.id) for d in self.matches
        ]

    def sameas_graph(self) -> Graph:
        """The confirmed links as an ``owl:sameAs`` RDF graph."""
        graph = Graph(identifier="links")
        for ext_id, local_id in self.match_pairs:
            graph.add(Triple(ext_id, OWL.sameAs, local_id))
        return graph

    def blocking_quality(self, truth: Sequence[Pair]) -> BlockingQuality:
        """Blocking metrics of this run against the expert truth."""
        covered = set(self._candidate_pairs) & set(truth)
        return BlockingQuality(
            candidate_pairs=self.compared,
            naive_pairs=self.naive_pairs,
            true_matches=len(set(truth)),
            matches_covered=len(covered),
        )

    def matching_quality(self, truth: Sequence[Pair]) -> MatchingQuality:
        """Matching metrics of this run against the expert truth."""
        return evaluate_matching(self.match_pairs, truth)

    # internal: candidate pairs kept for blocking_quality
    _candidate_pairs: List[Pair] = field(default_factory=list, repr=False)

    @property
    def candidate_pairs(self) -> List[Pair]:
        """The candidate pairs actually compared, in comparison order."""
        return list(self._candidate_pairs)


class LinkingPipeline:
    """Compose blocking, comparison and matching into one run.

    A thin facade over :class:`repro.engine.LinkingJob` — the chunked
    batch engine that also offers parallel executors (including the
    block-parallel ``shard`` mode) and similarity caching. Use the job
    directly for throughput control; use the pipeline when you just
    want the result, optionally with an engine ``config``. The result
    is executor-independent, so the facade defaults to serial.

    >>> pipeline = LinkingPipeline(blocking, comparator, matcher)
    >>> result = pipeline.run(external_store, local_store)
    >>> result.matching_quality(truth).f1
    0.97
    """

    def __init__(
        self,
        blocking: BlockingMethod,
        comparator: RecordComparator,
        matcher: _Decider,
        best_match_only: bool = True,
        config: "JobConfig | None" = None,
    ) -> None:
        """``best_match_only`` keeps, per external record, only the top-
        scoring confirmed match — the Unique Name Assumption of the
        paper's integration setting (each provider product corresponds to
        at most one catalog product). ``config`` overrides the engine
        configuration (its ``best_match_only`` is replaced by the
        pipeline's)."""
        self._blocking = blocking
        self._comparator = comparator
        self._matcher = matcher
        self._best_only = best_match_only
        self._config = config

    def run(self, external: RecordStore, local: RecordStore) -> LinkingResult:
        """Execute the pipeline over the two stores."""
        import dataclasses

        from repro.engine.job import JobConfig, LinkingJob

        if self._config is not None:
            config = dataclasses.replace(
                self._config, best_match_only=self._best_only
            )
        else:
            config = JobConfig(executor="serial", best_match_only=self._best_only)
        job = LinkingJob(self._blocking, self._comparator, self._matcher, config)
        return job.run(external, local)
