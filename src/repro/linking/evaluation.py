"""Evaluation metrics for blocking and matching.

Blocking quality (the record-linkage survey standards):

* **reduction ratio** — fraction of the naive space pruned;
* **pairs completeness** — fraction of true matches surviving blocking
  (recall of the candidate set);
* **pairs quality** — fraction of candidates that are true matches
  (precision of the candidate set).

Matching quality: precision / recall / F1 of declared links against the
expert truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Set, Tuple

from repro.rdf.terms import Term

Pair = Tuple[Term, Term]


@dataclass(frozen=True, slots=True)
class BlockingQuality:
    """Candidate-set quality against ground truth."""

    candidate_pairs: int
    naive_pairs: int
    true_matches: int
    matches_covered: int

    @property
    def reduction_ratio(self) -> float:
        """``1 - candidates / naive``."""
        if self.naive_pairs == 0:
            return 0.0
        return 1.0 - self.candidate_pairs / self.naive_pairs

    @property
    def pairs_completeness(self) -> float:
        """``covered matches / true matches`` (blocking recall)."""
        if self.true_matches == 0:
            return 1.0
        return self.matches_covered / self.true_matches

    @property
    def pairs_quality(self) -> float:
        """``covered matches / candidates`` (blocking precision)."""
        if self.candidate_pairs == 0:
            return 0.0
        return self.matches_covered / self.candidate_pairs

    def __str__(self) -> str:
        return (
            f"RR={self.reduction_ratio:.4f} "
            f"PC={self.pairs_completeness:.4f} "
            f"PQ={self.pairs_quality:.4f} "
            f"({self.candidate_pairs}/{self.naive_pairs} pairs)"
        )


@dataclass(frozen=True, slots=True)
class MatchingQuality:
    """Declared-link quality against ground truth."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 1.0 when nothing was declared."""
        declared = self.true_positives + self.false_positives
        if declared == 0:
            return 1.0
        return self.true_positives / declared

    @property
    def recall(self) -> float:
        """TP / (TP + FN); 1.0 when there is nothing to find."""
        actual = self.true_positives + self.false_negatives
        if actual == 0:
            return 1.0
        return self.true_positives / actual

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        if p + r == 0.0:
            return 0.0
        return 2 * p * r / (p + r)

    def __str__(self) -> str:
        return (
            f"P={self.precision:.4f} R={self.recall:.4f} F1={self.f1:.4f} "
            f"(TP={self.true_positives} FP={self.false_positives} "
            f"FN={self.false_negatives})"
        )


def evaluate_blocking(
    candidates: Iterable[Pair],
    truth: Iterable[Pair],
    naive_pairs: int,
) -> BlockingQuality:
    """Score a candidate set against the true match pairs."""
    candidate_set: Set[Pair] = set(candidates)
    truth_set: Set[Pair] = set(truth)
    return BlockingQuality(
        candidate_pairs=len(candidate_set),
        naive_pairs=naive_pairs,
        true_matches=len(truth_set),
        matches_covered=len(candidate_set & truth_set),
    )


def evaluate_matching(
    declared: Iterable[Pair],
    truth: Iterable[Pair],
) -> MatchingQuality:
    """Score declared links against the true match pairs."""
    declared_set: Set[Pair] = set(declared)
    truth_set: Set[Pair] = set(truth)
    return MatchingQuality(
        true_positives=len(declared_set & truth_set),
        false_positives=len(declared_set - truth_set),
        false_negatives=len(truth_set - declared_set),
    )
