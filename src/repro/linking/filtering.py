"""Ontology-based pair filtering (the related-work baseline of [10]).

Paper §2: "When the data are in conformity with an ontology, filtering
method can be defined using ontology semantic. In [Saïs, Pernelle &
Rousset 2009], class disjunctions are used to reduce the reconciliation
space — but such approaches cannot be used when the data that will be
integrated are not described using the ontology vocabulary."

:class:`DisjointnessFiltering` implements that baseline: it *requires*
the external items to be typed with ontology classes (exactly the
assumption the paper's method removes) and prunes every candidate pair
whose classes are declared disjoint. It composes with any other
blocking method as a post-filter.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.linking.blocking import BlockingMethod, CandidatePair, FullIndex
from repro.linking.records import RecordStore
from repro.ontology.model import Ontology
from repro.rdf.graph import Graph
from repro.rdf.namespace import RDF
from repro.rdf.terms import IRI, Term


class DisjointnessFiltering(BlockingMethod):
    """Prune pairs whose stated classes are disjoint in the ontology.

    ``typing_graph`` must contain ``rdf:type`` triples for the external
    items (the method is inapplicable otherwise — which is the paper's
    point); local items are typed through the ontology's instance map.

    >>> filtering = DisjointnessFiltering(ontology, external_types_graph)
    >>> pairs = filtering.candidate_pairs(external, local)
    """

    def __init__(
        self,
        ontology: Ontology,
        typing_graph: Graph,
        inner: BlockingMethod | None = None,
    ) -> None:
        """Wrap *inner* (default: the full cartesian index) with the
        disjointness filter."""
        self._ontology = ontology
        self._typing = typing_graph
        self._inner = inner or FullIndex()

    def _external_classes(self, item: Term) -> frozenset[IRI]:
        classes = frozenset(
            obj
            for obj in self._typing.objects(item, RDF.type)
            if isinstance(obj, IRI) and obj in self._ontology
        )
        return classes

    def candidate_pairs(
        self, external: RecordStore, local: RecordStore
    ) -> Iterator[CandidatePair]:
        classes_cache: Dict[Term, frozenset[IRI]] = {}
        local_classes_cache: Dict[Term, frozenset[IRI]] = {}
        for ext_id, local_id in self._inner.candidate_pairs(external, local):
            ext_classes = classes_cache.get(ext_id)
            if ext_classes is None:
                ext_classes = self._external_classes(ext_id)
                classes_cache[ext_id] = ext_classes
            if not ext_classes:
                # untyped external item: the filter cannot apply; the
                # pair survives (no information = no pruning)
                yield ext_id, local_id
                continue
            local_classes = local_classes_cache.get(local_id)
            if local_classes is None:
                local_classes = self._ontology.classes_of(local_id)
                local_classes_cache[local_id] = local_classes
            if self._pair_is_consistent(ext_classes, local_classes):
                yield ext_id, local_id

    def _pair_is_consistent(
        self, ext_classes: frozenset[IRI], local_classes: frozenset[IRI]
    ) -> bool:
        """A pair survives unless *every* class combination is disjoint.

        (Items can be multi-typed; one compatible combination suffices
        for the pair to remain a reconciliation candidate.)
        """
        if not local_classes:
            return True
        for ext_cls in ext_classes:
            for local_cls in local_classes:
                if not self._ontology.are_disjoint(ext_cls, local_cls):
                    return True
        return False
