"""Records: a flat field view over RDF-described items.

Blocking and matching literature speaks in *records with fields*; RDF
sources speak in triples. :class:`RecordStore` bridges the two: given a
graph and a field map (field name -> property IRI), every subject with at
least one mapped value becomes a :class:`Record`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Sequence

from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Literal, Term


@dataclass(frozen=True, slots=True)
class Record:
    """An item with named textual fields.

    Multi-valued fields keep every value; :meth:`value` returns the first
    (deterministically sorted) one, which is what key-based blocking
    wants.
    """

    id: Term
    fields: Mapping[str, tuple[str, ...]]

    def value(self, field_name: str, default: str = "") -> str:
        """First value of the field, or *default* when absent."""
        values = self.fields.get(field_name)
        return values[0] if values else default

    def values(self, field_name: str) -> tuple[str, ...]:
        """All values of the field (empty tuple when absent)."""
        return self.fields.get(field_name, ())

    def __str__(self) -> str:
        parts = ", ".join(f"{k}={v[0]!r}" for k, v in sorted(self.fields.items()) if v)
        return f"Record({self.id}, {parts})"


class RecordStore:
    """A collection of records keyed by item identity.

    >>> store = RecordStore.from_graph(
    ...     graph, {"part_number": EX.partNumber, "maker": EX.manufacturer}
    ... )
    >>> store[EX.p1].value("part_number")
    'CRCW0805-10K'
    """

    def __init__(self, records: Iterable[Record] = ()) -> None:
        self._records: Dict[Term, Record] = {}
        self._version = 0
        for record in records:
            self.add(record)

    @classmethod
    def from_graph(
        cls,
        graph: Graph,
        field_map: Mapping[str, IRI],
        subjects: Iterable[Term] | None = None,
    ) -> "RecordStore":
        """Build records for *subjects* (default: all subjects in graph).

        Values are sorted for determinism; subjects with no mapped value
        are skipped unless explicitly listed in *subjects*, in which case
        they yield records with empty fields (the pipeline still needs to
        account for them).
        """
        store = cls()
        explicit = subjects is not None
        pool = list(subjects) if explicit else list(graph.subjects())
        for subject in pool:
            fields: Dict[str, tuple[str, ...]] = {}
            non_empty = False
            for name, prop in field_map.items():
                values = tuple(sorted(graph.literal_values(subject, prop)))
                fields[name] = values
                if values:
                    non_empty = True
            if non_empty or explicit:
                store.add(Record(id=subject, fields=fields))
        return store

    def add(self, record: Record) -> None:
        """Insert or replace the record with the same id."""
        self._records[record.id] = record
        self._version += 1

    @property
    def version(self) -> int:
        """Mutation counter; shared indexes cache against it."""
        return self._version

    def __getitem__(self, item_id: Term) -> Record:
        return self._records[item_id]

    def get(self, item_id: Term) -> Record | None:
        """Record by id, or ``None``."""
        return self._records.get(item_id)

    def __contains__(self, item_id: Term) -> bool:
        return item_id in self._records

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records.values())

    def ids(self) -> Iterator[Term]:
        """Iterate over record ids."""
        yield from self._records

    def field_names(self) -> frozenset[str]:
        """Union of field names across records."""
        names: set[str] = set()
        for record in self._records.values():
            names.update(record.fields.keys())
        return frozenset(names)

    def __repr__(self) -> str:
        return f"<RecordStore records={len(self)}>"
