"""Data-linking substrate: records, blocking, matching, evaluation.

The paper's contribution *reduces the linking space*; this package hosts
everything around that reduction so the repository is a complete linking
system:

* :class:`Record` / :class:`RecordStore` — a field view over RDF items;
* blocking baselines from the related-work section (§2): standard
  blocking (Jaro 1989), sorted neighbourhood (Yan et al. 2007), bi-gram
  indexing (Baxter et al. 2003), canopy clustering — plus
  :class:`RuleBasedBlocking`, the paper's method adapted to the same
  interface for head-to-head comparison;
* pairwise comparison vectors and matchers (weighted threshold and
  Fellegi-Sunter);
* the end-to-end :class:`LinkingPipeline` producing ``owl:sameAs`` links;
* evaluation metrics for both blocking quality (reduction ratio, pairs
  completeness, pairs quality) and matching quality (P/R/F1).
"""

from repro.linking.records import Record, RecordStore
from repro.linking.blocking import (
    BlockingMethod,
    StandardBlocking,
    SortedNeighbourhood,
    QGramBlocking,
    CanopyBlocking,
    RuleBasedBlocking,
    FullIndex,
)
from repro.linking.filtering import DisjointnessFiltering
from repro.linking.comparators import FieldComparator, ComparisonVector, RecordComparator
from repro.linking.matchers import (
    MatchDecision,
    MatchStatus,
    ThresholdMatcher,
    FellegiSunterMatcher,
)
from repro.linking.pipeline import LinkingPipeline, LinkingResult
from repro.linking.evaluation import (
    BlockingQuality,
    MatchingQuality,
    evaluate_blocking,
    evaluate_matching,
)

__all__ = [
    "Record",
    "RecordStore",
    "BlockingMethod",
    "StandardBlocking",
    "SortedNeighbourhood",
    "QGramBlocking",
    "CanopyBlocking",
    "RuleBasedBlocking",
    "FullIndex",
    "DisjointnessFiltering",
    "FieldComparator",
    "ComparisonVector",
    "RecordComparator",
    "MatchDecision",
    "MatchStatus",
    "ThresholdMatcher",
    "FellegiSunterMatcher",
    "LinkingPipeline",
    "LinkingResult",
    "BlockingQuality",
    "MatchingQuality",
    "evaluate_blocking",
    "evaluate_matching",
]
