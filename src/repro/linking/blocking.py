"""Blocking methods: the related-work baselines plus the paper's method.

Paper §2 surveys exactly these families:

* **standard blocking** — "persons that share the same first five
  characters of their last name belong to the same block" (Jaro);
* **sorted neighbourhood** — sort by a key, slide a fixed window (Yan et
  al.);
* **bi-gram indexing** — "attribute values are converted into sub-strings
  of two characters and sub-lists of all possible permutations are built
  using a threshold", inverted-indexed (Baxter et al.);
* **canopy clustering** — cheap-similarity canopies (classic blocking
  baseline, included for the comparison bench).

:class:`RuleBasedBlocking` adapts the paper's classification rules to the
same ``candidate_pairs`` interface so experiment A3 can compare all of
them on reduction ratio and pairs completeness. :class:`FullIndex` is the
naive ``|S_E| x |S_L|`` cartesian product, the paper's strawman.

Key-driven methods (standard and q-gram blocking) build their candidate
sets from shared :class:`~repro.index.RecordKeyIndex` posting lists —
built once per (store, key derivation) and reused across runs — and
:class:`RuleBasedBlocking` batch-probes the classifier's rule index.
Every method keeps a scan-based reference path behind ``use_index=False``
and the index equivalence tests assert both emit identical candidate
pair sequences.

Every registered method supports the engine's ``shard`` executor
through the per-key block iteration API
(:meth:`BlockingMethod.supports_sharding`,
:meth:`~BlockingMethod.shard_block_sizes`,
:meth:`~BlockingMethod.shard_candidate_pairs`): a process worker draws
only the candidate pairs whose block key its
:class:`~repro.engine.shard.ShardPlan` shard owns, lazily, in-worker.
Each class has its own partitioning argument:

* **standard blocking** shards on its blocking key (block sizes read
  off the shared key index inform the plan's balance); the **full
  index** and **rule-based blocking** shard on the external record id
  (each external record is its own block);
* **q-gram blocking** shards on the expanded sub-list key. One pair can
  co-occur under several keys, so ownership follows the serial dedup
  rule: the pair belongs to the external record's *first* sorted key
  whose posting contains the local record — every other key skips it;
* **sorted-neighbourhood** cuts the sorted order into one contiguous
  position segment per shard; a segment owns the window pairs whose
  *later* position falls inside it and reaches back ``window-1``
  positions (the overlap halo) for pairs straddling its left boundary;
* **canopy blocking** shards on the *local* record: whether a local is
  still in circulation at a center depends only on that local's own
  similarities (it leaves right after the first ``tight`` center's
  sweep), so a worker owning a local replays its whole serial life —
  scan centers in order, emit ``loose`` pairs, stop at the first
  ``tight`` one — with no serial pre-pass at all.

Each rule assigns every pair exactly one owner, so shard outputs merge
back into the exact serial emission order (the engine's byte-identity
guarantee — see :mod:`repro.engine.shard`).
"""

from __future__ import annotations

import dataclasses
import functools
import itertools
import math
import time
from abc import ABC, abstractmethod
from collections import defaultdict
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.core.classifier import RuleClassifier
from repro.core.subspace import LinkingSubspace
from repro.index import IndexStats, shared_record_index
from repro.linking.records import Record, RecordStore
from repro.ontology.model import Ontology
from repro.rdf.graph import Graph
from repro.rdf.terms import Term
from repro.text.normalize import normalize_value
from repro.text.similarity import qgram_cosine_similarity

if TYPE_CHECKING:  # pragma: no cover - typing only (engine imports us)
    from repro.engine.shard import ShardPlan

#: A candidate pair: (external record id, local record id).
CandidatePair = Tuple[Term, Term]

#: A merge group's sort key: the method's encoding of where its pairs
#: sit in the serial emission order — an external-store ordinal for
#: record-keyed methods, tuples for methods whose serial order
#: interleaves records (q-gram's ``(ordinal, key index)``,
#: sorted-neighbourhood's ``(first window start, earlier position,
#: later position)``). Keys of one run must be mutually comparable and
#: each key must be emitted by exactly one shard.
GroupKey = Union[int, Tuple[int, ...]]

#: A sharded candidate pair: (group sort key, external record id, local
#: record id). The sort key lets the engine merge shard outcomes back
#: into the serial comparison order.
ShardedPair = Tuple[GroupKey, Term, Term]


class BlockingMethod(ABC):
    """Produces candidate pairs between an external and a local store."""

    @abstractmethod
    def candidate_pairs(
        self, external: RecordStore, local: RecordStore
    ) -> Iterator[CandidatePair]:
        """Yield (external id, local id) pairs worth comparing."""

    def pair_count(self, external: RecordStore, local: RecordStore) -> int:
        """Number of candidate pairs (materializes the iterator)."""
        return sum(1 for _ in self.candidate_pairs(external, local))

    def index_stats(self) -> IndexStats | None:
        """Index build/probe report of the last run (None when unused).

        Index-backed methods overwrite this after draining
        :meth:`candidate_pairs`; the engine folds it into
        :class:`~repro.engine.stats.EngineStats`.
        """
        return None

    # ------------------------------------------------------------------
    # per-key block iteration (the shard executor's contract)
    # ------------------------------------------------------------------
    def supports_sharding(self) -> bool:
        """Whether this method can decompose candidates by block key.

        True only when the method has an ownership rule that assigns
        every candidate pair to exactly one shard and a sort key that
        restores the serial emission order under the engine's k-way
        merge — the invariants that let :meth:`shard_candidate_pairs`
        split work without duplicating or reordering pairs. Every
        registered method honors them; duck-typed doubles that do not
        keep the default False and the engine degrades ``shard`` to
        ``process``.
        """
        return False

    def shard_block_sizes(
        self, external: RecordStore, local: RecordStore
    ) -> Dict[str, int]:
        """Per-block-key size stats for :class:`ShardPlan` balance.

        May be empty (the plan then balances by stable hash alone);
        must be cheap — standard blocking reads posting lengths off the
        shared record key index rather than re-deriving keys.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support sharded candidate generation"
        )

    def shard_candidate_pairs(
        self,
        external: RecordStore,
        local: RecordStore,
        plan: "ShardPlan",
        shard: int,
    ) -> Iterator[ShardedPair]:
        """Candidate pairs whose block key *plan* assigns to *shard*.

        Pairs are yielded in ascending group-sort-key order, each
        tagged with its key, and within one key in exactly the order
        :meth:`candidate_pairs` would have emitted them — the engine's
        k-way merge then reconstructs the serial comparison order
        exactly.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support sharded candidate generation"
        )


class FullIndex(BlockingMethod):
    """No blocking at all: the naive cartesian product ``|S_E| x |S_L|``."""

    def candidate_pairs(
        self, external: RecordStore, local: RecordStore
    ) -> Iterator[CandidatePair]:
        for ext in external.ids():
            for loc in local.ids():
                yield ext, loc

    def pair_count(self, external: RecordStore, local: RecordStore) -> int:
        """``|S_E| x |S_L|`` directly — no iterator to materialize."""
        return len(external) * len(local)

    def supports_sharding(self) -> bool:
        return True

    def shard_block_sizes(
        self, external: RecordStore, local: RecordStore
    ) -> Dict[str, int]:
        """Empty: every external record's block is uniformly ``|S_L|``,
        so stable hashing alone already balances the plan."""
        return {}

    def shard_candidate_pairs(
        self,
        external: RecordStore,
        local: RecordStore,
        plan: "ShardPlan",
        shard: int,
    ) -> Iterator[ShardedPair]:
        # each external record is its own block, keyed by its id
        local_ids = list(local.ids())
        for ordinal, ext in enumerate(external.ids()):
            if plan.shard_of(str(ext)) != shard:
                continue
            for loc in local_ids:
                yield ordinal, ext, loc


def _prefix_key(field_name: str, length: int, record: Record) -> str:
    """Module-level so ``on_field_prefix`` keys pickle (see there)."""
    return normalize_value(record.value(field_name))[:length]


def _transform_key(
    field_name: str, transform: Callable[[str], str], record: Record
) -> str:
    """Module-level so ``on_field_transform`` keys pickle with their
    transform (see there)."""
    return transform(record.value(field_name))


def _normalized_field_key(field_name: str, record: Record) -> str:
    """Module-level so ``SortedNeighbourhood.on_field`` keys pickle and
    introspect (the work-unit protocol reads the partial's args back)."""
    return normalize_value(record.value(field_name))


class StandardBlocking(BlockingMethod):
    """Exact-key blocking on a derived blocking key.

    ``key`` maps a record to its blocking key (e.g. first five characters
    of a field, or a Soundex code); records with equal non-empty keys land
    in the same block and all cross-source pairs inside a block become
    candidates.

    With ``use_index=True`` and a cache *signature* (set by the
    classmethod constructors), the local store's block index is a shared
    :class:`~repro.index.RecordKeyIndex` — built once, reused by every
    job that blocks the same store the same way. Candidate pairs are
    identical either way.
    """

    def __init__(
        self,
        key: Callable[[Record], str],
        use_index: bool = True,
        signature: str | None = None,
    ) -> None:
        self._key = key
        self._use_index = use_index
        self._signature = signature
        self._last_index_stats: IndexStats | None = None

    @classmethod
    def on_field_prefix(
        cls, field_name: str, length: int = 5, use_index: bool = True
    ) -> "StandardBlocking":
        """The paper's example: same first *length* characters of a field.

        The key is a partial over a module-level function — picklable,
        so the blocking instance survives spawn/forkserver worker
        bringup (the shard executor ships it through pool initargs; a
        closure would break sharding everywhere fork isn't the start
        method).
        """
        key = functools.partial(_prefix_key, field_name, length)
        return cls(key, use_index=use_index, signature=f"prefix:{field_name}:{length}")

    @classmethod
    def on_field_transform(
        cls, field_name: str, transform: Callable[[str], str]
    ) -> "StandardBlocking":
        """Key = ``transform(field value)`` (e.g. a phonetic encoder).

        Arbitrary transforms carry no stable cache signature, so the
        index is rebuilt per run (sharing would risk signature
        collisions between distinct callables). Picklability — and with
        it shard support on spawn platforms — follows the transform's.
        """
        key = functools.partial(_transform_key, field_name, transform)
        return cls(key, signature=None)

    def _keys_for(self, record: Record) -> Iterator[str]:
        key = self._key(record)
        if key:
            yield key

    def index_stats(self) -> IndexStats | None:
        return self._last_index_stats

    def supports_sharding(self) -> bool:
        """Key blocking partitions pairs: one key per external record,
        every pair inside exactly one block."""
        return True

    def _local_blocks(self, local: RecordStore) -> Callable[[str], Iterable[Term]]:
        """Block lookup (key -> local ids in store order), shared-index
        backed when a cache signature allows it."""
        if self._use_index and self._signature is not None:
            index = shared_record_index(local, self._signature, self._keys_for)
            return index.candidates
        blocks: Dict[str, List[Term]] = defaultdict(list)
        for record in local:
            key = self._key(record)
            if key:
                blocks[key].append(record.id)
        return lambda key: blocks.get(key, ())

    def shard_block_sizes(
        self, external: RecordStore, local: RecordStore
    ) -> Dict[str, int]:
        """Local-side block sizes, read off the shared key index.

        Building (or reusing) the index here also warms the per-store
        cache *before* the engine forks its shard workers, so every
        worker inherits the postings instead of rebuilding them.
        """
        if self._use_index and self._signature is not None:
            index = shared_record_index(local, self._signature, self._keys_for)
            return index.key_sizes()
        sizes: Dict[str, int] = {}
        for record in local:
            key = self._key(record)
            if key:
                sizes[key] = sizes.get(key, 0) + 1
        return sizes

    def shard_candidate_pairs(
        self,
        external: RecordStore,
        local: RecordStore,
        plan: "ShardPlan",
        shard: int,
    ) -> Iterator[ShardedPair]:
        lookup = self._local_blocks(local)
        for ordinal, record in enumerate(external):
            key = self._key(record)
            if not key or plan.shard_of(key) != shard:
                continue
            for local_id in lookup(key):
                yield ordinal, record.id, local_id

    def candidate_pairs(
        self, external: RecordStore, local: RecordStore
    ) -> Iterator[CandidatePair]:
        if self._use_index and self._signature is not None:
            yield from self._candidate_pairs_indexed(external, local)
            return
        self._last_index_stats = None
        lookup = self._local_blocks(local)
        for record in external:
            key = self._key(record)
            if not key:
                continue
            for local_id in lookup(key):
                yield record.id, local_id

    def _candidate_pairs_indexed(
        self, external: RecordStore, local: RecordStore
    ) -> Iterator[CandidatePair]:
        assert self._signature is not None
        index = shared_record_index(local, self._signature, self._keys_for)
        probe_seconds = 0.0
        for record in external:
            started = time.perf_counter()
            key = self._key(record)
            matches = list(index.candidates(key)) if key else []
            probe_seconds += time.perf_counter() - started
            for local_id in matches:
                yield record.id, local_id
        index.probed(probe_seconds)
        # per-run report: one-time build cost, this run's probe time
        self._last_index_stats = dataclasses.replace(
            index.stats(), probe_seconds=probe_seconds
        )


class SortedNeighbourhood(BlockingMethod):
    """Sorted-neighbourhood method (merge the sources, slide a window).

    Records of both sources are sorted together by the sorting key; a
    window of ``window_size`` consecutive records moves over the sorted
    list and every external/local pair inside the window becomes a
    candidate — the adaptive variant of Yan et al. is approximated by
    skipping same-source pairs.
    """

    def __init__(self, key: Callable[[Record], str], window_size: int = 5) -> None:
        if window_size < 2:
            raise ValueError(f"window size must be >= 2, got {window_size}")
        self._key = key
        self._window = window_size

    @classmethod
    def on_field(cls, field_name: str, window_size: int = 5) -> "SortedNeighbourhood":
        """Sort by the normalized value of *field_name*.

        The key is a partial over a module-level function — picklable on
        spawn platforms, and introspectable, so the work-unit protocol
        can serialize the blocking configuration for remote workers.
        """
        key = functools.partial(_normalized_field_key, field_name)
        return cls(key, window_size)

    def _tagged(
        self, external: RecordStore, local: RecordStore
    ) -> List[Tuple[str, bool, Term]]:
        """Both sources merged and sorted by (key, id) — the order the
        window slides over. The str(id) tie-break (plus the stable sort
        over external-then-local insertion) keeps the order identical
        across processes, which shard ownership depends on."""
        tagged: List[Tuple[str, bool, Term]] = []
        for record in external:
            tagged.append((self._key(record), True, record.id))
        for record in local:
            tagged.append((self._key(record), False, record.id))
        tagged.sort(key=lambda entry: (entry[0], str(entry[2])))
        return tagged

    def candidate_pairs(
        self, external: RecordStore, local: RecordStore
    ) -> Iterator[CandidatePair]:
        tagged = self._tagged(external, local)
        seen: Set[CandidatePair] = set()
        for start in range(len(tagged)):
            window = tagged[start:start + self._window]
            for (_, is_ext_a, id_a), (_, is_ext_b, id_b) in itertools.combinations(window, 2):
                if is_ext_a == is_ext_b:
                    continue
                pair = (id_a, id_b) if is_ext_a else (id_b, id_a)
                if pair not in seen:
                    seen.add(pair)
                    yield pair

    def supports_sharding(self) -> bool:
        """The sorted order is cut into one contiguous position segment
        per shard. A window pair is identified by its two sorted
        positions; the segment containing the *later* position owns it
        and reaches back ``window-1`` positions (the overlap halo) for
        pairs that straddle its left boundary — every pair has exactly
        one later position, so exactly one owner, and the halo pairs
        are generated once, never twice."""
        return True

    def shard_block_sizes(
        self, external: RecordStore, local: RecordStore
    ) -> Dict[str, int]:
        """Empty: segments are equal position ranges of the sorted
        order assigned directly (segment *i* is shard *i*), so there
        are no block keys for the plan to balance — window load is
        uniform per position by construction."""
        return {}

    def shard_candidate_pairs(
        self,
        external: RecordStore,
        local: RecordStore,
        plan: "ShardPlan",
        shard: int,
    ) -> Iterator[ShardedPair]:
        # Serial emission order: a position pair (a, b) first appears in
        # the window starting at s = max(0, b - window + 1), and within
        # one start the combinations() sweep runs (a, b)-ascending — so
        # (s, a, b) sorts pairs exactly as the serial sweep yields them.
        tagged = self._tagged(external, local)
        count = len(tagged)
        lo = count * shard // plan.shards
        hi = count * (shard + 1) // plan.shards
        owned: List[ShardedPair] = []
        for later in range(lo, hi):
            _, is_ext_b, id_b = tagged[later]
            first_start = max(0, later - self._window + 1)
            for earlier in range(first_start, later):
                _, is_ext_a, id_a = tagged[earlier]
                if is_ext_a == is_ext_b:
                    continue
                ext_id, local_id = (
                    (id_a, id_b) if is_ext_a else (id_b, id_a)
                )
                owned.append(((first_start, earlier, later), ext_id, local_id))
        # the halo scan runs later-position-major; re-sort into serial
        # emission order (only the first window's pairs actually move)
        owned.sort(key=lambda entry: entry[0])
        yield from owned


class QGramBlocking(BlockingMethod):
    """Bi-gram (q-gram) indexing as sketched by Baxter et al.

    Each value is turned into its sorted list of q-grams; sub-lists of
    length ``ceil(len * threshold)`` (all combinations) are generated and
    inserted into an inverted index. Records sharing at least one
    sub-list key become candidates. ``threshold=1.0`` degenerates into
    exact q-gram-set blocking.

    ``max_grams`` caps the combinatorial explosion on long values (the
    classic implementations do the same).

    With ``use_index=True`` the local store's sub-list inverted index is
    a shared :class:`~repro.index.RecordKeyIndex` keyed on the full
    q-gram configuration, so repeated jobs against the same catalog skip
    the rebuild. Candidate pairs are identical to the scan path.
    """

    def __init__(
        self,
        field_name: str,
        q: int = 2,
        threshold: float = 0.8,
        max_grams: int = 12,
        use_index: bool = True,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        if q < 1:
            raise ValueError(f"q must be >= 1, got {q}")
        self._field = field_name
        self._q = q
        self._threshold = threshold
        self._max_grams = max_grams
        self._use_index = use_index
        self._last_index_stats: IndexStats | None = None

    def _keys(self, record: Record) -> List[str]:
        """Sub-list keys of a record, in sorted (deterministic) order.

        Key order drives candidate emission order, which best-match
        tie-breaking downstream depends on — sorted keys keep runs
        byte-identical across processes (hash randomization would
        otherwise reorder a set).
        """
        value = normalize_value(record.value(self._field))
        if not value:
            return []
        grams = sorted(
            {value[i:i + self._q] for i in range(max(1, len(value) - self._q + 1))}
        )[: self._max_grams]
        keep = max(1, math.ceil(len(grams) * self._threshold))
        if keep >= len(grams):
            return ["".join(grams)]
        return sorted(
            {"".join(combo) for combo in itertools.combinations(grams, keep)}
        )

    def index_stats(self) -> IndexStats | None:
        return self._last_index_stats

    def _signature(self) -> str:
        """Shared-index cache key: the full q-gram configuration."""
        return f"qgram:{self._field}:{self._q}:{self._threshold}:{self._max_grams}"

    def _local_postings(self, local: RecordStore) -> Callable[[str], Iterable[Term]]:
        """Posting lookup (sub-list key -> local ids in store order),
        shared-index backed when enabled."""
        if self._use_index:
            index = shared_record_index(local, self._signature(), self._keys)
            return index.candidates
        postings: Dict[str, List[Term]] = defaultdict(list)
        for record in local:
            for key in self._keys(record):
                postings[key].append(record.id)
        return lambda key: postings.get(key, ())

    def candidate_pairs(
        self, external: RecordStore, local: RecordStore
    ) -> Iterator[CandidatePair]:
        if self._use_index:
            yield from self._candidate_pairs_indexed(external, local)
            return
        self._last_index_stats = None
        lookup = self._local_postings(local)
        seen: Set[CandidatePair] = set()
        for record in external:
            for key in self._keys(record):
                for local_id in lookup(key):
                    pair = (record.id, local_id)
                    if pair not in seen:
                        seen.add(pair)
                        yield pair

    def supports_sharding(self) -> bool:
        """Sub-list keys are partitioned by the plan. A pair that
        co-occurs under several of a record's keys is owned by the
        *first* sorted key whose posting contains the local record —
        exactly the occurrence the serial path's dedup set keeps — so
        every pair is generated by exactly one shard."""
        return True

    def shard_block_sizes(
        self, external: RecordStore, local: RecordStore
    ) -> Dict[str, int]:
        """Per-sub-list-key posting sizes for the plan's LPT balance.

        With the shared index enabled this also warms the per-store
        cache *before* the engine forks its shard workers, so every
        worker inherits the postings instead of rebuilding them.
        """
        if self._use_index:
            index = shared_record_index(local, self._signature(), self._keys)
            return index.key_sizes()
        sizes: Dict[str, int] = {}
        for record in local:
            for key in self._keys(record):
                sizes[key] = sizes.get(key, 0) + 1
        return sizes

    def shard_candidate_pairs(
        self,
        external: RecordStore,
        local: RecordStore,
        plan: "ShardPlan",
        shard: int,
    ) -> Iterator[ShardedPair]:
        lookup = self._local_postings(local)
        for ordinal, record in enumerate(external):
            keys = self._keys(record)
            owned = [
                index for index, key in enumerate(keys)
                if plan.shard_of(key) == shard
            ]
            if not owned:
                continue
            owned_set = set(owned)
            # replay the record's keys up to its last owned one so the
            # dedup set sees every earlier occurrence of a local id,
            # but emit only the fresh pairs of owned keys — the serial
            # seen-set dedup, restated as an ownership rule
            seen: Set[Term] = set()
            for key_index in range(owned[-1] + 1):
                fresh_here = key_index in owned_set
                for local_id in lookup(keys[key_index]):
                    if local_id in seen:
                        continue
                    seen.add(local_id)
                    if fresh_here:
                        yield (ordinal, key_index), record.id, local_id

    def _candidate_pairs_indexed(
        self, external: RecordStore, local: RecordStore
    ) -> Iterator[CandidatePair]:
        index = shared_record_index(local, self._signature(), self._keys)
        seen: Set[CandidatePair] = set()
        probe_seconds = 0.0
        for record in external:
            started = time.perf_counter()
            fresh: List[CandidatePair] = []
            for key in self._keys(record):
                for local_id in index.candidates(key):
                    pair = (record.id, local_id)
                    if pair not in seen:
                        seen.add(pair)
                        fresh.append(pair)
            probe_seconds += time.perf_counter() - started
            yield from fresh
        index.probed(probe_seconds)
        # per-run report: one-time build cost, this run's probe time
        self._last_index_stats = dataclasses.replace(
            index.stats(), probe_seconds=probe_seconds
        )


class CanopyBlocking(BlockingMethod):
    """Canopy clustering with a cheap q-gram cosine similarity.

    Local records are indexed; each external record seeds a canopy of
    local records within ``loose`` similarity. The classic tight/loose
    two-threshold scheme removes locals within ``tight`` similarity from
    future canopies, bounding redundancy.
    """

    def __init__(
        self,
        field_name: str,
        loose: float = 0.4,
        tight: float = 0.9,
        q: int = 2,
    ) -> None:
        if not 0.0 <= loose <= tight <= 1.0:
            raise ValueError(
                f"need 0 <= loose <= tight <= 1, got loose={loose}, tight={tight}"
            )
        self._field = field_name
        self._loose = loose
        self._tight = tight
        self._q = q

    def candidate_pairs(
        self, external: RecordStore, local: RecordStore
    ) -> Iterator[CandidatePair]:
        remaining: Dict[Term, str] = {
            record.id: normalize_value(record.value(self._field)) for record in local
        }
        for record in external:
            value = normalize_value(record.value(self._field))
            if not value:
                continue
            claimed: List[Term] = []
            for local_id, local_value in remaining.items():
                sim = qgram_cosine_similarity(value, local_value, q=self._q)
                if sim >= self._loose:
                    yield record.id, local_id
                    if sim >= self._tight:
                        claimed.append(local_id)
            for local_id in claimed:
                del remaining[local_id]

    def supports_sharding(self) -> bool:
        """Shards own *local* records. In the serial sweep a local
        leaves circulation right after the *first* center within
        ``tight`` similarity has scanned it — an event that depends
        only on that local's own similarities, never on another local's
        removal — so a worker owning a local can replay its whole
        serial life: scan the centers in ordinal order, emit every
        ``loose`` pair, stop at the first ``tight`` one. The work of
        the serial sweep is partitioned exactly (no extra similarity
        is ever computed) and every pair is emitted by exactly the one
        worker owning its local record."""
        return True

    def shard_block_sizes(
        self, external: RecordStore, local: RecordStore
    ) -> Dict[str, int]:
        """Empty — per-local work is unknown until the sims are
        computed (an early-claimed local is cheap), so locals balance
        by stable hash of their id."""
        return {}

    def shard_candidate_pairs(
        self,
        external: RecordStore,
        local: RecordStore,
        plan: "ShardPlan",
        shard: int,
    ) -> Iterator[ShardedPair]:
        # Serial emission order is center-major: center ordinal, then
        # local store order within the center's canopy (dict iteration
        # order survives deletions), so (ordinal, local position) sorts
        # pairs exactly as the serial sweep yields them — and the key
        # is unique per pair, trivially owned by its local's shard.
        centers = [
            (ordinal, record.id, normalize_value(record.value(self._field)))
            for ordinal, record in enumerate(external)
        ]
        owned: List[ShardedPair] = []
        for position, record in enumerate(local):
            if plan.shard_of(str(record.id)) != shard:
                continue
            local_value = normalize_value(record.value(self._field))
            for ordinal, ext_id, value in centers:
                if not value:
                    continue  # empty centers neither pair nor claim
                sim = qgram_cosine_similarity(value, local_value, q=self._q)
                if sim >= self._loose:
                    owned.append(((ordinal, position), ext_id, record.id))
                if sim >= self._tight:
                    break  # claimed: later centers never see this local
        # the scan runs local-major; re-sort into center-major serial order
        owned.sort(key=lambda entry: entry[0])
        yield from owned


class RuleBasedBlocking(BlockingMethod):
    """The paper's method behind the common blocking interface.

    Classifies each external record with the learned rules and emits
    pairs against the instances of the predicted classes. Undecided
    records fall back to the full local store (``fallback_full=True``,
    the fair default for completeness comparisons) or to no pairs.

    With ``use_index=True`` the batch is classified through the
    classifier's inverted rule index
    (:meth:`~repro.core.classifier.RuleClassifier.predict_many`);
    ``use_index=False`` keeps the per-record rule scan as the reference
    path. Predictions — and therefore candidate pairs — are identical.
    """

    def __init__(
        self,
        classifier: RuleClassifier,
        ontology: Ontology,
        external_graph: Graph,
        fallback_full: bool = True,
        use_index: bool = True,
    ) -> None:
        self._classifier = classifier
        self._ontology = ontology
        self._graph = external_graph
        self._fallback_full = fallback_full
        self._use_index = use_index
        self._last_index_stats: IndexStats | None = None

    def index_stats(self) -> IndexStats | None:
        return self._last_index_stats

    def supports_sharding(self) -> bool:
        """Each external record is its own block (its predicted-class
        candidate set), so blocks partition the pair space; predictions
        are per-item, so a worker classifying only its own externals
        predicts exactly what a whole-batch run would."""
        return True

    def shard_block_sizes(
        self, external: RecordStore, local: RecordStore
    ) -> Dict[str, int]:
        """Empty: block sizes would cost a classification pass in the
        parent, which is exactly the work sharding moves in-worker —
        stable hashing of the external ids balances well enough."""
        return {}

    def shard_candidate_pairs(
        self,
        external: RecordStore,
        local: RecordStore,
        plan: "ShardPlan",
        shard: int,
    ) -> Iterator[ShardedPair]:
        mine = [
            (ordinal, ext_id)
            for ordinal, ext_id in enumerate(external.ids())
            if plan.shard_of(str(ext_id)) == shard
        ]
        items = [ext_id for _, ext_id in mine]
        if self._use_index:
            self._classifier.build_probe_table()
            predictions = self._classifier.predict_many(items, self._graph)
        else:
            predictions = {
                item: self._classifier.predict(item, self._graph) for item in items
            }
        subspace = LinkingSubspace.from_predictions(predictions, self._ontology)
        local_order = list(local.ids())
        local_ids = set(local_order)
        for ordinal, ext_id in mine:
            for local_id in self._candidates_of(
                ext_id, subspace, local_order, local_ids
            ):
                yield ordinal, ext_id, local_id

    def _candidates_of(
        self,
        ext_id: Term,
        subspace: LinkingSubspace,
        local_order: List[Term],
        local_ids: Set[Term],
    ) -> Iterator[Term]:
        """One external record's candidates, in the deterministic
        emission order shared by the serial and sharded paths."""
        candidates = subspace.candidates_for(ext_id)
        if not candidates and self._fallback_full:
            yield from local_order
            return
        matching = [c for c in candidates if c in local_ids]
        matching.sort(key=str)
        yield from matching

    def candidate_pairs(
        self, external: RecordStore, local: RecordStore
    ) -> Iterator[CandidatePair]:
        items = list(external.ids())
        if self._use_index:
            self._classifier.build_probe_table()
            started = time.perf_counter()
            predictions = self._classifier.predict_many(items, self._graph)
            probe_seconds = time.perf_counter() - started
            self._last_index_stats = self._classifier.probe_index_stats(probe_seconds)
        else:
            self._last_index_stats = None
            predictions = {
                item: self._classifier.predict(item, self._graph) for item in items
            }
        subspace = LinkingSubspace.from_predictions(predictions, self._ontology)
        # deterministic emission: subspace candidate sets iterate in hash
        # order, which PYTHONHASHSEED reshuffles between processes, and
        # best-match tie-breaking downstream would inherit the shuffle —
        # store order (fallback) / sorted ids keep runs byte-identical
        local_order = list(local.ids())
        local_ids = set(local_order)
        for ext_id in external.ids():
            for candidate in self._candidates_of(
                ext_id, subspace, local_order, local_ids
            ):
                yield ext_id, candidate
