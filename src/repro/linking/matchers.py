"""Match decision models over comparison vectors.

Two classic models:

* :class:`ThresholdMatcher` — match when the weighted aggregate
  similarity reaches a threshold; the workhorse of practical linkers.
* :class:`FellegiSunterMatcher` — the probabilistic record-linkage model:
  per-field agreement likelihood ratios ``log2(m/u)`` summed into a
  match weight, thresholded into match / possible / non-match (the
  three-way decision of Fellegi & Sunter 1969, surveyed by Winkler 2006,
  which the paper cites as the record-linkage foundation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.linking.comparators import ComparisonVector, RecordComparator
from repro.linking.records import Record


class MatchStatus(Enum):
    """Three-way linkage decision."""

    MATCH = "match"
    POSSIBLE = "possible"
    NON_MATCH = "non_match"


@dataclass(frozen=True, slots=True)
class MatchDecision:
    """The outcome for one candidate pair."""

    vector: ComparisonVector
    status: MatchStatus
    score: float

    @property
    def is_match(self) -> bool:
        """True for confirmed matches only."""
        return self.status is MatchStatus.MATCH


class ThresholdMatcher:
    """Weighted-average similarity with match/possible bands.

    ``score >= match_threshold`` -> MATCH;
    ``possible_threshold <= score < match_threshold`` -> POSSIBLE;
    below -> NON_MATCH.
    """

    def __init__(
        self,
        match_threshold: float = 0.85,
        possible_threshold: float | None = None,
    ) -> None:
        if not 0.0 <= match_threshold <= 1.0:
            raise ValueError(f"match threshold must be in [0,1], got {match_threshold}")
        if possible_threshold is not None and possible_threshold > match_threshold:
            raise ValueError("possible threshold cannot exceed match threshold")
        self._match = match_threshold
        self._possible = possible_threshold

    @property
    def match_threshold(self) -> float:
        """The MATCH band's lower bound."""
        return self._match

    @property
    def possible_threshold(self) -> float | None:
        """The POSSIBLE band's lower bound (``None`` disables the band)."""
        return self._possible

    def decide(self, vector: ComparisonVector) -> MatchDecision:
        """Classify one comparison vector."""
        score = vector.aggregate
        if score >= self._match:
            status = MatchStatus.MATCH
        elif self._possible is not None and score >= self._possible:
            status = MatchStatus.POSSIBLE
        else:
            status = MatchStatus.NON_MATCH
        return MatchDecision(vector=vector, status=status, score=score)

    def compile_batched(self):
        """Compile the decision into a closure over scored vectors.

        The batched scoring path (:class:`repro.engine.batch.BatchScorer`)
        memoizes decisions per record profile pair; that is only sound
        for deciders whose output depends on the scored vector alone.
        The threshold decision reads nothing but the aggregate, so the
        closure replicates :meth:`decide` comparison for comparison.
        """
        match, possible = self._match, self._possible

        def decide_scored(similarities, aggregate):
            if aggregate >= match:
                return MatchStatus.MATCH, aggregate
            if possible is not None and aggregate >= possible:
                return MatchStatus.POSSIBLE, aggregate
            return MatchStatus.NON_MATCH, aggregate

        return decide_scored


class FellegiSunterMatcher:
    """Fellegi-Sunter probabilistic matcher with supervised m/u training.

    Per field, agreement is ``similarity >= agreement_threshold``.
    Training on labeled pairs estimates ``m`` (P(agree | match)) and
    ``u`` (P(agree | non-match)) with Laplace smoothing. The decision
    weight of a pair sums ``log2(m/u)`` over agreeing fields and
    ``log2((1-m)/(1-u))`` over disagreeing ones.
    """

    def __init__(
        self,
        comparator: RecordComparator,
        agreement_threshold: float = 0.85,
        upper_weight: float = 3.0,
        lower_weight: float = 0.0,
    ) -> None:
        if lower_weight > upper_weight:
            raise ValueError("lower weight cannot exceed upper weight")
        self._comparator = comparator
        self._agreement = agreement_threshold
        self._upper = upper_weight
        self._lower = lower_weight
        self._m: Dict[str, float] = {}
        self._u: Dict[str, float] = {}
        self._trained = False

    @property
    def trained(self) -> bool:
        """Whether m/u probabilities have been estimated."""
        return self._trained

    @property
    def m_probabilities(self) -> Mapping[str, float]:
        """P(field agrees | pair is a match), per field."""
        self._require_trained()
        return dict(self._m)

    @property
    def u_probabilities(self) -> Mapping[str, float]:
        """P(field agrees | pair is a non-match), per field."""
        self._require_trained()
        return dict(self._u)

    def _require_trained(self) -> None:
        if not self._trained:
            raise RuntimeError("FellegiSunterMatcher.train must be called first")

    def train(
        self,
        matches: Iterable[Tuple[Record, Record]],
        non_matches: Iterable[Tuple[Record, Record]],
    ) -> "FellegiSunterMatcher":
        """Estimate m/u from labeled pairs (Laplace-smoothed)."""
        agree_m: Dict[str, int] = {f: 0 for f in self._comparator.field_names}
        agree_u: Dict[str, int] = {f: 0 for f in self._comparator.field_names}
        n_match = 0
        n_non = 0
        for left, right in matches:
            n_match += 1
            vector = self._comparator.compare(left, right)
            for field_name, sim in vector.similarities.items():
                if sim >= self._agreement:
                    agree_m[field_name] += 1
        for left, right in non_matches:
            n_non += 1
            vector = self._comparator.compare(left, right)
            for field_name, sim in vector.similarities.items():
                if sim >= self._agreement:
                    agree_u[field_name] += 1
        if n_match == 0 or n_non == 0:
            raise ValueError("need at least one match and one non-match to train")
        self._m = {
            f: (agree_m[f] + 1) / (n_match + 2) for f in agree_m
        }
        self._u = {
            f: (agree_u[f] + 1) / (n_non + 2) for f in agree_u
        }
        self._trained = True
        return self

    def weight(self, vector: ComparisonVector) -> float:
        """Summed log2 likelihood ratio of one comparison vector."""
        self._require_trained()
        total = 0.0
        for field_name, sim in vector.similarities.items():
            m = self._m[field_name]
            u = self._u[field_name]
            if sim >= self._agreement:
                total += math.log2(m / u)
            else:
                total += math.log2((1 - m) / (1 - u))
        return total

    def decide(self, vector: ComparisonVector) -> MatchDecision:
        """Three-way Fellegi-Sunter decision for one vector."""
        score = self.weight(vector)
        if score >= self._upper:
            status = MatchStatus.MATCH
        elif score >= self._lower:
            status = MatchStatus.POSSIBLE
        else:
            status = MatchStatus.NON_MATCH
        return MatchDecision(vector=vector, status=status, score=score)

    def compile_batched(self):
        """Compile the trained decision into a closure over scored vectors.

        The per-field ``log2`` likelihood ratios are constants once m/u
        are trained, so they are computed here, once, and the closure
        reduces to one table lookup and one add per field — summed in
        the same field order as :meth:`weight`, so the float total is
        bit-identical. Untrained matchers return ``None``: the batched
        path then calls :meth:`decide` per pair, which raises exactly
        like the pairwise path would.
        """
        if not self._trained:
            return None
        agreement = self._agreement
        upper, lower = self._upper, self._lower
        agree_weight = {
            f: math.log2(self._m[f] / self._u[f]) for f in self._m
        }
        disagree_weight = {
            f: math.log2((1 - self._m[f]) / (1 - self._u[f])) for f in self._m
        }

        def decide_scored(similarities, aggregate):
            total = 0.0
            for field_name, sim in similarities.items():
                if sim >= agreement:
                    total += agree_weight[field_name]
                else:
                    total += disagree_weight[field_name]
            if total >= upper:
                status = MatchStatus.MATCH
            elif total >= lower:
                status = MatchStatus.POSSIBLE
            else:
                status = MatchStatus.NON_MATCH
            return status, total

        return decide_scored
