"""Pairwise record comparison: field comparators and comparison vectors.

A :class:`RecordComparator` is a list of :class:`FieldComparator` entries
(field, similarity function, weight). Comparing two records yields a
:class:`ComparisonVector` of per-field similarities plus the weighted
aggregate used by the threshold matcher.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.linking.records import Record
from repro.text.normalize import normalize_value
from repro.text.similarity import jaro_winkler_similarity


@dataclass(frozen=True, slots=True)
class FieldComparator:
    """How one field is compared.

    ``missing_value`` is the similarity assigned when either record lacks
    the field (0 = treat absence as total disagreement; linkage surveys
    often use 0.5 for "no information").
    """

    field_name: str
    similarity: Callable[[str, str], float] = jaro_winkler_similarity
    weight: float = 1.0
    missing_value: float = 0.0

    def compare(self, left: Record, right: Record) -> float:
        """Best similarity across the value cross-product of the field."""
        return self.compare_values(
            left.values(self.field_name), right.values(self.field_name)
        )

    def compare_values(
        self,
        left_values: Sequence[str],
        right_values: Sequence[str],
        pair_similarity: Callable[[str, str], float] | None = None,
    ) -> float:
        """Best similarity across a value cross-product.

        ``pair_similarity`` lets callers (e.g. the engine's memoizing
        comparator) intercept the per-value-pair similarity while the
        missing-value and cross-product semantics stay defined here,
        in one place.
        """
        if not left_values or not right_values:
            return self.missing_value
        sim = pair_similarity or self._normalized_similarity
        return max(sim(a, b) for a in left_values for b in right_values)

    def _normalized_similarity(self, a: str, b: str) -> float:
        return self.similarity(normalize_value(a), normalize_value(b))


@dataclass(frozen=True, slots=True)
class ComparisonVector:
    """Per-field similarities of one record pair."""

    left: Record
    right: Record
    similarities: Mapping[str, float]
    aggregate: float

    def __getitem__(self, field_name: str) -> float:
        return self.similarities[field_name]


class RecordComparator:
    """Compares record pairs field by field.

    >>> comparator = RecordComparator([
    ...     FieldComparator("part_number", weight=2.0),
    ...     FieldComparator("maker", weight=1.0),
    ... ])
    >>> vector = comparator.compare(ext_record, loc_record)
    >>> vector.aggregate
    0.87
    """

    def __init__(self, comparators: Sequence[FieldComparator]) -> None:
        if not comparators:
            raise ValueError("RecordComparator needs at least one FieldComparator")
        total_weight = sum(c.weight for c in comparators)
        if total_weight <= 0:
            raise ValueError("total comparator weight must be positive")
        self._comparators = tuple(comparators)
        self._total_weight = total_weight

    @property
    def comparators(self) -> Tuple[FieldComparator, ...]:
        """The per-field comparators, in declaration order."""
        return self._comparators

    @property
    def field_names(self) -> Tuple[str, ...]:
        """Compared field names, in declaration order."""
        return tuple(c.field_name for c in self._comparators)

    def compare(self, left: Record, right: Record) -> ComparisonVector:
        """Compute the comparison vector of a pair."""
        similarities: Dict[str, float] = {}
        weighted = 0.0
        for index, comparator in enumerate(self._comparators):
            sim = self._field_similarity(index, comparator, left, right)
            similarities[comparator.field_name] = sim
            weighted += comparator.weight * sim
        return ComparisonVector(
            left=left,
            right=right,
            similarities=similarities,
            aggregate=weighted / self._total_weight,
        )

    def _field_similarity(
        self, index: int, comparator: FieldComparator, left: Record, right: Record
    ) -> float:
        """One field's similarity; subclasses may memoize per value pair."""
        return comparator.compare(left, right)
