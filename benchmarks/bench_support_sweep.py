"""Benchmark A1: support-threshold sweep around the paper's th = 0.002.

Ablation of the paper's main free parameter: lower thresholds admit
more (noisier) rules, higher thresholds trade recall for precision.
"""

import pytest

from repro.experiments.sweeps import run_support_sweep

THRESHOLDS = (0.0005, 0.001, 0.002, 0.005, 0.01)


@pytest.fixture(scope="module")
def rows(thales_catalog):
    return run_support_sweep(thales_catalog, thresholds=THRESHOLDS)


def test_bench_support_sweep(benchmark, thales_catalog, report_sink):
    result = benchmark.pedantic(
        run_support_sweep,
        args=(thales_catalog,),
        kwargs={"thresholds": THRESHOLDS},
        rounds=1,
        iterations=1,
    )
    header = (
        f"A1 support-threshold sweep (paper fixes th = 0.002)\n"
        f"{'th':<10}{'#rules':<8}{'#freq.cls':<10}{'#dec.':<8}"
        f"{'prec.':>7} {'recall':>7}"
    )
    report_sink(
        "support_sweep",
        "\n".join([header] + [row.format() for row in result]),
        data={"rows": result},
    )


class TestSweepShape:
    def test_rule_count_monotone_in_threshold(self, rows):
        counts = [row.n_rules for row in rows]
        assert counts == sorted(counts, reverse=True)

    def test_frequent_classes_monotone(self, rows):
        classes = [row.n_frequent_classes for row in rows]
        assert classes == sorted(classes, reverse=True)

    def test_precision_recall_tradeoff(self, rows):
        by_th = {row.support_threshold: row for row in rows}
        low, high = by_th[0.0005], by_th[0.01]
        assert high.precision >= low.precision
        assert low.recall >= high.recall
