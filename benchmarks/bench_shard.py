"""Benchmark: shard executor byte-identity vs the serial path.

Thin shim: the measurement logic lives in ``repro.bench.library``
(run ``repro bench list`` for the registry, ``repro bench run`` for
tiers and baselines). Executing this file runs just this experiment and
writes the legacy report twins plus the trajectory record.
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.bench import run_shim  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(run_shim("smoke-shard"))
