"""Benchmark A2: segmentation-strategy ablation.

§4.1 lets the expert choose separator characters *or* n-grams; the
Thales experiment used separators. The ablation shows why: on
part-number data the separator strategy dominates n-grams on precision
at comparable recall, while n-grams explode the occurrence counts.
"""

import pytest

from repro.experiments.sweeps import run_segmentation_ablation


@pytest.fixture(scope="module")
def rows(thales_catalog):
    return run_segmentation_ablation(thales_catalog)


def test_bench_segmentation(benchmark, thales_catalog, report_sink):
    result = benchmark.pedantic(
        run_segmentation_ablation, args=(thales_catalog,), rounds=1, iterations=1
    )
    header = (
        "A2 segmentation ablation (paper uses the separator strategy)\n"
        f"{'strategy':<14}{'distinct':<10}{'occur.':<10}{'#rules':<8}"
        f"{'#dec.':<8}{'prec.':>7} {'recall':>7}"
    )
    report_sink(
        "segmentation",
        "\n".join([header] + [row.format() for row in result]),
        data={"rows": result},
    )


class TestSegmentationShape:
    def test_all_strategies_ran(self, rows):
        assert {"separator", "bigram", "trigram", "4-gram", "token"} == {
            row.strategy for row in rows
        }

    def test_ngrams_inflate_occurrences(self, rows):
        by_name = {row.strategy: row for row in rows}
        assert by_name["bigram"].segment_occurrences > (
            by_name["separator"].segment_occurrences * 2
        )

    def test_separator_beats_bigram_on_precision(self, rows):
        by_name = {row.strategy: row for row in rows}
        assert by_name["separator"].precision > by_name["bigram"].precision

    def test_token_strategy_weak_on_part_numbers(self, rows):
        # whole part numbers are near-unique tokens: few rules survive
        by_name = {row.strategy: row for row in rows}
        assert by_name["token"].recall < by_name["separator"].recall
