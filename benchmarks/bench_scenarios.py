"""Benchmark S1: the scenario matrix, batch vs streaming.

Runs every registered scenario through both engine modes and reports,
per scenario, the workload shape, match quality, wall times and the
streaming overhead (the price of delta-at-a-time execution relative to
one batch: per-delta job setup plus the global best-match replay).
Byte-identity of the two legs and the metric envelopes are asserted
inline — a scenario that drifts or diverges fails the bench before it
writes results.

Results land in ``benchmarks/results/scenarios.txt`` + ``.json`` so the
quality/throughput trajectory of every workload is trackable across PRs.
"""

from repro.scenarios import run_all, scenario_names


def test_bench_scenarios(report_sink):
    reports = run_all()

    # acceptance gates: the whole registered matrix, every scenario
    # green, every streaming leg byte-identical
    assert len(reports) == len(scenario_names()) >= 8
    for report in reports:
        assert report.streaming_identical, report.name
        assert not report.envelope_violations, (
            report.name,
            report.envelope_violations,
        )

    rows = []
    lines = [
        "S1 scenario matrix: batch vs streaming engine",
        f"{'scenario':<28}{'|S_E|':>6}{'|S_L|':>7}{'pairs':>8}{'F1':>7}"
        f"{'PC':>7}{'RR':>7}{'batch':>9}{'stream':>9}{'overhead':>9}",
    ]
    for report in reports:
        overhead = (
            report.streaming_seconds / report.batch_seconds - 1.0
            if report.batch_seconds
            else 0.0
        )
        rows.append(
            {
                "scenario": report.name,
                "domain": report.domain,
                "tags": list(report.tags),
                "external_records": report.external_records,
                "local_records": report.local_records,
                "compared": report.compared,
                "matches": report.matches,
                "rules": report.rules,
                "precision": report.precision,
                "recall": report.recall,
                "f1": report.f1,
                "pairs_completeness": report.pairs_completeness,
                "reduction_ratio": report.reduction_ratio,
                "batch_seconds": report.batch_seconds,
                "streaming_seconds": report.streaming_seconds,
                "streaming_deltas": report.streaming_deltas,
                "streaming_overhead": overhead,
                "streaming_identical": report.streaming_identical,
                "match_digest": report.match_digest,
            }
        )
        lines.append(
            f"{report.name:<28}{report.external_records:>6}{report.local_records:>7}"
            f"{report.compared:>8}{report.f1:>7.3f}"
            f"{report.pairs_completeness:>7.3f}{report.reduction_ratio:>7.3f}"
            f"{report.batch_seconds:>8.2f}s{report.streaming_seconds:>8.2f}s"
            f"{overhead:>8.1%}"
        )
    lines.append(
        f"{len(reports)} scenarios, all streaming legs byte-identical to batch"
    )
    report_sink("scenarios", "\n".join(lines), data=rows)
