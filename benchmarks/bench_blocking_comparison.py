"""Benchmark A3: rule-based reduction vs classic blocking baselines.

Runs on the small catalog because the canopy baseline computes
O(|test| x |catalog|) similarities — at paper scale that single
baseline would dominate the suite (which is precisely the cost blocking
methods exist to avoid).

Every method executes through ``LinkingJob``, so ``time`` covers
blocking plus the chunked, cached pair comparison, and each row also
reports engine throughput (pairs/sec) and similarity-cache hit rate.
"""

import pytest

from repro.experiments.blocking_comparison import (
    BLOCKING_COMPARISON_HEADER,
    run_blocking_comparison,
)

N_TEST_ITEMS = 300
SUPPORT = 0.004


@pytest.fixture(scope="module")
def rows(small_catalog):
    return run_blocking_comparison(
        small_catalog, n_test_items=N_TEST_ITEMS, support_threshold=SUPPORT
    )


def test_bench_blocking_comparison(benchmark, small_catalog, report_sink):
    result = benchmark.pedantic(
        run_blocking_comparison,
        args=(small_catalog,),
        kwargs={"n_test_items": N_TEST_ITEMS, "support_threshold": SUPPORT},
        rounds=1,
        iterations=1,
    )
    header = (
        "A3 blocking comparison (out-of-sample provider batch)\n"
        + BLOCKING_COMPARISON_HEADER
    )
    report_sink(
        "blocking_comparison",
        "\n".join([header] + [row.format() for row in result]),
        data={"rows": result},
    )


class TestBlockingShape:
    def test_every_method_reduces_except_fallback(self, rows):
        for row in rows:
            assert row.reduction_ratio >= 0.0

    def test_strict_rules_prune_hard(self, rows):
        by_name = {row.method: row for row in rows}
        assert by_name["rule-based (strict)"].reduction_ratio > 0.7

    def test_fallback_keeps_completeness(self, rows):
        by_name = {row.method: row for row in rows}
        assert by_name["rule-based (paper)"].pairs_completeness > 0.9

    def test_rule_candidates_much_smaller_than_naive(self, rows):
        by_name = {row.method: row for row in rows}
        strict = by_name["rule-based (strict)"]
        assert strict.candidate_pairs < (1 - strict.reduction_ratio + 0.15) * 1e9
