"""Benchmark X2: the same pipeline on the toponym domain.

The paper's §6 generality claim, made concrete: identical learner,
different domain (place labels, token segmentation), same Table-1
shape.
"""

import pytest

from repro.datagen.toponyms import ToponymConfig, generate_gazetteer
from repro.experiments.generality import run_generality


@pytest.fixture(scope="module")
def gazetteer():
    return generate_gazetteer(ToponymConfig())


@pytest.fixture(scope="module")
def report(gazetteer):
    return run_generality(gazetteer)


def test_bench_generality(benchmark, gazetteer, report_sink):
    result = benchmark.pedantic(
        run_generality, args=(gazetteer,), rounds=3, iterations=1
    )
    report_sink("generality", result.format(), data=result)


class TestGeneralityShape:
    def test_rules_learned(self, report):
        assert report.total_rules > 10

    def test_top_band_perfect(self, report):
        assert report.rows[0].precision == pytest.approx(1.0)

    def test_precision_decreasing_recall_increasing(self, report):
        precisions = [row.precision for row in report.rows]
        recalls = [row.recall for row in report.rows]
        assert all(a >= b - 1e-9 for a, b in zip(precisions, precisions[1:]))
        assert all(a <= b + 1e-9 for a, b in zip(recalls, recalls[1:]))

    def test_type_words_make_strong_rules(self, report):
        # the domain's signal is stronger than part numbers: most
        # decidable items are covered at confidence 1 already
        assert report.rows[0].recall > 0.5
