"""Benchmark S1/S2: the paper's in-text §5 statistics.

Measures the statistics pass and asserts the calibrated ballpark:
~7.8k distinct segments / ~26k occurrences over TS part numbers, ~68
frequent classes, rule count near 144, confidence-1 rules near 44.
"""

import pytest

from repro.experiments.stats import PAPER_STATS, run_stats


@pytest.fixture(scope="module")
def stats(thales_catalog):
    return run_stats(thales_catalog)


def test_bench_intext_stats(benchmark, thales_catalog, report_sink):
    result = benchmark.pedantic(
        run_stats, args=(thales_catalog,), rounds=3, iterations=1
    )
    report_sink("intext_stats", result.format(), data=result)


class TestStatsBallpark:
    def test_distinct_segments(self, stats):
        assert PAPER_STATS["distinct_segments"] * 0.7 <= stats.distinct_segments
        assert stats.distinct_segments <= PAPER_STATS["distinct_segments"] * 1.3

    def test_segment_occurrences(self, stats):
        assert PAPER_STATS["segment_occurrences"] * 0.8 <= stats.segment_occurrences
        assert stats.segment_occurrences <= PAPER_STATS["segment_occurrences"] * 1.2

    def test_frequent_classes(self, stats):
        assert abs(stats.frequent_classes - PAPER_STATS["frequent_classes"]) <= 10

    def test_rule_count(self, stats):
        assert PAPER_STATS["rules"] * 0.6 <= stats.rule_count
        assert stats.rule_count <= PAPER_STATS["rules"] * 1.4

    def test_confidence_one_rules(self, stats):
        assert abs(stats.confidence_one_rules - PAPER_STATS["confidence_one_rules"]) <= 15

    def test_selected_occurrences_subset(self, stats):
        assert 0 < stats.selected_occurrences < stats.segment_occurrences

    def test_classes_with_rules_minority_of_frequent(self, stats):
        # paper: 16 of 67 frequent classes have indicative segments
        assert stats.classes_with_confident_rules < stats.frequent_classes
