"""Benchmark A5: the §4.4 rule-ordering design choice.

Paper ordering (confidence, then lift) versus CBA (confidence, then
support) versus subspace-size-first (lift-major): decision accuracy and
induced subspace size of the per-item top decision.
"""

import pytest

from repro.experiments.ordering_ablation import run_ordering_ablation


@pytest.fixture(scope="module")
def rows(thales_catalog):
    return run_ordering_ablation(thales_catalog)


def test_bench_ordering_ablation(benchmark, thales_catalog, report_sink):
    result = benchmark.pedantic(
        run_ordering_ablation, args=(thales_catalog,), rounds=1, iterations=1
    )
    header = (
        "A5 rule-ordering ablation (top decision per item)\n"
        f"{'strategy':<12}{'#decided':<10}{'accuracy':>8} {'pairs':>12} {'factor':>9}"
    )
    report_sink(
        "ordering",
        "\n".join([header] + [row.format() for row in result]),
        data={"rows": result},
    )


class TestOrderingShape:
    def test_same_coverage_across_strategies(self, rows):
        # ordering changes WHICH decision wins, never whether one exists
        decided = {row.decided_items for row in rows}
        assert len(decided) == 1

    def test_subspace_first_reduces_most(self, rows):
        by_name = {row.strategy: row for row in rows}
        assert by_name["subspace"].reduced_pairs <= by_name["paper"].reduced_pairs

    def test_confidence_major_strategies_more_accurate(self, rows):
        by_name = {row.strategy: row for row in rows}
        assert by_name["paper"].top_decision_accuracy >= (
            by_name["subspace"].top_decision_accuracy - 0.02
        )
