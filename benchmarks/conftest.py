"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one experiment from DESIGN.md §5. The
catalogs are session-scoped (generation is setup cost, not measured
work) and every bench writes its paper-style report to
``benchmarks/results/<experiment>.txt`` plus a machine-readable
``<experiment>.json`` twin, so the perf trajectory is trackable across
PRs without re-parsing the human tables.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.datagen import CatalogConfig, ElectronicCatalogGenerator

RESULTS_DIR = Path(__file__).parent / "results"


def jsonable(value):
    """Recursively convert reports/rows into JSON-serializable data.

    Dataclasses become dicts, sequences become lists, and leaf objects
    the paper model uses (IRIs, enums...) fall back to ``str``.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(key): jsonable(item) for key, item in value.items()}
    if isinstance(value, (set, frozenset)):
        # stable order so committed JSON twins diff cleanly across runs
        return sorted((jsonable(item) for item in value), key=repr)
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


@pytest.fixture(scope="session")
def thales_catalog():
    """The paper-scale catalog (566 classes, |TS| = 10 265)."""
    return ElectronicCatalogGenerator(CatalogConfig.thales_like()).generate()


@pytest.fixture(scope="session")
def small_catalog():
    """The small catalog for quadratic baselines (canopy etc.)."""
    return ElectronicCatalogGenerator(CatalogConfig.small()).generate()


@pytest.fixture(scope="session")
def report_sink():
    """Write a named report (txt + json) under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str, data=None) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        if data is not None:
            (RESULTS_DIR / f"{name}.json").write_text(
                json.dumps(jsonable(data), indent=2, sort_keys=True) + "\n"
            )
        print(f"\n{text}")

    return write
