"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one experiment from DESIGN.md §5. The
catalogs are session-scoped (generation is setup cost, not measured
work) and every bench writes its paper-style report to
``benchmarks/results/<experiment>.txt`` so the tables survive the run.
"""

from pathlib import Path

import pytest

from repro.datagen import CatalogConfig, ElectronicCatalogGenerator

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def thales_catalog():
    """The paper-scale catalog (566 classes, |TS| = 10 265)."""
    return ElectronicCatalogGenerator(CatalogConfig.thales_like()).generate()


@pytest.fixture(scope="session")
def small_catalog():
    """The small catalog for quadratic baselines (canopy etc.)."""
    return ElectronicCatalogGenerator(CatalogConfig.small()).generate()


@pytest.fixture(scope="session")
def report_sink():
    """Write a named report file under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}")

    return write
