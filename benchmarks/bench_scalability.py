"""Benchmark A4: learning cost versus |TS|.

The paper's whole point is avoiding quadratic linking cost; the rule
learner itself must therefore scale gently in |TS|. The bench measures
Algorithm 1's wall time at several training-set sizes.
"""

import pytest

from repro.core import LearnerConfig, RuleLearner
from repro.datagen import CatalogConfig, ElectronicCatalogGenerator
from repro.datagen.catalog import PART_NUMBER
from repro.experiments.sweeps import run_scalability

SIZES = (1000, 2500, 5000, 10265)


@pytest.mark.parametrize("n_links", SIZES)
def test_bench_learning_scales(benchmark, n_links):
    config = CatalogConfig.thales_like().with_links(n_links)
    catalog = ElectronicCatalogGenerator(config).generate()
    training_set = catalog.to_training_set()

    def learn():
        learner = RuleLearner(
            LearnerConfig(properties=(PART_NUMBER,), support_threshold=0.002)
        )
        return learner.learn(training_set)

    rules = benchmark.pedantic(learn, rounds=3, iterations=1)
    assert len(rules) > 0


def test_bench_scalability_report(benchmark, report_sink):
    rows = benchmark.pedantic(
        run_scalability, kwargs={"sizes": SIZES}, rounds=1, iterations=1
    )
    header = (
        "A4 scalability: learning / classification time vs |TS|\n"
        f"{'|TS|':<8}{'learn(s)':<10}{'classify(s)':<12}{'#rules':<8}"
    )
    report_sink(
        "scalability",
        "\n".join([header] + [row.format() for row in rows]),
    )
    # sanity: growth is roughly linear, not quadratic — 10x links must
    # cost well under 100x learn time (generous bound for timer noise)
    by_size = {row.n_links: row for row in rows}
    small, large = by_size[1000], by_size[10265]
    if small.learn_seconds > 0.001:
        assert large.learn_seconds / small.learn_seconds < 60
