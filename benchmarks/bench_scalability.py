"""Benchmarks A4/A5: learning cost versus |TS|, and linking throughput.

The paper's whole point is avoiding quadratic linking cost; the rule
learner itself must therefore scale gently in |TS| (A4), and the batch
linking engine must turn the reduced candidate set into links as fast
as the hardware allows (A5). A4 measures Algorithm 1's wall time at
several training-set sizes; A5 drives provider batches through
``LinkingJob`` and reports pairs/sec and similarity-cache hit rate,
plus a byte-identity check between the serial and the parallel chunked
path on the toponym domain.
"""

import pytest

from repro.core import LearnerConfig, RuleLearner
from repro.datagen import CatalogConfig, ElectronicCatalogGenerator
from repro.datagen.catalog import PART_NUMBER
from repro.datagen.toponyms import ToponymConfig
from repro.engine import JobConfig, LinkingJob
from repro.experiments.sweeps import run_scalability
from repro.experiments.throughput import (
    THROUGHPUT_HEADER,
    run_linking_throughput,
    toponym_linking_setup,
)
from repro.rdf import serialize_ntriples

SIZES = (1000, 2500, 5000, 10265)
LINK_SIZES = (200, 400, 800)


@pytest.mark.parametrize("n_links", SIZES)
def test_bench_learning_scales(benchmark, n_links):
    config = CatalogConfig.thales_like().with_links(n_links)
    catalog = ElectronicCatalogGenerator(config).generate()
    training_set = catalog.to_training_set()

    def learn():
        learner = RuleLearner(
            LearnerConfig(properties=(PART_NUMBER,), support_threshold=0.002)
        )
        return learner.learn(training_set)

    rules = benchmark.pedantic(learn, rounds=3, iterations=1)
    assert len(rules) > 0


def test_bench_scalability_report(benchmark, report_sink):
    rows = benchmark.pedantic(
        run_scalability, kwargs={"sizes": SIZES}, rounds=1, iterations=1
    )
    header = (
        "A4 scalability: learning / classification time vs |TS|\n"
        f"{'|TS|':<8}{'learn(s)':<10}{'classify(s)':<12}{'#rules':<8}"
    )
    report_sink(
        "scalability",
        "\n".join([header] + [row.format() for row in rows]),
        data={"rows": rows},
    )
    # sanity: growth is roughly linear, not quadratic — 10x links must
    # cost well under 100x learn time (generous bound for timer noise)
    by_size = {row.n_links: row for row in rows}
    small, large = by_size[1000], by_size[10265]
    if small.learn_seconds > 0.001:
        assert large.learn_seconds / small.learn_seconds < 60


def test_bench_linking_throughput(benchmark, small_catalog, report_sink):
    """A5: provider batches through the engine, serial baseline."""
    rows = benchmark.pedantic(
        run_linking_throughput,
        args=(small_catalog,),
        kwargs={"sizes": LINK_SIZES},
        rounds=1,
        iterations=1,
    )
    report_sink(
        "linking_throughput",
        "\n".join([THROUGHPUT_HEADER] + [row.format() for row in rows]),
        data={"rows": rows},
    )
    for row in rows:
        assert row.pairs_per_second > 0
        assert 0.0 <= row.cache_hit_rate <= 1.0
        assert row.chunk_count >= 1


@pytest.mark.parametrize("executor", ("thread", "process"))
def test_bench_parallel_chunked_identical_to_serial_on_toponyms(executor):
    """Chunked parallel execution must be byte-identical to serial."""
    blocking, comparator, matcher, external, local, truth = toponym_linking_setup(
        ToponymConfig(n_links=400, catalog_size=1200)
    )
    serial = LinkingJob(
        blocking, comparator, matcher, JobConfig(executor="serial")
    ).run(external, local)
    parallel = LinkingJob(
        blocking,
        comparator,
        matcher,
        JobConfig(executor=executor, workers=2, chunk_size=64),
    ).run(external, local)
    # the parallel path must actually have run — a silent serial
    # fallback would make this check vacuous
    assert parallel.stats.executor == executor
    assert parallel.stats.fallback_reason is None
    assert parallel.match_pairs == serial.match_pairs
    serial_bytes = serialize_ntriples(serial.sameas_graph()).encode()
    parallel_bytes = serialize_ntriples(parallel.sameas_graph()).encode()
    assert parallel_bytes == serial_bytes
    assert serial.matching_quality(truth).precision > 0.8
