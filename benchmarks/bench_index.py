"""Benchmark I1: the shared inverted feature index vs the scan passes.

Algorithm 1 is three frequency passes. The scan implementation re-walks
every (link, property, segment, class) incidence on every learn; the
index-backed implementation pays one build (pass 0: segment + intern +
posting appends) and then answers each pass from posting lengths and
intersections. Two regimes matter:

* **frequency passes on a built index** — what a relearn costs once the
  index exists (threshold sweeps, incremental re-emission, serving);
* **sweep amortization** — relearning at several thresholds, where the
  scan path repeats pass 0 per threshold and the index path builds once.

Both must beat the scan path, and the speedups land in
``benchmarks/results/index.json`` so the trajectory is trackable.
Equivalence (byte-identical rule sets) is asserted inline.
"""

import time

from repro.core import LearnerConfig, RuleLearner
from repro.datagen.catalog import PART_NUMBER

SUPPORT = 0.002
SWEEP_THRESHOLDS = (0.0005, 0.001, 0.002, 0.005, 0.01)
ROUNDS = 3


def _best_of(fn, rounds=ROUNDS):
    """(best wall seconds, last result) over *rounds* runs."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def test_bench_index_learner_passes(thales_catalog, report_sink):
    training_set = thales_catalog.to_training_set()
    config = LearnerConfig(properties=(PART_NUMBER,), support_threshold=SUPPORT)
    learner = RuleLearner(config)

    # reference: the original Counter-based scan, end to end
    scan_seconds, scan_rules = _best_of(lambda: learner.learn_scan(training_set))

    # index build (pass 0) and the frequency passes on the built index
    build_seconds, index = _best_of(lambda: learner.build_index(training_set))
    passes_seconds, index_rules = _best_of(
        lambda: learner.learn(training_set, index=index)
    )

    # equivalence is non-negotiable
    assert index_rules.rules == scan_rules.rules

    # sweep amortization: relearn at 5 thresholds
    def sweep_scan():
        return [
            RuleLearner(
                LearnerConfig(properties=(PART_NUMBER,), support_threshold=th)
            ).learn_scan(training_set)
            for th in SWEEP_THRESHOLDS
        ]

    def sweep_indexed():
        shared = learner.build_index(training_set)
        return [
            RuleLearner(
                LearnerConfig(properties=(PART_NUMBER,), support_threshold=th)
            ).learn(training_set, index=shared)
            for th in SWEEP_THRESHOLDS
        ]

    sweep_scan_seconds, sweep_scan_rules = _best_of(sweep_scan, rounds=1)
    sweep_index_seconds, sweep_index_rules = _best_of(sweep_indexed, rounds=1)
    for scan_set, index_set in zip(sweep_scan_rules, sweep_index_rules):
        assert index_set.rules == scan_set.rules

    stats = index.stats()
    passes_speedup = scan_seconds / passes_seconds if passes_seconds else float("inf")
    sweep_speedup = (
        sweep_scan_seconds / sweep_index_seconds if sweep_index_seconds else float("inf")
    )
    data = {
        "total_links": index.rows,
        "rules": len(index_rules),
        "scan_learn_seconds": scan_seconds,
        "index_build_seconds": build_seconds,
        "index_passes_seconds": passes_seconds,
        "passes_speedup_vs_scan": passes_speedup,
        "sweep_thresholds": list(SWEEP_THRESHOLDS),
        "sweep_scan_seconds": sweep_scan_seconds,
        "sweep_indexed_seconds": sweep_index_seconds,
        "sweep_speedup_vs_scan": sweep_speedup,
        "posting_features": stats.features,
        "posting_entries": stats.postings,
        "mean_posting_length": stats.mean_posting_length,
        "byte_identical_rules": True,
    }
    text = "\n".join(
        [
            "I1 shared inverted feature index vs scan-based Algorithm 1",
            f"|TS| = {index.rows}, rules = {len(index_rules)}, "
            f"postings = {stats.postings} over {stats.features} features "
            f"(mean {stats.mean_posting_length:.1f})",
            f"scan learn           {scan_seconds * 1000:8.1f} ms",
            f"index build (pass 0) {build_seconds * 1000:8.1f} ms",
            f"frequency passes     {passes_seconds * 1000:8.1f} ms   "
            f"-> x{passes_speedup:.1f} vs scan learn",
            f"5-threshold sweep    scan {sweep_scan_seconds * 1000:8.1f} ms / "
            f"indexed {sweep_index_seconds * 1000:8.1f} ms   "
            f"-> x{sweep_speedup:.1f}",
        ]
    )
    report_sink("index", text, data=data)

    # the acceptance claim: the frequency passes are measurably faster
    # than re-scanning (generous floor — typical is ~10x)
    assert passes_speedup > 1.5
    assert sweep_speedup > 1.0


def test_bench_classifier_probe_vs_scan(thales_catalog, report_sink):
    """Batch prediction through the rule probe table vs per-rule scan."""
    from repro.core import RuleClassifier
    from repro.experiments.throughput import provider_batch

    training_set = thales_catalog.to_training_set()
    config = LearnerConfig(properties=(PART_NUMBER,), support_threshold=SUPPORT)
    rules = RuleLearner(config).learn(training_set)
    graph, truth = provider_batch(thales_catalog, 500, seed=99)
    items = [external for external, _ in truth]
    classifier = RuleClassifier(rules)

    scan_seconds, scanned = _best_of(
        lambda: {item: classifier.predict(item, graph) for item in items}
    )
    probe_seconds, probed = _best_of(
        lambda: classifier.predict_many(items, graph)
    )
    assert probed == scanned
    speedup = scan_seconds / probe_seconds if probe_seconds else float("inf")
    data = {
        "items": len(items),
        "rules": len(rules),
        "scan_seconds": scan_seconds,
        "probe_seconds": probe_seconds,
        "speedup": speedup,
        "identical_predictions": True,
    }
    text = "\n".join(
        [
            "I2 classifier: rule probe table vs per-rule scan",
            f"{len(items)} items x {len(rules)} rules",
            f"scan  {scan_seconds * 1000:8.1f} ms",
            f"probe {probe_seconds * 1000:8.1f} ms   -> x{speedup:.1f}",
        ]
    )
    report_sink("classifier_index", text, data=data)
