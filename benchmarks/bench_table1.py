"""Benchmark T1: regenerate the paper's Table 1 (the only table).

Measures the full Table 1 pipeline (learn at th = 0.002, evaluate all
four confidence bands on TS) and asserts the reproduced *shape*:
precision falls ~100 -> ~84 as the band threshold drops, recall rises
~29 -> ~60 (cumulatively), and the per-band average lift stays high.
"""

import pytest

from repro.experiments.table1 import PAPER_TABLE1, run_table1


@pytest.fixture(scope="module")
def report(thales_catalog):
    return run_table1(thales_catalog)


def test_bench_table1(benchmark, thales_catalog, report_sink):
    result = benchmark.pedantic(
        run_table1, args=(thales_catalog,), rounds=3, iterations=1
    )
    report_sink("table1", result.format(), data=result)


class TestTable1Shape:
    """The reproduction claims (DESIGN.md §5, 'expected shape')."""

    def test_top_band_is_perfect(self, report):
        assert report.row(1.0).precision == pytest.approx(1.0)

    def test_precision_monotone_decreasing(self, report):
        precisions = [r.precision for r in report.rows]
        assert all(a >= b - 1e-9 for a, b in zip(precisions, precisions[1:]))

    def test_recall_monotone_increasing(self, report):
        recalls = [r.recall for r in report.rows]
        assert all(a <= b + 1e-9 for a, b in zip(recalls, recalls[1:]))

    def test_bottom_band_precision_near_paper(self, report):
        # paper: 83.8%; claim: the same regime (roughly 75-95%)
        assert 0.70 <= report.row(0.4).precision <= 0.97

    def test_top_band_recall_near_paper(self, report):
        # paper: 29%; claim: confidence-1 rules decide ~a fifth to a
        # third of the eligible items
        assert 0.18 <= report.row(1.0).recall <= 0.40

    def test_rule_counts_same_ballpark(self, report):
        for threshold, paper_row in PAPER_TABLE1.items():
            ours = report.row(threshold).n_rules
            assert ours <= paper_row["rules"] * 3 + 10
        total_paper = sum(r["rules"] for r in PAPER_TABLE1.values())
        total_ours = sum(r.n_rules for r in report.rows)
        assert total_paper * 0.5 <= total_ours <= total_paper * 1.5

    def test_lift_large_in_every_nonempty_band(self, report):
        # paper: lift > 20 everywhere; allow headroom for seed variance
        for row in report.rows:
            if row.n_rules:
                assert row.average_lift > 12
