"""Benchmark X1: the future-work subsumption generalization.

Sweeps the depth budget of the rule generalizer and reports the
recall / lift trade-off of lifting rules through the class hierarchy
(paper §6: "infer more general rules by exploiting the semantics of the
subsumption between classes").
"""

import pytest

from repro.experiments.generalization import run_generalization

BUDGETS = (2, 4, None)


@pytest.fixture(scope="module")
def reports(thales_catalog):
    return {
        budget: run_generalization(thales_catalog, max_depth_lift=budget)
        for budget in BUDGETS
    }


def test_bench_generalization(benchmark, thales_catalog, report_sink):
    result = benchmark.pedantic(
        run_generalization,
        args=(thales_catalog,),
        kwargs={"max_depth_lift": 4},
        rounds=1,
        iterations=1,
    )
    sections = [result.format()]
    report_sink("generalization", "\n\n".join(sections), data=result)


class TestGeneralizationShape:
    def test_recall_never_decreases(self, reports):
        for report in reports.values():
            assert report.extended_recall >= report.base_recall - 1e-9

    def test_deeper_budgets_allow_more_rules(self, reports):
        counts = [reports[b].n_generalized_rules for b in BUDGETS]
        assert counts == sorted(counts)

    def test_unbounded_lifting_decays_lift(self, reports):
        unbounded = reports[None]
        bounded = reports[2]
        if unbounded.n_generalized_rules and bounded.n_generalized_rules:
            assert (
                unbounded.average_generalized_lift
                <= bounded.average_generalized_lift + 1e-9
            )
