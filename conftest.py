"""Repository-level pytest options.

``--snapshot-update`` rewrites the golden scenario snapshots under
``tests/scenarios/snapshots/`` instead of asserting against them — see
``docs/testing.md`` for the workflow. The option must live in the
rootdir conftest so it is registered before collection regardless of
which test subset is invoked.
"""


def pytest_addoption(parser):
    parser.addoption(
        "--snapshot-update",
        action="store_true",
        default=False,
        help="rewrite golden scenario snapshots instead of asserting",
    )
