"""`repro serve --port 0` announces the bound port on stdout.

Scripts and CI start the daemon with an ephemeral port and must learn
the real one without racing or scraping the human banner (which lives
on stderr). The contract: the first stdout line is one JSON object
with the bound host/port, flushed before any request is answered.
"""

import json
import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.serve import build_bundle, request_json

SEED = 11
REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def bundle_path(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve-announce")
    build_bundle(
        root / "bundle", preset="tiny", seed=SEED, blocking="prefix", warm_items=10
    )
    return root / "bundle"


def _read_line(stream, timeout=120.0):
    """One line from *stream*, or fail — never hang the suite."""
    box = {}

    def read():
        box["line"] = stream.readline()

    reader = threading.Thread(target=read, daemon=True)
    reader.start()
    reader.join(timeout)
    if "line" not in box:
        raise AssertionError("no stdout line within the timeout")
    return box["line"]


def test_port_zero_announces_the_bound_port(bundle_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--bundle", str(bundle_path), "--port", "0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    try:
        announce = json.loads(_read_line(process.stdout))
        assert announce["event"] == "serving"
        assert announce["host"] == "127.0.0.1"
        assert announce["port"] > 0  # the *bound* port, not the 0 we asked for
        assert announce["bundles"] == ["default"]
        assert announce["default_bundle"] == "default"
        # the announced endpoint answers: no race between print and bind
        stats = request_json(announce["host"], announce["port"], "GET", "/stats")
        assert stats["default_bundle"] == "default"
    finally:
        process.terminate()
        process.wait(timeout=30)
