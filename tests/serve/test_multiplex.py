"""Shard multiplexing of large /link batches: byte-identity, routing."""

import pytest

from repro.datagen.catalog import PART_NUMBER, ElectronicCatalogGenerator
from repro.datagen.config import CatalogConfig
from repro.experiments.throughput import provider_batch
from repro.index.artifacts import load_bundle, record_store_to_payload
from repro.linking import RecordStore
from repro.serve import (
    LinkSession,
    ServeError,
    build_bundle,
    link_response,
    request_json,
    response_identity,
    run_self_test,
    serve_bundle,
)

SEED = 43
THRESHOLD = 20


@pytest.fixture(scope="module")
def bundle_path(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve-multiplex")
    build_bundle(
        root / "bundle", preset="tiny", seed=SEED, blocking="prefix", warm_items=20
    )
    return root / "bundle"


@pytest.fixture(scope="module")
def externals(bundle_path):
    catalog = ElectronicCatalogGenerator(CatalogConfig.tiny(seed=SEED)).generate()
    big_graph, _ = provider_batch(catalog, 40, seed=SEED)
    small_graph, _ = provider_batch(catalog, 10, seed=SEED)
    field_map = {"pn": PART_NUMBER}
    return (
        RecordStore.from_graph(big_graph, field_map),
        RecordStore.from_graph(small_graph, field_map),
    )


class TestResponseIdentity:
    def test_projection_drops_only_the_executor(self):
        response = {"matches": 3, "sameas_ntriples": "x", "executor": "shard"}
        assert response_identity(response) == {"matches": 3, "sameas_ntriples": "x"}


class TestThresholdRouting:
    def test_large_batches_multiplex_small_ones_stay_serial(
        self, bundle_path, externals
    ):
        big, small = externals
        session = LinkSession(
            load_bundle(bundle_path), multiplex_threshold=THRESHOLD
        )
        session.link(small)
        assert session.multiplexed_count == 0
        session.link(big)
        assert session.multiplexed_count == 1
        stats = session.stats()
        assert stats["multiplex"]["threshold"] == THRESHOLD
        assert stats["multiplex"]["requests"] == 1

    def test_explicit_job_config_bypasses_the_threshold(
        self, bundle_path, externals
    ):
        from repro.engine import JobConfig

        big, _ = externals
        session = LinkSession(
            load_bundle(bundle_path), multiplex_threshold=THRESHOLD
        )
        session.link(big, job_config=JobConfig(executor="serial"))
        assert session.multiplexed_count == 0

    def test_threshold_must_be_positive(self, bundle_path):
        with pytest.raises(ServeError, match="threshold"):
            LinkSession(load_bundle(bundle_path), multiplex_threshold=0)


class TestByteIdentity:
    def test_multiplexed_link_identical_to_serial(self, bundle_path, externals):
        big, _ = externals
        serial_session = LinkSession(load_bundle(bundle_path))
        multiplexed_session = LinkSession(
            load_bundle(bundle_path), multiplex_threshold=THRESHOLD
        )
        serial = link_response(serial_session.link(big))
        multiplexed = link_response(multiplexed_session.link(big))
        assert multiplexed_session.multiplexed_count == 1
        assert response_identity(multiplexed) == response_identity(serial)
        assert serial["matches"] > 0
        assert serial["sameas_ntriples"]

    def test_multiplexed_daemon_identical_over_http(
        self, bundle_path, externals
    ):
        big, _ = externals
        payload = record_store_to_payload(big)
        serial_session = LinkSession(load_bundle(bundle_path))
        expected = response_identity(link_response(serial_session.link(big)))
        with serve_bundle(
            bundle_path, multiplex_threshold=THRESHOLD
        ) as daemon:
            host, port = daemon.address
            response = request_json(host, port, "POST", "/link", payload)
        assert response_identity(response) == expected
        assert daemon.session.multiplexed_count == 1


class TestSelfTestCoverage:
    def test_self_test_exercises_the_multiplexed_path(self, bundle_path):
        report = run_self_test(
            bundle_path,
            items=30,
            requests=3,
            workers=2,
            multiplex_threshold=THRESHOLD,
        )
        assert report["identical"] is True
        assert report["mismatched_requests"] == []
        assert report["multiplex_threshold"] == THRESHOLD
        assert report["multiplexed_requests"] == 3
        assert report["queue"]["completed"] == 3
