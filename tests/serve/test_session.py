"""Warm LinkSession semantics: identity, invariants, streams.

The serve contract: a session answer is byte-identical to a cold
one-shot run on the same inputs, the shared comparator is provably
thread-safe, and delta streams fold to the batch result.
"""

import pytest

from repro.datagen.catalog import PART_NUMBER, ElectronicCatalogGenerator
from repro.datagen.config import CatalogConfig
from repro.engine import JobConfig, LinkingJob
from repro.experiments.throughput import provider_batch
from repro.index.artifacts import load_bundle, record_store_from_payload, record_store_to_payload
from repro.linking import (
    FieldComparator,
    RecordComparator,
    RecordStore,
    ThresholdMatcher,
)
from repro.rdf import serialize_ntriples
from repro.serve import (
    BLOCKING_NAMES,
    STREAMABLE_BLOCKING,
    LinkSession,
    ServeError,
    build_bundle,
    link_response,
    make_blocking,
)

SEED = 7


@pytest.fixture(scope="module")
def materials(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve-session")
    build_bundle(root / "bundle", preset="tiny", seed=SEED, blocking="prefix")
    catalog = ElectronicCatalogGenerator(CatalogConfig.tiny(seed=SEED)).generate()
    test_graph, _ = provider_batch(catalog, 40, seed=SEED)
    external = RecordStore.from_graph(test_graph, {"pn": PART_NUMBER})
    return root / "bundle", catalog, external


@pytest.fixture()
def session(materials):
    bundle_path, _, _ = materials
    return LinkSession(load_bundle(bundle_path))


class TestMakeBlocking:
    def test_unknown_name_rejected(self):
        with pytest.raises(ServeError, match="unknown blocking"):
            make_blocking("soundex")

    def test_rules_needs_materials(self):
        with pytest.raises(ServeError, match="learned rules"):
            make_blocking("rules")

    def test_all_names_constructible(self, materials):
        _, catalog, _ = materials
        for name in BLOCKING_NAMES:
            if name.startswith("rules"):
                continue  # covered via a rules bundle below
            assert make_blocking(name) is not None


class TestWarmIdentity:
    def test_link_matches_cold_one_shot(self, session, materials):
        _, catalog, external = materials
        warm = session.link(
            record_store_from_payload(record_store_to_payload(external))
        )

        local = RecordStore.from_graph(catalog.local_graph, {"pn": PART_NUMBER})
        cold = LinkingJob(
            make_blocking("prefix"),
            RecordComparator([FieldComparator("pn")]),
            ThresholdMatcher(match_threshold=0.9),
            JobConfig(executor="serial"),
        ).run(external, local)

        assert warm.match_pairs == cold.match_pairs
        assert warm.compared == cold.compared
        assert serialize_ntriples(warm.sameas_graph()) == serialize_ntriples(
            cold.sameas_graph()
        )
        assert len(warm.matches) > 0

    def test_repeat_requests_identical_and_counted(self, session, materials):
        _, _, external = materials
        first = link_response(session.link(external))
        second = link_response(session.link(external))
        assert first == second
        assert session.request_count == 2
        # the second pass answers similarities from the shared cache
        assert session.comparator.cache_hits > 0

    def test_rules_bundle_round_trips_through_graph_of(
        self, materials, tmp_path
    ):
        bundle_path, catalog, external = materials
        build_bundle(
            tmp_path / "rules-bundle", preset="tiny", seed=SEED, blocking="rules"
        )
        rules_session = LinkSession(load_bundle(tmp_path / "rules-bundle"))
        # no external graph supplied: the session must reconstruct one
        warm = rules_session.link(external)
        assert len(warm.matches) > 0
        assert rules_session.stats()["rules"] > 0


class TestThreadSafetyInvariant:
    def test_session_refuses_unsafe_comparator(self, materials, monkeypatch):
        import repro.engine as engine

        real = engine.CachedRecordComparator

        class UnsafeComparator(real):
            @property
            def thread_safe(self):
                return False

        monkeypatch.setattr(engine, "CachedRecordComparator", UnsafeComparator)
        bundle_path, _, _ = materials
        with pytest.raises(ServeError, match="thread-safe"):
            LinkSession(load_bundle(bundle_path))

    def test_session_comparator_is_thread_safe(self, session):
        assert session.comparator.thread_safe
        assert session.stats()["cache"]["thread_safe"] is True


class TestDeltaStreams:
    def test_deltas_fold_to_batch_result(self, session, materials):
        _, _, external = materials
        records = list(external)
        middle = len(records) // 2
        job, first = session.delta("s1", records[:middle])
        _, second = session.delta("s1", records[middle:])
        assert first.index == 0
        assert second.index == 1
        assert first.records == middle

        streamed = session.stream_result("s1")
        batch = session.link(external)
        assert streamed.match_pairs == batch.match_pairs
        assert serialize_ntriples(streamed.sameas_graph()) == serialize_ntriples(
            batch.sameas_graph()
        )

    def test_unknown_stream_has_no_result(self, session):
        assert session.stream_result("nope") is None

    def test_non_streamable_blocking_rejected(self, materials, tmp_path):
        _, _, external = materials
        build_bundle(
            tmp_path / "canopy-bundle", preset="tiny", seed=SEED, blocking="canopy"
        )
        canopy_session = LinkSession(load_bundle(tmp_path / "canopy-bundle"))
        assert "canopy" not in STREAMABLE_BLOCKING
        with pytest.raises(ServeError, match="cannot stream deltas"):
            canopy_session.delta("s1", list(external))


class TestStats:
    def test_snapshot_shape(self, session, materials):
        _, _, external = materials
        session.link(external)
        stats = session.stats()
        assert stats["records"] == len(session.local_store)
        assert stats["blocking"] == "prefix"
        assert stats["match_threshold"] == 0.9
        assert "prefix:pn:4" in stats["indexes"]
        assert stats["requests"] == 1
        assert stats["cache"]["capacity"] > 0
        assert 0.0 <= stats["cache"]["hit_rate"] <= 1.0


class TestWarmLearning:
    def test_rules_bundle_resumes_incremental_learning(self, tmp_path, materials):
        from repro.core.serialize import rules_to_json

        build_bundle(
            tmp_path / "rules-bundle", preset="tiny", seed=SEED, blocking="rules"
        )
        bundle = load_bundle(tmp_path / "rules-bundle")
        warm = LinkSession(bundle)
        learner = warm.incremental_learner()
        # resumed emission reproduces the bundled rule set exactly...
        assert rules_to_json(learner.rules()) == rules_to_json(bundle.rules)
        # ...and the dedupe set survived: replaying the original
        # training set ingests nothing new
        _, catalog, _ = materials
        assert learner.add_training_set(catalog.to_training_set()) == 0

    def test_prefix_bundle_has_no_training_state(self, session):
        with pytest.raises(ServeError, match="no training state"):
            session.incremental_learner()
