"""``POST /work``: the daemon as a remote shard worker.

A coordinator ships lean work units (store fingerprint instead of an
inline local store) and the daemon executes them against its resident
bundle store — behind the same admission queue as ``/link``. The
contract: the reply envelope equals what an in-process execution of the
same unit produces, foreign-store units are refused with 400 before any
scan work, and corrupt envelopes never reach the engine.
"""

import dataclasses

import pytest

from repro.engine.executors.protocol import (
    build_work_units,
    execute_work_unit,
    work_unit_to_payload,
    worker_result_from_payload,
    worker_result_to_payload,
)
from repro.engine.shard import ShardPlan
from repro.linking import (
    FieldComparator,
    QGramBlocking,
    RecordComparator,
    RecordStore,
    ThresholdMatcher,
)
from repro.serve import ServeError, build_bundle, request_json, serve_bundle
from repro.serve.daemon import request_raw

SEED = 37


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve-work")
    build_bundle(root / "bundle", preset="tiny", seed=SEED, blocking="qgram")
    with serve_bundle(root / "bundle") as running:
        yield running


@pytest.fixture(scope="module")
def units(daemon):
    """Lean units (no inline store) pinned to the daemon's bundle store."""
    from repro.datagen.catalog import PART_NUMBER, ElectronicCatalogGenerator
    from repro.datagen.config import CatalogConfig
    from repro.experiments.throughput import provider_batch

    catalog = ElectronicCatalogGenerator(CatalogConfig.tiny(seed=SEED)).generate()
    graph, _ = provider_batch(catalog, 20, seed=SEED)
    external = RecordStore.from_graph(graph, {"pn": PART_NUMBER})
    return build_work_units(
        QGramBlocking("pn", q=2, threshold=0.8),
        RecordComparator([FieldComparator("pn")]),
        ThresholdMatcher(match_threshold=0.9),
        external,
        daemon.session.local_store,
        ShardPlan.build(2),
        "pairwise",
        4096,
        inline_local=False,
    )


class TestRemoteWorker:
    def test_reply_equals_in_process_execution(self, daemon, units):
        host, port = daemon.address
        local = daemon.session.local_store
        for unit in units:
            reply = request_json(
                host, port, "POST", "/work", payload=work_unit_to_payload(unit)
            )
            expected = execute_work_unit(unit, local=local)
            assert reply == worker_result_to_payload(expected)
            assert worker_result_from_payload(reply) == expected

    def test_work_units_counter_rides_session_stats(self, daemon, units):
        host, port = daemon.address
        before = request_json(host, port, "GET", "/stats")
        request_json(
            host, port, "POST", "/work", payload=work_unit_to_payload(units[0])
        )
        after = request_json(host, port, "GET", "/stats")
        assert (
            after["sessions"]["default"]["work_units"]
            == before["sessions"]["default"]["work_units"] + 1
        )

    def test_foreign_store_unit_is_400(self, daemon, units):
        host, port = daemon.address
        foreign = dataclasses.replace(units[0], local_fingerprint="f" * 64)
        status, _, body = request_raw(
            host, port, "POST", "/work", payload=work_unit_to_payload(foreign)
        )
        assert status == 400
        assert "fingerprint mismatch" in body["error"]

    def test_corrupt_envelope_is_400(self, daemon, units):
        host, port = daemon.address
        payload = work_unit_to_payload(units[0])
        payload["checksum"] = "0" * 64
        status, _, body = request_raw(host, port, "POST", "/work", payload=payload)
        assert status == 400
        assert "checksum mismatch" in body["error"]

    def test_stale_schema_version_is_400(self, daemon, units):
        host, port = daemon.address
        payload = work_unit_to_payload(units[0])
        payload["schema_version"] = 999
        status, _, body = request_raw(host, port, "POST", "/work", payload=payload)
        assert status == 400
        assert "stale envelope" in body["error"]

    def test_unknown_bundle_is_404(self, daemon, units):
        host, port = daemon.address
        payload = work_unit_to_payload(units[0])
        payload["bundle"] = "no-such-bundle"
        with pytest.raises(ServeError, match="404"):
            request_json(host, port, "POST", "/work", payload=payload)

    def test_non_envelope_body_is_400(self, daemon):
        host, port = daemon.address
        status, _, body = request_raw(
            host, port, "POST", "/work", payload={"records": []}
        )
        assert status == 400
        assert "envelope" in body["error"]
