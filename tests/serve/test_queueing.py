"""Bounded admission: RequestQueue units and HTTP 503 backpressure."""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.serve import (
    OverloadError,
    RequestQueue,
    ServeError,
    build_bundle,
    request_json,
    request_raw,
    serve_bundle,
)

SEED = 23


class TestRequestQueueUnit:
    def test_submit_returns_the_result(self):
        queue = RequestQueue(workers=2, depth=4)
        try:
            assert queue.submit(lambda: 21 * 2) == 42
            stats = queue.stats()
            assert stats["accepted"] == 1
            assert stats["completed"] == 1
            assert stats["rejected"] == 0
            assert stats["in_flight"] == 0
        finally:
            queue.shutdown()

    def test_exceptions_propagate_to_the_submitter(self):
        queue = RequestQueue(workers=1, depth=2)
        try:
            with pytest.raises(ValueError, match="boom"):
                queue.submit(lambda: (_ for _ in ()).throw(ValueError("boom")))
            assert queue.stats()["failed"] == 1
        finally:
            queue.shutdown()

    @pytest.mark.parametrize("kwargs", [
        {"workers": 0},
        {"depth": 0},  # depth 0 would mean an *unbounded* stdlib queue
        {"retry_after": 0},
    ])
    def test_invalid_sizing_rejected(self, kwargs):
        with pytest.raises(ServeError):
            RequestQueue(**kwargs)

    def test_overload_rejects_without_blocking(self):
        queue = RequestQueue(workers=1, depth=1, retry_after=0.25)
        release = threading.Event()
        occupiers = [
            threading.Thread(target=lambda: queue.submit(release.wait), daemon=True)
            for _ in range(2)
        ]
        try:
            occupiers[0].start()
            _await(lambda: queue.stats()["in_flight"] == 1)
            occupiers[1].start()
            _await(lambda: queue.stats()["queued"] == 1)
            with pytest.raises(OverloadError) as caught:
                queue.submit(lambda: None)
            assert caught.value.retry_after == 0.25
            stats = queue.stats()
            assert stats["rejected"] == 1
            assert stats["in_flight"] == 1
            assert stats["queued"] == 1
        finally:
            release.set()
            for thread in occupiers:
                thread.join(timeout=10.0)
            queue.shutdown()
        assert queue.stats()["completed"] == 2

    def test_shutdown_refuses_new_work(self):
        queue = RequestQueue(workers=1, depth=1)
        queue.start()
        queue.shutdown()
        with pytest.raises(ServeError, match="shut down"):
            queue.submit(lambda: None)


def _await(condition, timeout=10.0):
    import time

    deadline = time.monotonic() + timeout
    while not condition():
        if time.monotonic() > deadline:
            raise AssertionError("condition never held")
        time.sleep(0.005)


@pytest.fixture(scope="module")
def bundle_path(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve-queue")
    build_bundle(
        root / "bundle", preset="tiny", seed=SEED, blocking="prefix", warm_items=20
    )
    return root / "bundle"


class TestHTTPBackpressure:
    def test_overload_answers_503_with_retry_after(self, bundle_path):
        daemon = serve_bundle(
            bundle_path, queue_workers=1, queue_depth=1, retry_after=0.5
        )
        release = threading.Event()
        occupiers = [
            threading.Thread(
                target=lambda: daemon.queue.submit(release.wait), daemon=True
            )
            for _ in range(2)
        ]
        try:
            host, port = daemon.start()
            occupiers[0].start()
            _await(lambda: daemon.queue.stats()["in_flight"] == 1)
            occupiers[1].start()
            _await(lambda: daemon.queue.stats()["queued"] == 1)

            with ThreadPoolExecutor(max_workers=3) as pool:
                probes = list(
                    pool.map(
                        lambda _: request_raw(
                            host, port, "POST", "/link",
                            payload={"records": []},
                        ),
                        range(3),
                    )
                )
            for status, headers, body in probes:
                assert status == 503
                assert headers["Retry-After"] == "0.5"
                assert "queue full" in body["error"]
                assert body["retry_after"] == 0.5

            # /stats bypasses the queue: monitoring keeps working while
            # the daemon sheds load, and the rejections are visible
            stats = request_json(host, port, "GET", "/stats")
            assert stats["queue"]["rejected"] >= 3
            assert stats["queue"]["in_flight"] == 1
            assert stats["queue"]["queued"] == 1
        finally:
            release.set()
            for thread in occupiers:
                thread.join(timeout=10.0)
            daemon.shutdown()

    def test_recovers_after_overload(self, bundle_path):
        daemon = serve_bundle(bundle_path, queue_workers=1, queue_depth=1)
        release = threading.Event()
        occupier = threading.Thread(
            target=lambda: daemon.queue.submit(release.wait), daemon=True
        )
        try:
            host, port = daemon.start()
            occupier.start()
            _await(lambda: daemon.queue.stats()["in_flight"] == 1)
            release.set()
            occupier.join(timeout=10.0)
            _await(lambda: daemon.queue.stats()["in_flight"] == 0)
            # a rejected-then-retried client gets a real answer
            response = request_json(
                host, port, "POST", "/link", payload={"records": []}
            )
            assert response["matches"] == 0
            assert response["compared"] == 0
        finally:
            release.set()
            daemon.shutdown()
