"""Daemon error paths: every bad request gets a JSON 4xx, never a
500 traceback or a hung connection."""

import pytest

from repro.serve import build_bundle, request_raw, serve_bundle

SEED = 19


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve-errors")
    build_bundle(
        root / "bundle", preset="tiny", seed=SEED, blocking="prefix", warm_items=15
    )
    running = serve_bundle(root / "bundle", max_body_bytes=4096)
    running.start()
    yield running
    running.shutdown()


def _post(daemon, path, **kwargs):
    host, port = daemon.address
    return request_raw(host, port, "POST", path, **kwargs)


class TestMalformedBodies:
    def test_invalid_json_is_400(self, daemon):
        status, _, body = _post(daemon, "/link", body=b"{not json")
        assert status == 400
        assert "not valid JSON" in body["error"]

    def test_empty_body_is_400(self, daemon):
        status, _, body = _post(daemon, "/link", body=b"")
        assert status == 400
        assert "empty request body" in body["error"]

    def test_non_object_json_is_400(self, daemon):
        status, _, body = _post(daemon, "/link", body=b"[1, 2, 3]")
        assert status == 400
        assert "JSON object" in body["error"]

    def test_delta_without_stream_is_400(self, daemon):
        status, _, body = _post(daemon, "/delta", payload={"records": []})
        assert status == 400
        assert "stream" in body["error"]


class TestUnknownTargets:
    def test_unknown_endpoint_is_404(self, daemon):
        for method, path in (("GET", "/nonsense"), ("POST", "/nonsense")):
            host, port = daemon.address
            status, _, body = request_raw(
                host, port, method, path,
                payload={"records": []} if method == "POST" else None,
            )
            assert status == 404
            assert "unknown path" in body["error"]

    def test_unknown_bundle_is_404(self, daemon):
        status, _, body = _post(
            daemon, "/link", payload={"records": [], "bundle": "nope"}
        )
        assert status == 404
        assert "unknown bundle 'nope'" in body["error"]

    def test_non_string_bundle_is_404(self, daemon):
        status, _, body = _post(
            daemon, "/link", payload={"records": [], "bundle": 7}
        )
        assert status == 404
        assert "bundle" in body["error"]


class TestOversizedPayloads:
    def test_oversized_body_is_413_before_reading(self, daemon):
        # 4 KiB limit on this daemon; send 64 KiB of valid JSON
        status, _, body = _post(
            daemon, "/link", body=b'{"records": "' + b"x" * 65536 + b'"}'
        )
        assert status == 413
        assert "exceeds" in body["error"]

    def test_limit_sized_body_still_answers(self, daemon):
        status, _, body = _post(daemon, "/link", payload={"records": []})
        assert status == 200
        assert body["matches"] == 0


class TestNoHangsNo500s:
    def test_every_error_body_is_json(self, daemon):
        probes = [
            _post(daemon, "/link", body=b"{not json"),
            _post(daemon, "/link", body=b""),
            _post(daemon, "/link", payload={"records": [], "bundle": "nope"}),
            _post(daemon, "/nonsense", payload={}),
            _post(daemon, "/link", body=b"\xff" * 8),  # undecodable bytes
        ]
        for status, _, body in probes:
            assert 400 <= status < 500
            assert isinstance(body, dict)
            assert "error" in body
