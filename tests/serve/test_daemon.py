"""The serve daemon over HTTP: concurrency, protocol errors, self-test."""

import json
from concurrent.futures import ThreadPoolExecutor
from http.client import HTTPConnection

import pytest

from repro.datagen.catalog import PART_NUMBER, ElectronicCatalogGenerator
from repro.datagen.config import CatalogConfig
from repro.experiments.throughput import provider_batch
from repro.index.artifacts import record_store_to_payload
from repro.linking import RecordStore
from repro.serve import (
    ServeError,
    build_bundle,
    link_response,
    request_json,
    run_self_test,
    serve_bundle,
)

SEED = 13


@pytest.fixture(scope="module")
def bundle_path(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve-daemon")
    build_bundle(
        root / "bundle", preset="tiny", seed=SEED, blocking="prefix", warm_items=30
    )
    return root / "bundle"


@pytest.fixture(scope="module")
def daemon(bundle_path):
    with serve_bundle(bundle_path) as running:
        yield running


@pytest.fixture(scope="module")
def link_payload():
    catalog = ElectronicCatalogGenerator(CatalogConfig.tiny(seed=SEED)).generate()
    test_graph, _ = provider_batch(catalog, 30, seed=SEED)
    external = RecordStore.from_graph(test_graph, {"pn": PART_NUMBER})
    return external, record_store_to_payload(external)


class TestProtocol:
    def test_stats_roundtrip(self, daemon):
        host, port = daemon.address
        stats = request_json(host, port, "GET", "/stats")
        assert stats["default_bundle"] == "default"
        session_stats = stats["sessions"]["default"]
        assert session_stats["blocking"] == "prefix"
        assert session_stats["records"] == len(daemon.session.local_store)
        # the bundled warm cache arrived with the session
        assert session_stats["cache"]["capacity"] > 0
        # admission counters ride along for load monitoring
        queue = stats["queue"]
        assert queue["workers"] >= 1
        assert queue["depth"] >= 1
        assert queue["rejected"] == 0
        assert stats["registry"]["bundles"]["default"]["open"] is True

    def test_bundles_listing(self, daemon):
        host, port = daemon.address
        listing = request_json(host, port, "GET", "/bundles")
        assert listing["default"] == "default"
        entry = listing["bundles"]["default"]
        assert entry["open"] is True
        assert entry["blocking"] == "prefix"
        assert entry["records"] > 0

    def test_unknown_path_is_404(self, daemon):
        host, port = daemon.address
        with pytest.raises(ServeError, match="404"):
            request_json(host, port, "GET", "/nonsense")
        with pytest.raises(ServeError, match="404"):
            request_json(host, port, "POST", "/nonsense", payload={"records": []})

    def test_invalid_json_body_is_400(self, daemon):
        host, port = daemon.address
        connection = HTTPConnection(host, port, timeout=30.0)
        try:
            connection.request("POST", "/link", body=b"{not json")
            response = connection.getresponse()
            body = json.loads(response.read().decode("utf-8"))
        finally:
            connection.close()
        assert response.status == 400
        assert "not valid JSON" in body["error"]

    def test_empty_body_is_400(self, daemon):
        host, port = daemon.address
        connection = HTTPConnection(host, port, timeout=30.0)
        try:
            connection.request("POST", "/link")
            response = connection.getresponse()
            body = json.loads(response.read().decode("utf-8"))
        finally:
            connection.close()
        assert response.status == 400
        assert "empty request body" in body["error"]

    def test_delta_without_stream_name_is_400(self, daemon, link_payload):
        host, port = daemon.address
        _, payload = link_payload
        with pytest.raises(ServeError, match="stream"):
            request_json(host, port, "POST", "/delta", payload=payload)


class TestConcurrentIdentity:
    def test_concurrent_links_answer_identically(self, daemon, link_payload):
        host, port = daemon.address
        external, payload = link_payload
        expected = link_response(daemon.session.link(external))
        expected.pop("executor")

        def one_request(_):
            return request_json(host, port, "POST", "/link", payload=payload)

        with ThreadPoolExecutor(max_workers=4) as pool:
            responses = list(pool.map(one_request, range(8)))
        for response in responses:
            response.pop("executor")
            assert response == expected
        assert expected["matches"] > 0
        assert expected["sameas_ntriples"]

    def test_delta_stream_accumulates(self, daemon, link_payload):
        host, port = daemon.address
        _, payload = link_payload
        records = payload["records"]
        middle = len(records) // 2
        first = request_json(
            host,
            port,
            "POST",
            "/delta",
            payload={"stream": "d1", "records": records[:middle]},
        )
        second = request_json(
            host,
            port,
            "POST",
            "/delta",
            payload={"stream": "d1", "records": records[middle:]},
        )
        assert first["delta"]["index"] == 0
        assert second["delta"]["index"] == 1
        assert second["delta"]["records"] == len(records) - middle
        # the cumulative response covers the whole stream so far
        full = request_json(host, port, "POST", "/link", payload=payload)
        assert second["matches"] == full["matches"]
        assert second["sameas_ntriples"] == full["sameas_ntriples"]


class TestSelfTest:
    def test_self_test_verdict_identical(self, bundle_path, daemon):
        report = run_self_test(
            bundle_path, items=30, requests=3, workers=2, daemon=daemon
        )
        assert report["identical"] is True
        assert report["mismatched_requests"] == []
        assert report["requests"] == 3
        assert report["matches"] > 0
        assert report["warm_p50_seconds"] > 0
        assert report["cold_seconds"] > 0
