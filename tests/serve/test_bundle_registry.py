"""BundleRegistry: lazy open, routing, idle-LRU eviction, listings."""

import pytest

from repro.datagen.catalog import PART_NUMBER, ElectronicCatalogGenerator
from repro.datagen.config import CatalogConfig
from repro.experiments.throughput import provider_batch
from repro.index.artifacts import record_store_to_payload
from repro.linking import RecordStore
from repro.serve import (
    BundleRegistry,
    ServeError,
    UnknownBundleError,
    build_bundle,
    request_json,
    serve_bundles,
)

SEED = 31


@pytest.fixture(scope="module")
def bundle_paths(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve-registry")
    for name in ("a", "b", "c"):
        build_bundle(
            root / name, preset="tiny", seed=SEED, blocking="prefix", warm_items=15
        )
    return {name: root / name for name in ("a", "b", "c")}


@pytest.fixture(scope="module")
def records():
    catalog = ElectronicCatalogGenerator(CatalogConfig.tiny(seed=SEED)).generate()
    test_graph, _ = provider_batch(catalog, 20, seed=SEED)
    external = RecordStore.from_graph(test_graph, {"pn": PART_NUMBER})
    return external, record_store_to_payload(external)


class TestConstruction:
    def test_needs_at_least_one_bundle(self):
        with pytest.raises(ServeError, match="at least one"):
            BundleRegistry({})

    def test_default_must_be_registered(self, bundle_paths):
        with pytest.raises(ServeError, match="not registered"):
            BundleRegistry(bundle_paths, default="zz")

    def test_first_bundle_is_the_default(self, bundle_paths):
        registry = BundleRegistry(bundle_paths)
        assert registry.default_bundle == "a"
        assert registry.names() == ("a", "b", "c")


class TestLazyOpenAndRouting:
    def test_sessions_open_on_first_use_only(self, bundle_paths):
        registry = BundleRegistry(bundle_paths)
        assert not registry.is_open("a")
        session = registry.session("a")
        assert registry.is_open("a")
        assert not registry.is_open("b")
        # the same warm session answers again — no reopen
        assert registry.session("a") is session
        assert registry.stats()["opens"] == 1

    def test_none_routes_to_the_default(self, bundle_paths):
        registry = BundleRegistry(bundle_paths, default="b")
        assert registry.session() is registry.session("b")

    def test_unknown_name_rejected(self, bundle_paths):
        registry = BundleRegistry(bundle_paths)
        with pytest.raises(UnknownBundleError, match="unknown bundle 'zz'"):
            registry.session("zz")


class TestEviction:
    def test_lru_evicts_the_oldest_idle_session(self, bundle_paths):
        registry = BundleRegistry(bundle_paths, max_open=2)
        registry.session("a")
        registry.session("b")
        registry.session("a")  # touch: b is now the LRU entry
        registry.session("c")
        assert registry.is_open("a")
        assert not registry.is_open("b")
        assert registry.is_open("c")
        assert registry.stats()["evictions"] == 1

    def test_leased_sessions_are_never_evicted(self, bundle_paths):
        registry = BundleRegistry(bundle_paths, max_open=1)
        with registry.lease("a"):
            registry.session("b")
            # over the cap, but "a" is mid-request: both stay open
            assert registry.is_open("a")
            assert registry.is_open("b")
        registry.session("c")
        # idle again: the oldest idle session goes
        assert not registry.is_open("a")

    def test_sessions_with_live_streams_are_never_evicted(
        self, bundle_paths, records
    ):
        external, _ = records
        registry = BundleRegistry(bundle_paths, max_open=1)
        registry.session("a").delta("s1", list(external))
        registry.session("b")
        # "a" holds cumulative stream state; dropping it would silently
        # reset a client's fold, so the cap goes soft instead
        assert registry.is_open("a")
        assert registry.is_open("b")

    def test_evicted_bundles_reopen_on_demand(self, bundle_paths, records):
        external, _ = records
        registry = BundleRegistry(bundle_paths, max_open=1)
        first = registry.session("a").link(external)
        registry.session("b")
        assert not registry.is_open("a")
        again = registry.session("a").link(external)
        assert registry.stats()["opens"] == 3
        assert first.match_pairs == again.match_pairs


class TestIntrospection:
    def test_stats_counts_requests_per_bundle(self, bundle_paths, records):
        external, _ = records
        registry = BundleRegistry(bundle_paths)
        with registry.lease("b") as session:
            session.link(external)
        stats = registry.stats()
        assert stats["bundles"]["b"]["requests"] == 1
        assert stats["bundles"]["a"]["requests"] == 0
        assert stats["bundles"]["b"]["open"] is True
        assert stats["bundles"]["b"]["in_flight"] == 0

    def test_summary_reads_closed_bundles_from_the_manifest(self, bundle_paths):
        registry = BundleRegistry(bundle_paths)
        registry.session("a")
        summary = registry.summary()
        open_entry = summary["bundles"]["a"]
        assert open_entry["open"] is True
        assert open_entry["records"] > 0
        closed_entry = summary["bundles"]["b"]
        assert closed_entry["open"] is False
        assert closed_entry["bytes"] > 0
        assert "store.json" in closed_entry["components"]


class TestOverHTTP:
    def test_link_routes_by_bundle_field(self, bundle_paths, records):
        _, payload = records
        with serve_bundles(bundle_paths) as daemon:
            host, port = daemon.address
            default = request_json(host, port, "POST", "/link", payload)
            routed = request_json(
                host, port, "POST", "/link", {**payload, "bundle": "b"}
            )
            # identical tiny bundles: routing proves itself via /stats
            assert routed.pop("executor") is not None
            default.pop("executor")
            assert routed == default
            stats = request_json(host, port, "GET", "/stats")
            assert stats["registry"]["bundles"]["a"]["requests"] == 1
            assert stats["registry"]["bundles"]["b"]["requests"] == 1
            listing = request_json(host, port, "GET", "/bundles")
            assert set(listing["bundles"]) == {"a", "b", "c"}
